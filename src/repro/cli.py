"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the host calibration and device cost-model summary.
``datasets``
    Print the Table II dataset schemas.
``compression``
    Print the Table III compression summary.
``train``
    Train a small DLRM for a few steps on a synthetic click log;
    ``--backend instrumented`` additionally prints the per-zone
    FLOP/byte table and contraction-plan-cache statistics.
``bench``
    Run a fixed training + serving workload and report per-kernel-zone
    costs — the execution-backend counterpart of ``figures`` (counts,
    not wall-clock).  Requires ``--backend instrumented`` to produce
    the zone table; with ``numpy`` it reports only throughput-neutral
    plan-cache stats.
``quickcheck``
    Train a tiny DLRM on every backend and report losses, verify the
    numpy, instrumented, and sanitizer execution backends agree bit
    for bit (with zero numsan traps), run a few hundred requests
    through the serving loop, then run the static checks (reprolint,
    shapecheck, and mypy when installed) — a fast smoke test that the
    whole stack works on this machine.
``lint``
    Run ``reprolint`` — the repo-specific AST linter (seeded RNG only,
    SimClock-only zones, explicit kernel dtypes, batch-loop perf
    advisories) — over the given paths.  Exits 1 on error-level
    findings.  ``--format json``/``--format sarif`` emit
    machine-readable reports for CI.
``shapecheck``
    Run the static shape/dtype abstract interpreter over the given
    paths: einsum signature resolution, matmul/gather/scatter/reshape
    shape propagation, TT-core chain shapes from ``TTSpec`` metadata,
    and the one-float-dtype-per-kernel-zone policy.  Same exit codes
    and output formats as ``lint``.
``hazards``
    Train an instrumented pipelined-PS run and analyze its
    per-embedding-row read/write trace for RAW/WAR hazards;
    ``--inject`` disables §V-B life-cycle cache management to
    demonstrate the detector catching the paper's raw conflict.
``serve``
    Simulate the online serving subsystem: Poisson/Zipf traffic,
    dynamic micro-batching, hot-row caches, an optional mid-stream
    training→serving hot swap, and an SLO report.
``figures``
    Regenerate every paper table/figure by invoking the benchmark
    builders (several minutes; results also land in
    ``benchmarks/results/`` when run via pytest).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _install_backend(name: str) -> bool:
    """Install the requested execution backend; False on failure.

    Prints an actionable message (rather than a traceback) when the
    torch backend is requested in an environment without PyTorch.
    """
    from repro.backend import BackendUnavailableError, set_backend

    try:
        set_backend(name)
    except BackendUnavailableError as exc:
        print(f"backend '{name}' unavailable: {exc}", file=sys.stderr)
        return False
    return True


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    from repro.backend import BACKEND_NAMES

    parser.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default="numpy",
        help="execution backend for all hot-path kernels (instrumented "
        "counts FLOPs/bytes per kernel zone; sanitizer traps NaN/Inf, "
        "bad gather indices, and dtype drift; torch requires PyTorch)",
    )


def _add_compression_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--compress-strategy",
        choices=["none", "dense", "tt", "hash", "robe", "pq", "auto"],
        default="none",
        help="size the embedding tables with the memory-budget "
        "compression planner: one fixed strategy for every table, or "
        "'auto' to pick per table from the measured statistics; "
        "requires --memory-budget-mb",
    )
    parser.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="global embedding byte budget the compression planner "
        "bisects against (realized memory never exceeds it when a "
        "feasible plan exists)",
    )


def _cmd_info(_: argparse.Namespace) -> int:
    from repro.system.devices import (
        TESLA_T4,
        TESLA_V100,
        calibrate_host,
    )

    profile = calibrate_host()
    print("host calibration:")
    print(f"  large-GEMM throughput : {profile.gemm_gflops:10.1f} GFLOP/s")
    print(f"  batched-GEMM (TT)     : {profile.batched_gemm_gflops:10.1f} GFLOP/s")
    print(f"  gather bandwidth      : {profile.gather_gbps:10.1f} GB/s")
    for device in (TESLA_V100, TESLA_T4):
        print(f"device {device.name}:")
        print(f"  effective GEMM        : {device.effective_gflops:10.1f} GFLOP/s")
        print(
            f"  effective batched GEMM: "
            f"{device.effective_batched_gflops:10.1f} GFLOP/s"
        )
        print(f"  HBM / PCIe / P2P      : {device.hbm_bytes / 1e9:.0f} GB / "
              f"{device.h2d_gbps:.0f} GB/s / {device.p2p_gbps:.0f} GB/s")
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    from repro.bench.harness import format_table
    from repro.data.datasets import DATASET_FACTORIES

    rows = []
    for factory in DATASET_FACTORIES.values():
        spec = factory()
        info = spec.describe()
        rows.append(
            [
                info["dataset"],
                info["days"],
                f"{info['samples']:,}",
                info["dense_features"],
                info["sparse_features"],
                f"{info['total_rows']:,}",
            ]
        )
    print(
        format_table(
            ["dataset", "days", "samples", "dense", "sparse", "total rows"],
            rows,
            title="Dataset schemas (paper Table II, full scale)",
        )
    )
    return 0


def _cmd_compression(_: argparse.Namespace) -> int:
    import importlib.util
    from pathlib import Path

    bench = Path(__file__).resolve().parents[2] / "benchmarks"
    spec = importlib.util.spec_from_file_location(
        "bench_table3", bench / "bench_table3_compression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    print(module.build_table3())
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.backend import InstrumentedBackend, SanitizerBackend, get_backend, get_plan_cache
    from repro.data.dataloader import SyntheticClickLog
    from repro.data.datasets import DATASET_FACTORIES
    from repro.models.config import DLRMConfig, EmbeddingBackend
    from repro.models.dlrm import DLRM

    if not _install_backend(args.backend):
        return 2
    spec = DATASET_FACTORIES[args.dataset](scale=args.scale)
    log = SyntheticClickLog(spec, batch_size=args.batch_size, seed=args.seed)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=args.embedding_dim,
        backend=EmbeddingBackend(args.embedding_backend),
        tt_rank=args.tt_rank, bottom_mlp=(16,), top_mlp=(16,),
    )
    if args.shards >= 1:
        return _train_sharded(args, spec, log, cfg)
    if args.compress_strategy != "none":
        return _train_compressed(args, spec, log, cfg)
    model = DLRM(cfg, seed=args.seed)
    plan_cache = get_plan_cache()
    losses = [
        model.train_step(log.batch(i), lr=args.lr).loss
        for i in range(args.steps)
    ]
    print(
        f"trained {args.steps} steps on {args.dataset} "
        f"({get_backend().name} backend): "
        f"loss {losses[0]:.4f} -> {losses[-1]:.4f}"
    )
    stats = plan_cache.stats
    print(
        f"plan cache: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['entries']} entries"
    )
    backend = get_backend()
    if isinstance(backend, (InstrumentedBackend, SanitizerBackend)):
        print()
        print(backend.report())
    return 0 if losses[-1] < losses[0] else 1


def _train_sharded(args: argparse.Namespace, spec, log, cfg) -> int:
    """``repro train --shards N``: the sharded-PS pipelined path.

    Profiles a training-data prefix into measured per-table
    :class:`~repro.reorder.stats.TableStats`, plans a placement, and
    trains through the pipelined trainer on an N-shard parameter
    server, reporting the placement decision table and per-link PS
    traffic.  With ``--compress none`` (the default) the loss
    trajectory is bitwise-independent of N.
    """
    from repro.backend import InstrumentedBackend, SanitizerBackend, get_backend
    from repro.reorder import table_stats_from_log
    from repro.sharding import LinkCompressionConfig, build_sharded_ps_trainer
    from repro.sharding.placement import StatsDrivenStrategy

    strategy = None
    if args.compress_strategy not in ("none", "tt"):
        if args.compress_strategy in ("auto", "dense"):
            print(
                f"--compress-strategy {args.compress_strategy} is not "
                "supported with --shards (the placement planner picks "
                "one compressed on-device form); pick hash, robe, or pq",
                file=sys.stderr,
            )
            return 2
        strategy = StatsDrivenStrategy(
            compress_strategy=args.compress_strategy,
            compress_rate=cfg.compress_rate,
        )
    profile_batches = max(1, min(args.steps, 8))
    stats = [
        table_stats_from_log(log, t, num_batches=profile_batches)
        for t in range(spec.num_sparse)
    ]
    compression = LinkCompressionConfig(
        mode=args.compress, topk_fraction=args.topk_fraction
    )
    setup = build_sharded_ps_trainer(
        cfg,
        num_shards=args.shards,
        compression=compression,
        stats=stats,
        strategy=strategy,
        device_budget_bytes=args.device_budget_mb * 1_000_000,
        lr=args.lr,
    )
    print(f"placement plan ({setup.plan.strategy}, {args.shards} shard(s)):")
    print(setup.plan.format_table())
    print(
        f"server tables at positions {setup.host_positions} "
        f"behind {args.shards}-shard PS, compression '{args.compress}'"
    )
    result = setup.trainer.train(log, args.steps)
    losses = [float(x) for x in result.losses]
    print(
        f"trained {args.steps} steps on {args.dataset} "
        f"({get_backend().name} backend, {args.shards} shard(s)): "
        f"loss {losses[0]:.4f} -> {losses[-1]:.4f}"
    )
    link = setup.server.link_stats.summary()
    print(
        f"PS links: pull {link['pull_wire_bytes']:,}B / "
        f"push {link['push_wire_bytes']:,}B on wire "
        f"(raw {link['pull_raw_bytes'] + link['push_raw_bytes']:,}B, "
        f"ratio {link['compression_ratio']:.2f}x)"
    )
    print(
        f"exactly-once: {setup.server.update_count} updates, "
        f"per-shard applies {setup.server.shard_apply_counts.tolist()}"
    )
    backend = get_backend()
    if isinstance(backend, (InstrumentedBackend, SanitizerBackend)):
        print()
        print(backend.report())
    return 0 if losses[-1] < losses[0] else 1


def _train_compressed(args: argparse.Namespace, spec, log, cfg) -> int:
    """``repro train --compress-strategy S --memory-budget-mb B``.

    Profiles a training-data prefix into measured per-table stats, runs
    the memory-budget auto-tuner
    (:func:`~repro.embeddings.autotune.plan_compression`), builds the
    planned bags, and trains the DLRM on them end-to-end, reporting the
    realized embedding footprint against the budget.
    """
    from repro.backend import InstrumentedBackend, SanitizerBackend, get_backend
    from repro.embeddings import build_bag_from_plan, plan_compression
    from repro.models.dlrm import DLRM
    from repro.reorder import table_stats_from_log
    from repro.utils.rng import spawn_rngs

    if args.memory_budget_mb is None:
        print(
            "--compress-strategy requires --memory-budget-mb (the "
            "planner sizes every table against that byte budget)",
            file=sys.stderr,
        )
        return 2
    profile_batches = max(1, min(args.steps, 8))
    stats = [
        table_stats_from_log(log, t, num_batches=profile_batches)
        for t in range(spec.num_sparse)
    ]
    budget = int(args.memory_budget_mb * 1_000_000)
    plan = plan_compression(
        stats, cfg.embedding_dim, budget, strategy=args.compress_strategy
    )
    print(
        f"compression plan ('{args.compress_strategy}', "
        f"budget {args.memory_budget_mb:g} MB):"
    )
    print(plan.format_table())
    # Same child-RNG convention as DLRM's own construction (table t at
    # rngs[2 + t]), so a plan that picks the config's backend for every
    # table reproduces the uncompressed model exactly.
    rngs = spawn_rngs(args.seed, 2 + cfg.num_tables)
    bags = [
        build_bag_from_plan(entry, cfg.embedding_dim, seed=rngs[2 + t])
        for t, entry in enumerate(plan.tables)
    ]
    model = DLRM(cfg, seed=args.seed, embedding_bags=bags)
    losses = [
        model.train_step(log.batch(i), lr=args.lr).loss
        for i in range(args.steps)
    ]
    realized = sum(bag.memory_bytes() for bag in bags)
    print(
        f"trained {args.steps} steps on {args.dataset} "
        f"({get_backend().name} backend, '{args.compress_strategy}' "
        f"embeddings): loss {losses[0]:.4f} -> {losses[-1]:.4f}"
    )
    within = realized <= budget
    print(
        f"embedding memory: {realized / 1e6:.2f} MB realized of "
        f"{budget / 1e6:.2f} MB budget "
        f"({'within' if within else 'OVER'}; dense would be "
        f"{plan.dense_total_bytes / 1e6:.2f} MB)"
    )
    if not plan.feasible:
        print(
            "warning: no parameterization fits the budget — the plan "
            "is the minimal configuration per table",
        )
    backend = get_backend()
    if isinstance(backend, (InstrumentedBackend, SanitizerBackend)):
        print()
        print(backend.report())
    return 0 if losses[-1] < losses[0] and (within or not plan.feasible) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.backend import InstrumentedBackend, SanitizerBackend, get_backend, get_plan_cache
    from repro.data.dataloader import SyntheticClickLog
    from repro.data.datasets import DATASET_FACTORIES
    from repro.models.config import DLRMConfig, EmbeddingBackend
    from repro.models.dlrm import DLRM

    if not _install_backend(args.backend):
        return 2
    spec = DATASET_FACTORIES[args.dataset](scale=args.scale)
    log = SyntheticClickLog(spec, batch_size=args.batch_size, seed=args.seed)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=args.embedding_dim,
        backend=EmbeddingBackend.EFF_TT, tt_rank=args.tt_rank,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    if args.compress_strategy != "none":
        from repro.embeddings import build_bag_from_plan, plan_compression
        from repro.reorder import table_stats_from_log
        from repro.utils.rng import spawn_rngs

        if args.memory_budget_mb is None:
            print(
                "--compress-strategy requires --memory-budget-mb",
                file=sys.stderr,
            )
            return 2
        stats = [
            table_stats_from_log(log, t, num_batches=4)
            for t in range(spec.num_sparse)
        ]
        comp_plan = plan_compression(
            stats,
            cfg.embedding_dim,
            int(args.memory_budget_mb * 1_000_000),
            strategy=args.compress_strategy,
        )
        rngs = spawn_rngs(args.seed, 2 + cfg.num_tables)
        bags = [
            build_bag_from_plan(entry, cfg.embedding_dim, seed=rngs[2 + t])
            for t, entry in enumerate(comp_plan.tables)
        ]
        model = DLRM(cfg, seed=args.seed, embedding_bags=bags)
        print(
            f"embeddings: '{args.compress_strategy}' plan, "
            f"{comp_plan.total_bytes / 1e6:.2f} MB of "
            f"{comp_plan.budget_bytes / 1e6:.2f} MB budget"
        )
    else:
        model = DLRM(cfg, seed=args.seed)
    plan_cache = get_plan_cache()
    hits0, misses0 = plan_cache.hits, plan_cache.misses
    for i in range(args.steps):
        model.train_step(log.batch(i), lr=0.1)
    outcome = _run_serving(
        spec, num_requests=args.requests, rate=2000.0, workers=2,
        max_batch_size=16, max_wait=2e-3, hot_coverage=0.1,
        train_steps=0, seed=args.seed,
    )
    print(
        f"workload: {args.steps} Eff-TT training steps "
        f"(batch {args.batch_size}) + {outcome.report.completed} served "
        f"requests on {args.dataset} [{get_backend().name} backend]"
    )
    print(
        f"plan cache: {plan_cache.hits - hits0} hits, "
        f"{plan_cache.misses - misses0} misses, "
        f"{plan_cache.stats['entries']} entries"
    )
    backend = get_backend()
    if isinstance(backend, (InstrumentedBackend, SanitizerBackend)):
        print()
        print(backend.report())
    else:
        print(
            "(use --backend instrumented for the per-kernel-zone "
            "FLOP/byte table)"
        )
    return 0


def _cmd_quickcheck(args: argparse.Namespace) -> int:
    from repro.data.dataloader import SyntheticClickLog
    from repro.data.datasets import criteo_kaggle_like
    from repro.models.config import DLRMConfig, EmbeddingBackend
    from repro.models.dlrm import DLRM

    spec = criteo_kaggle_like(scale=3e-5)
    log = SyntheticClickLog(spec, batch_size=128, seed=0)
    ok = True
    for backend in EmbeddingBackend:
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=0)
        losses = [
            model.train_step(log.batch(i), lr=0.1).loss
            for i in range(args.steps)
        ]
        learned = losses[-1] < losses[0]
        ok = ok and learned
        status = "ok" if learned else "FAILED (loss did not decrease)"
        print(
            f"{backend.value:8s} loss {losses[0]:.4f} -> {losses[-1]:.4f}  "
            f"[{status}]"
        )

    # Execution-backend equivalence: the same Eff-TT training run must
    # be bit-identical under the numpy and instrumented backends, and
    # the instrumented run must actually see the hot kernel zones.
    from repro.backend import InstrumentedBackend, SanitizerBackend, use_backend

    eq_cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )

    def _losses_under(backend):
        with use_backend(backend):
            eq_model = DLRM(eq_cfg, seed=0)
            return [
                eq_model.train_step(log.batch(i), lr=0.1).loss
                for i in range(5)
            ]

    instrumented = InstrumentedBackend()
    reference_losses = _losses_under("numpy")
    backend_ok = reference_losses == _losses_under(instrumented) and (
        instrumented.zone_stats.get("efftt_forward") is not None
        and instrumented.zone_stats["efftt_forward"].flops > 0
    )
    ok = ok and backend_ok
    status = "ok" if backend_ok else "FAILED (backends disagree)"
    print(f"backend  numpy == instrumented over 5 steps  [{status}]")

    # numsan gate: the sanitizer must be bit-identical to the reference
    # backend on the same workload *and* observe zero traps — a trap on
    # clean training data is a sanitizer false positive.
    sanitizer = SanitizerBackend(mode="record")
    sanitizer_ok = (
        reference_losses == _losses_under(sanitizer) and not sanitizer.traps
    )
    ok = ok and sanitizer_ok
    status = "ok" if sanitizer_ok else "FAILED (sanitizer diverged or trapped)"
    print(
        f"numsan   numpy == sanitizer over 5 steps, "
        f"{len(sanitizer.traps)} trap(s)  [{status}]"
    )
    if sanitizer.traps:
        for trap in sanitizer.traps:
            print(f"  {trap.format()}")

    # Serving smoke: a few hundred simulated requests through the full
    # micro-batching loop, sanity-checking the SLO report.
    report = _run_serving(
        spec, num_requests=300, rate=2000.0, workers=2,
        max_batch_size=16, max_wait=2e-3, hot_coverage=0.1,
        train_steps=0, seed=0,
    ).report
    serving_ok = (
        report.completed + report.rejected == report.offered
        and report.completed > 0
        and report.latency_p99 >= report.latency_p50 > 0.0
        and 0.0 <= report.cache_hit_rate <= 1.0
    )
    ok = ok and serving_ok
    status = "ok" if serving_ok else "FAILED (inconsistent SLO report)"
    print(
        f"serving  {report.completed}/{report.offered} requests, "
        f"p99 {report.latency_p99 * 1e3:.2f} ms, "
        f"hit rate {report.cache_hit_rate:.1%}  [{status}]"
    )

    # Chaos gate: the smoke fault plan (stage crash, corrupted
    # checkpoint, H2D failure, dropped gradient entry, serving
    # slowdown) must recover to the bitwise reference trajectory with
    # every invariant green.
    import tempfile

    from repro.resilience import FAULT_PLANS, ChaosHarnessConfig, run_chaos

    with tempfile.TemporaryDirectory() as scratch:
        chaos_outcome = run_chaos(
            FAULT_PLANS["smoke"], scratch, ChaosHarnessConfig()
        )
    chaos_ok = chaos_outcome.passed
    ok = ok and chaos_ok
    rec = chaos_outcome.recovery
    status = "ok" if chaos_ok else "FAILED (invariant violated)"
    print(
        f"chaos    plan 'smoke': {len(rec.losses) if rec else 0} steps, "
        f"{rec.restarts if rec else 0} restarts  [{status}]"
    )
    if not chaos_ok:
        for check in chaos_outcome.checks:
            if not check.ok:
                print(f"  {check.name}: {check.detail}")

    # Fleet gate: a 2-replica chaos smoke — killing one replica
    # mid-traffic must deliver bitwise-identical predictions for every
    # non-shed request versus the fault-free fleet run.
    from repro.resilience import run_fleet_chaos

    fleet_outcome = run_fleet_chaos("fleet-smoke")
    fleet_ok = fleet_outcome.passed
    ok = ok and fleet_ok
    status = "ok" if fleet_ok else "FAILED (fleet invariant violated)"
    print(f"fleet    2-replica kill-one chaos smoke is bitwise  [{status}]")
    if not fleet_ok:
        for check in fleet_outcome.checks:
            if not check.ok:
                print(f"  {check.name}: {check.detail}")

    # Resume-determinism gate: kill-free chunked training through the
    # snapshot store must be bitwise-identical to one uninterrupted
    # run — the invariant every crash recovery above relies on.
    from repro.resilience import resume_determinism_check

    with tempfile.TemporaryDirectory() as scratch:
        resume_ok = resume_determinism_check(scratch)
    ok = ok and resume_ok
    status = "ok" if resume_ok else "FAILED (trajectories diverged)"
    print(f"resume   snapshot -> restore is bitwise  [{status}]")

    # Sharded-equivalence gate: with link compression off, training on
    # a 2-shard parameter server must be bitwise-identical to the
    # 1-shard run; with compression on, the final loss must stay within
    # the documented accuracy bound (DESIGN.md §11).
    sharded_ok, sharded_detail = _sharded_equivalence_gate()
    ok = ok and sharded_ok
    status = "ok" if sharded_ok else "FAILED (sharding changed the math)"
    print(f"sharded  {sharded_detail}  [{status}]")

    # Compression-equivalence gate: every compression strategy must
    # train run-to-run bitwise-deterministically, and an auto-tuned
    # model under a halved budget must stay within the documented loss
    # tolerance of the dense reference while respecting the budget.
    comp_ok, comp_detail = _compression_equivalence_gate()
    ok = ok and comp_ok
    status = "ok" if comp_ok else "FAILED (compression broke training)"
    print(f"compress {comp_detail}  [{status}]")

    # Static checks: reprolint over the installed package, then mypy
    # on the strict modules when the tool is available.
    from pathlib import Path

    from repro.analysis import lint_paths

    lint_result = lint_paths([Path(__file__).resolve().parent])
    lint_ok = lint_result.ok
    ok = ok and lint_ok
    status = "ok" if lint_ok else "FAILED (error-level findings)"
    print(
        f"lint     {lint_result.files_scanned} files, "
        f"{len(lint_result.errors)} errors, "
        f"{len(lint_result.warnings)} warnings  [{status}]"
    )
    if not lint_ok:
        for finding in lint_result.errors:
            print(f"  {finding.format()}")

    from repro.analysis import shapecheck_paths

    shape_result = shapecheck_paths([Path(__file__).resolve().parent])
    shape_ok = shape_result.ok
    ok = ok and shape_ok
    status = "ok" if shape_ok else "FAILED (error-level findings)"
    print(
        f"shape    {shape_result.files_scanned} files, "
        f"{len(shape_result.errors)} errors, "
        f"{len(shape_result.warnings)} warnings  [{status}]"
    )
    if not shape_ok:
        for finding in shape_result.errors:
            print(f"  {finding.format()}")

    from repro.analysis import detcheck_paths

    det_result = detcheck_paths([Path(__file__).resolve().parent])
    det_ok = det_result.ok
    ok = ok and det_ok
    status = "ok" if det_ok else "FAILED (error-level findings)"
    print(
        f"det      {det_result.files_scanned} files, "
        f"{len(det_result.errors)} errors, "
        f"{len(det_result.warnings)} warnings  [{status}]"
    )
    if not det_ok:
        for finding in det_result.errors:
            print(f"  {finding.format()}")

    from repro.analysis import perfcheck_paths

    perf_result = perfcheck_paths([Path(__file__).resolve().parent])
    perf_ok = perf_result.ok
    ok = ok and perf_ok
    status = "ok" if perf_ok else "FAILED (error-level findings)"
    print(
        f"perf     {perf_result.files_scanned} files, "
        f"{len(perf_result.errors)} errors, "
        f"{len(perf_result.warnings)} warnings  [{status}]"
    )
    if not perf_ok:
        for finding in perf_result.errors:
            print(f"  {finding.format()}")

    from repro.analysis import run_calibration

    calib = run_calibration(steps=2)
    calib_ok = calib.ok
    ok = ok and calib_ok
    status = "ok" if calib_ok else "FAILED (static cost model drifted)"
    print(
        f"calib    {len(calib.zones)} zones, max rel err "
        f"{calib.max_rel_err:.2%} (tol {calib.tolerance:.0%})  [{status}]"
    )
    if not calib_ok:
        for zone in calib.zones:
            if (
                zone.flops_rel_err > calib.tolerance
                or zone.bytes_rel_err > calib.tolerance
            ):
                print(
                    f"  {zone.zone}: flops {zone.static_flops} vs "
                    f"{zone.measured_flops}, bytes {zone.static_bytes} vs "
                    f"{zone.measured_bytes}"
                )

    mypy_status = _run_mypy_step()
    if mypy_status is None:
        print("mypy     skipped (mypy not installed)")
    else:
        ok = ok and mypy_status
        print(f"mypy     strict modules  [{'ok' if mypy_status else 'FAILED'}]")
    return 0 if ok else 1


# Accuracy bound for the compression-on quickcheck gate: top-k
# error-feedback plus int8 pulls may move the final loss of the short
# gate run by at most this relative amount (DESIGN.md §11 documents the
# bound; tests/sharding pins it too).
_COMPRESSED_LOSS_RTOL = 5e-2


def _sharded_equivalence_gate() -> tuple:
    """(ok, detail) for the quickcheck sharded-PS gate."""
    from repro.data.dataloader import SyntheticClickLog
    from repro.data.datasets import criteo_kaggle_like
    from repro.models.config import DLRMConfig, EmbeddingBackend
    from repro.sharding import LinkCompressionConfig, build_sharded_ps_trainer

    num_batches = 10
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=32, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    rows = list(cfg.table_rows)
    positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]

    def run(num_shards, compression=None):
        setup = build_sharded_ps_trainer(
            cfg, num_shards=num_shards, compression=compression,
            host_positions=positions,
        )
        losses = [
            float(x) for x in setup.trainer.train(log, num_batches).losses
        ]
        return losses, setup.server

    base_losses, base_server = run(1)
    shard_losses, shard_server = run(2)
    import numpy as np

    base_state = base_server.state_arrays()
    shard_view = {
        t: np.asarray(shard_server.tables[t])
        for t in range(shard_server.num_tables)
    }
    bitwise = base_losses == shard_losses and all(
        np.array_equal(base_state[f"table{t}/shard0"], shard_view[t])
        for t in range(shard_server.num_tables)
    )

    comp_losses, comp_server = run(
        2, LinkCompressionConfig(mode="both", topk_fraction=0.25)
    )
    rel = abs(comp_losses[-1] - base_losses[-1]) / abs(base_losses[-1])
    bounded = rel <= _COMPRESSED_LOSS_RTOL
    shrunk = comp_server.link_stats.compression_ratio > 1.0
    detail = (
        f"2-shard == 1-shard bitwise: {bitwise}; compressed final-loss "
        f"drift {rel:.2e} (bound {_COMPRESSED_LOSS_RTOL:g}), "
        f"wire ratio {comp_server.link_stats.compression_ratio:.2f}x"
    )
    return bitwise and bounded and shrunk, detail


# Loss tolerance for the compression-equivalence quickcheck gate: an
# auto-tuned model under half the dense budget may move the final loss
# of the short gate run by at most this relative amount vs the dense
# reference (DESIGN.md §13 documents the bound).
_AUTO_TUNED_LOSS_RTOL = 0.15


def _compression_equivalence_gate() -> tuple:
    """(ok, detail) for the quickcheck compressed-embedding gate."""
    from repro.data.dataloader import SyntheticClickLog
    from repro.data.datasets import criteo_kaggle_like
    from repro.embeddings import build_bag_from_plan, plan_compression
    from repro.models.config import DLRMConfig, EmbeddingBackend
    from repro.models.dlrm import DLRM
    from repro.reorder import table_stats_from_log
    from repro.utils.rng import spawn_rngs

    steps = 8
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=32, seed=0)

    def run(backend):
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=0)
        return [
            model.train_step(log.batch(i), lr=0.1).loss
            for i in range(steps)
        ]

    deterministic = all(
        run(backend) == run(backend)
        for backend in (
            EmbeddingBackend.HASH,
            EmbeddingBackend.ROBE,
            EmbeddingBackend.PQ,
        )
    )

    dense_losses = run(EmbeddingBackend.DENSE)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.DENSE, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    stats = [
        table_stats_from_log(log, t, num_batches=4)
        for t in range(spec.num_sparse)
    ]
    dense_total = sum(st.num_rows for st in stats) * cfg.embedding_dim * 8
    budget = max(1, dense_total // 2)
    plan = plan_compression(
        stats, cfg.embedding_dim, budget, strategy="auto"
    )
    rngs = spawn_rngs(0, 2 + cfg.num_tables)
    bags = [
        build_bag_from_plan(entry, cfg.embedding_dim, seed=rngs[2 + t])
        for t, entry in enumerate(plan.tables)
    ]
    model = DLRM(cfg, seed=0, embedding_bags=bags)
    auto_losses = [
        model.train_step(log.batch(i), lr=0.1).loss for i in range(steps)
    ]
    realized = sum(bag.memory_bytes() for bag in bags)
    within = realized <= budget
    drift = abs(auto_losses[-1] - dense_losses[-1]) / abs(dense_losses[-1])
    bounded = drift <= _AUTO_TUNED_LOSS_RTOL and auto_losses[-1] < auto_losses[0]
    detail = (
        f"strategies deterministic: {deterministic}; auto at half "
        f"budget: {realized:,}/{budget:,} B, final-loss drift "
        f"{drift:.2e} (bound {_AUTO_TUNED_LOSS_RTOL:g})"
    )
    return deterministic and within and bounded, detail


# Modules held to `mypy --strict` (see [tool.mypy] in pyproject.toml).
_MYPY_STRICT_TARGETS = (
    "repro/system/queues.py",
    "repro/embeddings/cache.py",
    "repro/embeddings/protocol.py",
    "repro/embeddings/hash_embedding.py",
    "repro/embeddings/robe_embedding.py",
    "repro/embeddings/pq_embedding.py",
    "repro/embeddings/autotune.py",
    "repro/utils/factorize.py",
    "repro/analysis",
    "repro/backend/protocol.py",
    "repro/backend/plan_cache.py",
    "repro/backend/numpy_backend.py",
    "repro/sharding",
    "repro/serving",
    "repro/resilience/checkpoint.py",
)


def _run_mypy_step() -> Optional[bool]:
    """Run mypy over the strict modules; None when mypy is unavailable."""
    import importlib.util
    import subprocess
    from pathlib import Path

    if importlib.util.find_spec("mypy") is None:
        return None
    pkg_root = Path(__file__).resolve().parent
    targets = [str(pkg_root.parent / t) for t in _MYPY_STRICT_TARGETS]
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *targets],
        capture_output=True,
        text=True,
        cwd=str(pkg_root.parents[1]),
    )
    if proc.returncode != 0:
        print(proc.stdout.strip())
    return proc.returncode == 0


def _run_serving(
    spec,
    num_requests: int,
    rate: float,
    workers: int,
    max_batch_size: int,
    max_wait: float,
    hot_coverage: float,
    train_steps: int,
    seed: int,
    compress_strategy: str = "none",
    memory_budget_mb: Optional[float] = None,
):
    """Build a model + traffic and run one serving simulation.

    With ``compress_strategy`` set, the served embedding tables are
    built from an auto-tuner plan over analytic table statistics (hot
    caches then sit on top of whatever strategy each table got).
    """
    from repro.data.dataloader import SyntheticClickLog
    from repro.models.config import DLRMConfig, EmbeddingBackend
    from repro.models.dlrm import DLRM
    from repro.serving import (
        BatchingPolicy,
        InferenceServer,
        ModelSnapshot,
        RequestGenerator,
        ServingModel,
    )

    generator = RequestGenerator(spec, rate=rate, seed=seed)
    requests = generator.generate(num_requests)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    if compress_strategy != "none":
        from repro.embeddings import build_bag_from_plan, plan_compression
        from repro.sharding.trainer import analytic_table_stats
        from repro.utils.rng import spawn_rngs

        if memory_budget_mb is None:
            raise ValueError(
                "--compress-strategy requires --memory-budget-mb"
            )
        comp_plan = plan_compression(
            analytic_table_stats(list(config.table_rows)),
            config.embedding_dim,
            int(memory_budget_mb * 1_000_000),
            strategy=compress_strategy,
        )
        rngs = spawn_rngs(seed, 2 + config.num_tables)
        bags = [
            build_bag_from_plan(entry, config.embedding_dim, seed=rngs[2 + t])
            for t, entry in enumerate(comp_plan.tables)
        ]
        model = DLRM(config, seed=seed, embedding_bags=bags)
    else:
        model = DLRM(config, seed=seed)
    snapshot_v0 = ModelSnapshot.from_model(model, version=0)
    hot_rows = {
        t: generator.hot_rows(t, hot_coverage)
        for t in range(spec.num_sparse)
    }
    server = InferenceServer(
        ServingModel(snapshot_v0.materialize(), hot_rows=hot_rows),
        policy=BatchingPolicy(
            max_batch_size=max_batch_size, max_wait=max_wait,
            queue_capacity=max(512, max_batch_size),
        ),
        num_workers=workers,
    )
    if train_steps > 0:
        # Train past the v0 snapshot, then hot-swap the improved model
        # in mid-stream (the serving side runs on the materialized v0,
        # so training here never touches its arrays).
        log = SyntheticClickLog(spec, batch_size=64, seed=seed)
        for i in range(train_steps):
            model.train_step(log.batch(i), lr=0.1)
        snapshot_v1 = ModelSnapshot.from_model(model, version=1)
        midpoint = requests[len(requests) // 2].arrival_time
        server.schedule_swap(midpoint, snapshot_v1)
    return server.run(requests)


def _run_fleet_serving(spec, args: argparse.Namespace):
    """Build a model + traffic and run one replicated-fleet simulation."""
    from repro.data.dataloader import SyntheticClickLog
    from repro.models.config import DLRMConfig, EmbeddingBackend
    from repro.models.dlrm import DLRM
    from repro.serving import (
        AutoscalePolicy,
        BatchingPolicy,
        FleetConfig,
        ModelSnapshot,
        RequestGenerator,
        ServingFleet,
    )

    generator = RequestGenerator(spec, rate=args.rate, seed=args.seed)
    requests = generator.generate(args.requests)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    model = DLRM(config, seed=args.seed)
    snapshot_v0 = ModelSnapshot.from_model(model, version=0)
    hot_rows = {
        t: generator.hot_rows(t, args.hot_coverage)
        for t in range(spec.num_sparse)
    }
    autoscale = None
    if args.autoscale:
        autoscale = AutoscalePolicy(
            min_replicas=1, max_replicas=args.max_replicas,
        )
    fleet = ServingFleet(
        snapshot_v0,
        hot_rows=hot_rows,
        config=FleetConfig(
            num_replicas=args.replicas,
            batching=BatchingPolicy(
                max_batch_size=args.max_batch_size, max_wait=args.max_wait,
                queue_capacity=max(512, args.max_batch_size),
            ),
            autoscale=autoscale,
        ),
    )
    if args.train_steps > 0:
        log = SyntheticClickLog(spec, batch_size=64, seed=args.seed)
        for i in range(args.train_steps):
            model.train_step(log.batch(i), lr=0.1)
        snapshot_v1 = ModelSnapshot.from_model(model, version=1)
        midpoint = requests[len(requests) // 2].arrival_time
        fleet.schedule_swap(midpoint, snapshot_v1)
    return fleet.run(requests)


def _print_fleet_outcome(outcome) -> None:
    print(outcome.report.format())
    print()
    print("fleet:")
    for rep in outcome.replicas:
        extras = []
        if rep.crash_time is not None:
            extras.append(f"crashed at {rep.crash_time * 1e3:.1f} ms")
        if rep.fallback_batches:
            extras.append(f"{rep.fallback_batches} fallback batches")
        suffix = f"  ({', '.join(extras)})" if extras else ""
        print(
            f"  replica {rep.replica_id}: {rep.final_state.value:8s} "
            f"v{rep.final_version}  {rep.batches_served} batches / "
            f"{rep.requests_served} requests, breaker "
            f"{rep.final_breaker_state.value}{suffix}"
        )
    for swap in outcome.swaps:
        state = "complete" if swap.completed else "INCOMPLETE"
        print(
            f"  rolling swap -> v{swap.version}: {state}, "
            f"{len(swap.replica_times)} installs, min live "
            f"{swap.min_live_observed} (floor {swap.min_live_floor}), "
            f"{swap.dropped_in_flight} dropped in flight"
        )
    for event in outcome.autoscale_events:
        print(
            f"  autoscale {event.action} replica {event.replica_id} at "
            f"{event.time * 1e3:.1f} ms (signal "
            f"{event.signal * 1e3:.2f} ms, {event.live_after} live)"
        )
    if outcome.redirects:
        print(f"  {len(outcome.redirects)} redirects, "
              f"{len(outcome.shed_ids)} requests shed")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.backend import InstrumentedBackend, SanitizerBackend, get_backend
    from repro.data.datasets import DATASET_FACTORIES
    from repro.serving import export_serving_trace

    if not _install_backend(args.backend):
        return 2
    if args.compress_strategy != "none" and args.memory_budget_mb is None:
        print(
            "--compress-strategy requires --memory-budget-mb",
            file=sys.stderr,
        )
        return 2
    factory = DATASET_FACTORIES[args.dataset]
    spec = factory(scale=args.scale)
    if args.replicas > 1 or args.autoscale:
        _print_fleet_outcome(_run_fleet_serving(spec, args))
        return 0
    outcome = _run_serving(
        spec,
        num_requests=args.requests,
        rate=args.rate,
        workers=args.workers,
        max_batch_size=args.max_batch_size,
        max_wait=args.max_wait,
        hot_coverage=args.hot_coverage,
        train_steps=args.train_steps,
        seed=args.seed,
        compress_strategy=args.compress_strategy,
        memory_budget_mb=args.memory_budget_mb,
    )
    print(outcome.report.format())
    if outcome.swap_times:
        swaps = ", ".join(f"{t * 1e3:.1f} ms" for t in outcome.swap_times)
        print(f"hot swaps at: {swaps} (final model v{outcome.final_model_version})")
    if args.trace:
        count = export_serving_trace(
            args.trace, outcome.served_batches, outcome.swap_times
        )
        print(f"wrote {count} trace events to {args.trace}")
    backend = get_backend()
    if isinstance(backend, (InstrumentedBackend, SanitizerBackend)):
        print()
        print(backend.report())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import format_findings, lint_paths, result_to_sarif
    from repro.analysis.rules import RULE_REGISTRY

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(__file__).resolve().parent]
    try:
        result = lint_paths(paths, select=args.select or None)
    except (FileNotFoundError, KeyError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(result.to_json())
    elif args.format == "sarif":
        print(result_to_sarif(result, "reprolint", RULE_REGISTRY.values()))
    else:
        print(format_findings(result))
    return 0 if result.ok else 1


def _cmd_shapecheck(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        SHAPE_RULES,
        format_findings,
        result_to_sarif,
        shapecheck_paths,
    )

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(__file__).resolve().parent]
    try:
        result = shapecheck_paths(paths, select=args.select or None)
    except (FileNotFoundError, KeyError) as exc:
        print(f"shapecheck: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(result.to_json())
    elif args.format == "sarif":
        print(result_to_sarif(result, "shapecheck", SHAPE_RULES.values()))
    else:
        print(format_findings(result))
    return 0 if result.ok else 1


def _cmd_detcheck(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        DET_RULES,
        detcheck_paths,
        format_findings,
        result_to_sarif,
    )

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(__file__).resolve().parent]
    try:
        result = detcheck_paths(paths, select=args.select or None)
    except (FileNotFoundError, KeyError) as exc:
        print(f"detcheck: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(result.to_json())
    elif args.format == "sarif":
        print(result_to_sarif(result, "detcheck", DET_RULES.values()))
    else:
        print(format_findings(result))
    return 0 if result.ok else 1


def _cmd_perfcheck(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import (
        PERF_RULES,
        build_fusion_plan,
        format_findings,
        perfcheck_paths,
        result_to_sarif,
    )

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(__file__).resolve().parent]
    try:
        result = perfcheck_paths(paths, select=args.select or None)
    except (FileNotFoundError, KeyError) as exc:
        print(f"perfcheck: {exc}", file=sys.stderr)
        return 2
    if args.fusion_plan:
        plan = build_fusion_plan(paths)
        Path(args.fusion_plan).write_text(
            json.dumps(plan, indent=2) + "\n", encoding="utf-8"
        )
        print(f"fusion plan written to {args.fusion_plan}", file=sys.stderr)
    if args.format == "json":
        print(result.to_json())
    elif args.format == "sarif":
        print(result_to_sarif(result, "perfcheck", PERF_RULES.values()))
    else:
        print(format_findings(result))
    return 0 if result.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Umbrella gate: lint + shapecheck + detcheck + perfcheck + hazards."""
    from pathlib import Path

    from repro.analysis import (
        DET_RULES,
        HAZARD_RULES,
        PERF_RULES,
        SHAPE_RULES,
        LintResult,
        detcheck_paths,
        hazard_findings,
        lint_paths,
        perfcheck_paths,
        results_to_sarif_bundle,
        run_hazard_experiment,
        shapecheck_paths,
    )
    from repro.analysis.rules import RULE_REGISTRY

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(__file__).resolve().parent]
    sarif = getattr(args, "format", "text") == "sarif"
    ok = True
    sarif_runs = []
    for name, tool_name, rules, runner in (
        ("lint", "reprolint", RULE_REGISTRY.values(), lint_paths),
        ("shape", "shapecheck", SHAPE_RULES.values(), shapecheck_paths),
        ("det", "detcheck", DET_RULES.values(), detcheck_paths),
        ("perf", "perfcheck", PERF_RULES.values(), perfcheck_paths),
    ):
        try:
            result = runner(paths)
        except FileNotFoundError as exc:
            print(f"{name}: {exc}", file=sys.stderr)
            return 2
        gate_ok = result.ok
        ok = ok and gate_ok
        if sarif:
            sarif_runs.append((result, tool_name, rules))
            continue
        status = "ok" if gate_ok else "FAILED (error-level findings)"
        print(
            f"{name:8s} {result.files_scanned} files, "
            f"{len(result.errors)} errors, "
            f"{len(result.warnings)} warnings  [{status}]"
        )
        if not gate_ok:
            for finding in result.errors:
                print(f"  {finding.format()}")

    hazard_result = run_hazard_experiment(inject_fault=False)
    hazards_ok = hazard_result.report.clean
    ok = ok and hazards_ok
    if sarif:
        hazard_lint = LintResult(
            findings=hazard_findings(hazard_result.report), files_scanned=0
        )
        sarif_runs.append((hazard_lint, "hazards", HAZARD_RULES.values()))
        print(results_to_sarif_bundle(sarif_runs))
        return 0 if ok else 1
    status = "ok" if hazards_ok else "FAILED (unrepaired hazards)"
    print(
        f"hazards  {hazard_result.report.events_analyzed} events, "
        f"{len(hazard_result.report.hazards)} unrepaired, "
        f"{len(hazard_result.report.repaired)} repaired  [{status}]"
    )
    if not hazards_ok:
        for hazard in hazard_result.report.hazards:
            print(f"  {hazard.describe()}")
    return 0 if ok else 1


def _cmd_hazards(args: argparse.Namespace) -> int:
    from repro.analysis import (
        HAZARD_RULES,
        LintResult,
        hazard_findings,
        result_to_sarif,
        run_hazard_experiment,
    )

    result = run_hazard_experiment(
        inject_fault=args.inject,
        num_batches=args.batches,
        prefetch_depth=args.prefetch_depth,
        grad_queue_depth=args.grad_queue_depth,
        seed=args.seed,
    )
    if args.format in ("json", "sarif"):
        findings = hazard_findings(result.report)
        lint_result = LintResult(
            findings=findings,
            files_scanned=0,
        )
        if args.format == "json":
            print(lint_result.to_json())
        else:
            print(
                result_to_sarif(lint_result, "hazards", HAZARD_RULES.values())
            )
    else:
        print(result.summary())
    if args.inject:
        # Fault injection *must* be caught; a silent detector is a bug.
        caught = len(result.report.raw_hazards) >= 1
        if args.format == "text":
            print(
                "detector caught the injected RAW conflict"
                if caught
                else "DETECTOR FAILED: injected conflict went unnoticed"
            )
        return 0 if caught else 1
    return 0 if result.report.clean else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.resilience import (
        FAULT_PLANS,
        FLEET_CHAOS_PLANS,
        ChaosHarnessConfig,
        FleetChaosConfig,
        run_chaos,
        run_fleet_chaos,
    )
    from repro.resilience.faults import FaultPlan

    if args.plan in FLEET_CHAOS_PLANS:
        outcome = run_fleet_chaos(
            args.plan,
            FleetChaosConfig(
                num_replicas=args.replicas,
                num_requests=args.requests,
            ),
        )
        print(outcome.format())
        return 0 if outcome.passed else 1
    if args.plan == "random":
        plan = FaultPlan.random(
            f"random-{args.seed}", seed=args.seed,
            num_faults=args.num_faults, max_step=args.batches,
        )
    else:
        plan = FAULT_PLANS[args.plan]
    config = ChaosHarnessConfig(
        num_batches=args.batches,
        checkpoint_interval=args.checkpoint_interval,
        num_requests=args.requests,
        max_restarts=args.max_restarts,
        num_shards=args.shards,
    )
    if args.checkpoint_dir is not None:
        outcome = run_chaos(plan, args.checkpoint_dir, config)
    else:
        with tempfile.TemporaryDirectory() as scratch:
            outcome = run_chaos(plan, scratch, config)
    print(outcome.format())
    return 0 if outcome.passed else 1


def _cmd_figures(_: argparse.Namespace) -> int:
    import importlib.util
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.exists():
        print(
            "benchmarks/ directory not found (installed package without "
            "the repository); clone the repo to regenerate figures",
            file=sys.stderr,
        )
        return 1
    sys.path.insert(0, str(bench_dir))
    failures = 0
    for path in sorted(bench_dir.glob("bench_*.py")):
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        try:
            spec.loader.exec_module(module)  # type: ignore[union-attr]
            builders = [
                name for name in dir(module) if name.startswith("build_")
            ]
            for name in builders:
                print(getattr(module, name)())
                print()
        except Exception as exc:  # pragma: no cover - CLI robustness
            failures += 1
            print(f"[{path.name}] failed: {exc}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EL-Rec reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="host calibration + device summary")
    sub.add_parser("datasets", help="Table II dataset schemas")
    sub.add_parser("compression", help="Table III compression summary")
    quick = sub.add_parser("quickcheck", help="fast end-to-end smoke test")
    quick.add_argument("--steps", type=int, default=20)
    train = sub.add_parser(
        "train", help="train a small DLRM on a synthetic click log"
    )
    train.add_argument(
        "--dataset", choices=["avazu", "criteo-kaggle", "criteo-tb"],
        default="criteo-kaggle",
    )
    train.add_argument("--scale", type=float, default=3e-5)
    train.add_argument("--steps", type=int, default=20)
    train.add_argument("--batch-size", type=int, default=128)
    train.add_argument("--embedding-dim", type=int, default=8)
    train.add_argument("--tt-rank", type=int, default=8)
    train.add_argument(
        "--embedding-backend",
        choices=["dense", "tt", "eff_tt", "hash", "robe", "pq"],
        default="eff_tt",
        help="embedding-table representation (distinct from --backend, "
        "which picks the kernel execution layer)",
    )
    train.add_argument("--lr", type=float, default=0.1)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--shards", type=int, default=0,
        help="train through a sharded parameter server with this many "
        "simulated devices (0 = plain local training); with "
        "--compress none the loss trajectory is bitwise-independent "
        "of the shard count",
    )
    train.add_argument(
        "--compress", choices=["none", "topk", "quant", "both"],
        default="none",
        help="PS-link compression: top-k error-feedback gradient "
        "pushes and/or int8-quantized row pulls (requires --shards)",
    )
    train.add_argument(
        "--topk-fraction", type=float, default=0.1,
        help="fraction of unique rows sent per step under --compress "
        "topk/both",
    )
    train.add_argument(
        "--device-budget-mb", type=int, default=1,
        help="per-device memory budget for the placement planner "
        "(sharded path only)",
    )
    _add_compression_flags(train)
    _add_backend_flag(train)
    bench = sub.add_parser(
        "bench", help="per-kernel-zone cost report for a fixed workload"
    )
    bench.add_argument(
        "--dataset", choices=["avazu", "criteo-kaggle", "criteo-tb"],
        default="criteo-kaggle",
    )
    bench.add_argument("--scale", type=float, default=3e-5)
    bench.add_argument("--steps", type=int, default=10)
    bench.add_argument("--batch-size", type=int, default=128)
    bench.add_argument("--embedding-dim", type=int, default=8)
    bench.add_argument("--tt-rank", type=int, default=8)
    bench.add_argument("--requests", type=int, default=200)
    bench.add_argument("--seed", type=int, default=0)
    _add_compression_flags(bench)
    _add_backend_flag(bench)
    sub.add_parser("figures", help="regenerate every paper table/figure")
    lint = sub.add_parser(
        "lint", help="run reprolint, the repo-specific static analyzer"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the installed "
        "repro package)",
    )
    lint.add_argument(
        "--select", action="append", metavar="RULE",
        help="only run the named rule (symbolic name or REPnnn id); "
        "repeatable",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
    )
    shapecheck = sub.add_parser(
        "shapecheck",
        help="run the static shape/dtype abstract interpreter",
    )
    shapecheck.add_argument(
        "paths", nargs="*",
        help="files or directories to check (default: the installed "
        "repro package)",
    )
    shapecheck.add_argument(
        "--select", action="append", metavar="RULE",
        help="only run the named rule (symbolic name or SHPnnn id); "
        "repeatable",
    )
    shapecheck.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
    )
    detcheck = sub.add_parser(
        "detcheck",
        help="run the interprocedural determinism-taint analyzer",
    )
    detcheck.add_argument(
        "paths", nargs="*",
        help="files or directories to check as one program (default: "
        "the installed repro package)",
    )
    detcheck.add_argument(
        "--select", action="append", metavar="RULE",
        help="only run the named rule (symbolic name or DETnnn id); "
        "repeatable",
    )
    detcheck.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
    )
    perfcheck = sub.add_parser(
        "perfcheck",
        help="run the static kernel-zone cost & fusion analyzer",
    )
    perfcheck.add_argument(
        "paths", nargs="*",
        help="files or directories to check (default: the installed "
        "repro package)",
    )
    perfcheck.add_argument(
        "--select", action="append", metavar="RULE",
        help="only run the named rule (symbolic name or PERFnnn id); "
        "repeatable",
    )
    perfcheck.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
    )
    perfcheck.add_argument(
        "--fusion-plan", metavar="OUT.json", default=None,
        help="also build the interprocedural FusionPlan over the same "
        "paths and write it here as JSON",
    )
    analyze = sub.add_parser(
        "analyze",
        help="umbrella gate: lint + shapecheck + detcheck + perfcheck "
        "+ hazards, nonzero exit if any gate fails",
    )
    analyze.add_argument(
        "paths", nargs="*",
        help="files or directories for the static gates (default: the "
        "installed repro package)",
    )
    analyze.add_argument(
        "--format", choices=["text", "sarif"], default="text",
        help="sarif merges every gate's findings into one SARIF 2.1.0 "
        "bundle with one run per tool",
    )
    hazards = sub.add_parser(
        "hazards", help="trace a pipelined run and detect RAW/WAR hazards"
    )
    hazards.add_argument(
        "--inject", action="store_true",
        help="disable LC cache management (paper Fig. 10a fault) and "
        "verify the detector catches the resulting RAW conflict",
    )
    hazards.add_argument("--batches", type=int, default=16)
    hazards.add_argument("--prefetch-depth", type=int, default=3)
    hazards.add_argument("--grad-queue-depth", type=int, default=2)
    hazards.add_argument("--seed", type=int, default=0)
    hazards.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="emit unrepaired hazards as findings (line = gather "
        "timestamp in the logical-clock trace)",
    )
    serve = sub.add_parser(
        "serve", help="simulate the online serving subsystem"
    )
    serve.add_argument(
        "--dataset", choices=["avazu", "criteo-kaggle", "criteo-tb"],
        default="criteo-kaggle",
    )
    serve.add_argument("--scale", type=float, default=3e-5)
    serve.add_argument("--requests", type=int, default=2000)
    serve.add_argument(
        "--rate", type=float, default=2000.0,
        help="mean arrival rate, requests/second",
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument(
        "--replicas", type=int, default=1,
        help="run a replicated serving fleet with this many replicas "
        "(each its own fault domain) instead of the single server",
    )
    serve.add_argument(
        "--autoscale", action="store_true",
        help="enable SLO-headroom autoscaling (implies the fleet path)",
    )
    serve.add_argument(
        "--max-replicas", type=int, default=8,
        help="autoscaling ceiling for --autoscale",
    )
    serve.add_argument("--max-batch-size", type=int, default=32)
    serve.add_argument(
        "--max-wait", type=float, default=2e-3,
        help="micro-batching wait budget, seconds",
    )
    serve.add_argument(
        "--hot-coverage", type=float, default=0.1,
        help="fraction of each table's rows materialized in the hot cache",
    )
    serve.add_argument(
        "--train-steps", type=int, default=20,
        help="train this many steps past the initial snapshot and "
        "hot-swap the result in mid-stream (0 disables the swap)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--trace", type=str, default=None,
        help="write a Chrome trace of the serving timeline here",
    )
    _add_compression_flags(serve)
    _add_backend_flag(serve)
    chaos = sub.add_parser(
        "chaos",
        help="run train/serve under a fault plan and check recovery "
        "invariants",
    )
    chaos.add_argument(
        "--plan",
        choices=["none", "smoke", "stage-sweep", "torn-checkpoint",
                 "serve-degrade", "random", "fleet-smoke",
                 "fleet-replica-sweep"],
        default="smoke",
        help="named fault plan ('random' derives one from --seed; "
        "'fleet-*' plans exercise the replicated serving fleet)",
    )
    chaos.add_argument(
        "--replicas", type=int, default=2,
        help="fleet size for the fleet-* plans",
    )
    chaos.add_argument("--batches", type=int, default=18)
    chaos.add_argument("--checkpoint-interval", type=int, default=4)
    chaos.add_argument("--requests", type=int, default=600)
    chaos.add_argument("--max-restarts", type=int, default=8)
    chaos.add_argument("--num-faults", type=int, default=3,
                       help="fault count for --plan random")
    chaos.add_argument(
        "--shards", type=int, default=0,
        help="run the harness on a sharded parameter server with this "
        "many shards (0 = legacy host server); recovery invariants "
        "must hold either way",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--checkpoint-dir", type=str, default=None,
        help="keep snapshots here instead of a temporary directory",
    )

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "datasets": _cmd_datasets,
        "compression": _cmd_compression,
        "quickcheck": _cmd_quickcheck,
        "train": _cmd_train,
        "bench": _cmd_bench,
        "figures": _cmd_figures,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
        "shapecheck": _cmd_shapecheck,
        "detcheck": _cmd_detcheck,
        "perfcheck": _cmd_perfcheck,
        "analyze": _cmd_analyze,
        "hazards": _cmd_hazards,
        "chaos": _cmd_chaos,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
