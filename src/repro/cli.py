"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the host calibration and device cost-model summary.
``datasets``
    Print the Table II dataset schemas.
``compression``
    Print the Table III compression summary.
``quickcheck``
    Train a tiny DLRM on every backend and report losses — a fast
    smoke test that the whole stack works on this machine.
``figures``
    Regenerate every paper table/figure by invoking the benchmark
    builders (several minutes; results also land in
    ``benchmarks/results/`` when run via pytest).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_info(_: argparse.Namespace) -> int:
    from repro.system.devices import (
        TESLA_T4,
        TESLA_V100,
        calibrate_host,
    )

    profile = calibrate_host()
    print("host calibration:")
    print(f"  large-GEMM throughput : {profile.gemm_gflops:10.1f} GFLOP/s")
    print(f"  batched-GEMM (TT)     : {profile.batched_gemm_gflops:10.1f} GFLOP/s")
    print(f"  gather bandwidth      : {profile.gather_gbps:10.1f} GB/s")
    for device in (TESLA_V100, TESLA_T4):
        print(f"device {device.name}:")
        print(f"  effective GEMM        : {device.effective_gflops:10.1f} GFLOP/s")
        print(
            f"  effective batched GEMM: "
            f"{device.effective_batched_gflops:10.1f} GFLOP/s"
        )
        print(f"  HBM / PCIe / P2P      : {device.hbm_bytes / 1e9:.0f} GB / "
              f"{device.h2d_gbps:.0f} GB/s / {device.p2p_gbps:.0f} GB/s")
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    from repro.bench.harness import format_table
    from repro.data.datasets import DATASET_FACTORIES

    rows = []
    for factory in DATASET_FACTORIES.values():
        spec = factory()
        info = spec.describe()
        rows.append(
            [
                info["dataset"],
                info["days"],
                f"{info['samples']:,}",
                info["dense_features"],
                info["sparse_features"],
                f"{info['total_rows']:,}",
            ]
        )
    print(
        format_table(
            ["dataset", "days", "samples", "dense", "sparse", "total rows"],
            rows,
            title="Dataset schemas (paper Table II, full scale)",
        )
    )
    return 0


def _cmd_compression(_: argparse.Namespace) -> int:
    import importlib.util
    from pathlib import Path

    bench = Path(__file__).resolve().parents[2] / "benchmarks"
    spec = importlib.util.spec_from_file_location(
        "bench_table3", bench / "bench_table3_compression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    print(module.build_table3())
    return 0


def _cmd_quickcheck(args: argparse.Namespace) -> int:
    from repro.data.dataloader import SyntheticClickLog
    from repro.data.datasets import criteo_kaggle_like
    from repro.models.config import DLRMConfig, EmbeddingBackend
    from repro.models.dlrm import DLRM

    spec = criteo_kaggle_like(scale=3e-5)
    log = SyntheticClickLog(spec, batch_size=128, seed=0)
    ok = True
    for backend in EmbeddingBackend:
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=0)
        losses = [
            model.train_step(log.batch(i), lr=0.1).loss
            for i in range(args.steps)
        ]
        learned = losses[-1] < losses[0]
        ok = ok and learned
        status = "ok" if learned else "FAILED (loss did not decrease)"
        print(
            f"{backend.value:8s} loss {losses[0]:.4f} -> {losses[-1]:.4f}  "
            f"[{status}]"
        )
    return 0 if ok else 1


def _cmd_figures(_: argparse.Namespace) -> int:
    import importlib.util
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.exists():
        print(
            "benchmarks/ directory not found (installed package without "
            "the repository); clone the repo to regenerate figures",
            file=sys.stderr,
        )
        return 1
    sys.path.insert(0, str(bench_dir))
    failures = 0
    for path in sorted(bench_dir.glob("bench_*.py")):
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        try:
            spec.loader.exec_module(module)  # type: ignore[union-attr]
            builders = [
                name for name in dir(module) if name.startswith("build_")
            ]
            for name in builders:
                print(getattr(module, name)())
                print()
        except Exception as exc:  # pragma: no cover - CLI robustness
            failures += 1
            print(f"[{path.name}] failed: {exc}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EL-Rec reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="host calibration + device summary")
    sub.add_parser("datasets", help="Table II dataset schemas")
    sub.add_parser("compression", help="Table III compression summary")
    quick = sub.add_parser("quickcheck", help="fast end-to-end smoke test")
    quick.add_argument("--steps", type=int, default=20)
    sub.add_parser("figures", help="regenerate every paper table/figure")

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "datasets": _cmd_datasets,
        "compression": _cmd_compression,
        "quickcheck": _cmd_quickcheck,
        "figures": _cmd_figures,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
