"""Synthetic DLRM training data.

The paper evaluates on Avazu, Criteo Kaggle, and Criteo Terabyte.  Those
datasets are not shipped here; instead :mod:`repro.data.synthetic`
generates click logs with the two statistical properties the paper's
optimizations exploit (Figure 4):

* power-law ("Zipf") access skew over each table's rows, and
* a large gap between batch size and unique indices per batch,

plus a *temporal locality* knob (batch-level index clustering) that
models the local information §IV leverages.  The dataset specs in
:mod:`repro.data.datasets` carry the exact schema of Table II at a
configurable scale.
"""

from repro.data.synthetic import (
    ClusteredZipfSampler,
    ZipfSampler,
    zipf_probabilities,
)
from repro.data.datasets import (
    DatasetSpec,
    TableSpec,
    avazu_like,
    criteo_kaggle_like,
    criteo_tb_like,
    DATASET_FACTORIES,
)
from repro.data.dataloader import (
    Batch,
    SyntheticClickLog,
    cumulative_access_curve,
    unique_index_stats,
)

__all__ = [
    "zipf_probabilities",
    "ZipfSampler",
    "ClusteredZipfSampler",
    "TableSpec",
    "DatasetSpec",
    "avazu_like",
    "criteo_kaggle_like",
    "criteo_tb_like",
    "DATASET_FACTORIES",
    "Batch",
    "SyntheticClickLog",
    "unique_index_stats",
    "cumulative_access_curve",
]
