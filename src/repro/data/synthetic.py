"""Power-law index samplers for synthetic click logs.

Real DLRM sparse features follow a "power-law" access distribution
(paper §II-C, Figure 4a): rank-``r`` popularity ``p(r) ~ (r+1)^-alpha``.
Two samplers are provided:

* :class:`ZipfSampler` — exact discrete Zipf sampling via inverse-CDF
  lookup for tables that fit a cumulative array, with an analytic
  continuous approximation for very large tables (40M-row Figure 13
  scale) where materializing the CDF would defeat the purpose.
* :class:`ClusteredZipfSampler` — adds *temporal locality*: each batch
  draws a fraction of its indices from a small batch-specific cluster
  of related rows (users viewing related content in one time window,
  §IV-A), the signal index reordering exploits.

Both scatter popularity ranks through a fixed random permutation so
popular rows are spread across the id space as in real datasets (raw
categorical ids carry no frequency ordering) — without this, index
reordering would have nothing to do.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "zipf_probabilities",
    "analytic_hot_mass",
    "ZipfSampler",
    "ClusteredZipfSampler",
]

# Above this row count the exact CDF array (8 bytes/row) is replaced by
# the analytic continuous inverse.
_EXACT_CDF_LIMIT = 4_000_000


def zipf_probabilities(num_rows: int, alpha: float) -> np.ndarray:
    """Exact normalized Zipf pmf over ranks ``0..num_rows-1``.

    ``p(r) = (r+1)^-alpha / H``, where ``H`` generalizes the harmonic
    number.  Only usable for table sizes where an ``O(num_rows)`` array
    is acceptable.
    """
    check_positive(num_rows, "num_rows")
    check_positive(alpha, "alpha", strict=False)
    ranks = np.arange(1, num_rows + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def analytic_hot_mass(num_rows: int, alpha: float, hot_fraction: float) -> float:
    """Expected fraction of accesses landing in the hottest rows.

    The "hot-set mass" a :class:`~repro.reorder.stats.TableStats` would
    converge to over an infinite access stream: the Zipf CDF evaluated
    at ``ceil(hot_fraction * num_rows)`` ranks.  Uses the exact pmf for
    tables that fit a CDF array and the continuous power-law integral
    (the same approximation :meth:`ZipfSampler._analytic_inverse`
    samples from) for Figure-13-scale tables.
    """
    check_positive(num_rows, "num_rows")
    check_positive(alpha, "alpha", strict=False)
    check_probability(hot_fraction, "hot_fraction")
    hot_rows = int(np.ceil(hot_fraction * num_rows))
    if hot_rows <= 0:
        return 0.0
    if hot_rows >= num_rows:
        return 1.0
    if num_rows <= _EXACT_CDF_LIMIT:
        probs = zipf_probabilities(num_rows, alpha)
        return float(probs[:hot_rows].sum())
    # Continuous-support approximation: mass(m) = h(m+1) / h(N+1) with
    # h(x) the integral of t^-alpha over [1, x].
    def h(x: float) -> float:
        if abs(alpha - 1.0) < 1e-9:
            return float(np.log(x))
        return float((x ** (1.0 - alpha) - 1.0) / (1.0 - alpha))

    return h(hot_rows + 1.0) / h(num_rows + 1.0)


class ZipfSampler:
    """Sample row indices with Zipf-distributed popularity.

    Parameters
    ----------
    num_rows:
        Table length.
    alpha:
        Skew exponent; 0 = uniform, ~1.05 matches the paper's datasets
        (their Figure 4a shows ~10% of rows covering >90% of accesses).
    scatter:
        Permute ranks to random row ids (True matches real data).
    seed:
        RNG for the scatter permutation (sampling draws use the
        generator passed to :meth:`sample`).
    """

    def __init__(
        self,
        num_rows: int,
        alpha: float = 1.05,
        scatter: bool = True,
        seed: RngLike = 0,
    ) -> None:
        check_positive(num_rows, "num_rows")
        check_positive(alpha, "alpha", strict=False)
        self.num_rows = int(num_rows)
        self.alpha = float(alpha)
        rng = ensure_rng(seed)
        self._exact = self.num_rows <= _EXACT_CDF_LIMIT
        if self._exact:
            self._cdf = np.cumsum(zipf_probabilities(self.num_rows, alpha))
            self._cdf[-1] = 1.0  # guard against fp round-off
        else:
            self._cdf = None
        if scatter:
            self._rank_to_row: Optional[np.ndarray] = rng.permutation(
                self.num_rows
            ).astype(np.int64)
        else:
            self._rank_to_row = None

    def sample_ranks(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw popularity *ranks* (0 = most popular)."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        u = rng.random(size)
        if self._exact:
            ranks = np.searchsorted(self._cdf, u, side="left")
        else:
            ranks = self._analytic_inverse(u)
        return np.minimum(ranks, self.num_rows - 1).astype(np.int64)

    def _analytic_inverse(self, u: np.ndarray) -> np.ndarray:
        """Continuous power-law inverse CDF (large-table approximation).

        Integrating ``x^-alpha`` over ``[1, N+1]`` and inverting gives a
        bounded-support Pareto; accurate to within one rank for large
        ``N``, which is all the skew statistics require.
        """
        n = float(self.num_rows)
        if abs(self.alpha - 1.0) < 1e-9:
            x = np.power(n + 1.0, u)
        else:
            one_minus = 1.0 - self.alpha
            x = np.power(
                1.0 + u * (np.power(n + 1.0, one_minus) - 1.0), 1.0 / one_minus
            )
        return np.floor(x - 1.0).astype(np.int64)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw row *indices* (ranks scattered through the permutation)."""
        ranks = self.sample_ranks(size, rng)
        if self._rank_to_row is None:
            return ranks
        return self._rank_to_row[ranks]

    def top_rows(self, count: int) -> np.ndarray:
        """Row ids of the ``count`` most popular rows, best first.

        The profiling oracle for serving-time hot-row caches: combined
        with :meth:`rows_covering` it sizes and fills a
        :class:`~repro.embeddings.inference.HotRowCachedLookup` without
        an observation pass.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        count = min(count, self.num_rows)
        if self._rank_to_row is None:
            return np.arange(count, dtype=np.int64)
        return self._rank_to_row[:count].copy()

    def rows_covering(self, fraction: float) -> int:
        """Smallest number of top rows covering ``fraction`` of accesses.

        Used to size FAE's hot-row GPU cache and to reproduce the
        cumulative-access curves of Figure 4a.  Requires the exact CDF.
        """
        check_probability(fraction, "fraction")
        if not self._exact:
            raise ValueError("rows_covering requires an exact-CDF sampler")
        return int(np.searchsorted(self._cdf, fraction, side="left")) + 1

    def hot_mass(self, hot_fraction: float) -> float:
        """Fraction of accesses expected to hit the hottest rows.

        The analytic counterpart of the measured
        :class:`~repro.reorder.stats.TableStats` hot-set mass; the
        placement planner accepts either.
        """
        return analytic_hot_mass(self.num_rows, self.alpha, hot_fraction)


class ClusteredZipfSampler:
    """Zipf sampling with batch-level temporal clustering.

    Each batch is assigned a latent *topic*: a contiguous window of
    popularity ranks.  With probability ``locality`` an index is drawn
    from the topic window (re-skewed Zipf within the window); otherwise
    it falls back to the global Zipf.  ``locality=0`` reduces exactly
    to :class:`ZipfSampler`.

    Parameters
    ----------
    num_rows, alpha, scatter, seed:
        As for :class:`ZipfSampler`.
    locality:
        Probability of drawing from the batch topic window.
    cluster_size:
        Width of the topic window in ranks.
    """

    def __init__(
        self,
        num_rows: int,
        alpha: float = 1.05,
        locality: float = 0.5,
        cluster_size: int = 256,
        scatter: bool = True,
        seed: RngLike = 0,
    ) -> None:
        check_probability(locality, "locality")
        check_positive(cluster_size, "cluster_size")
        self.base = ZipfSampler(num_rows, alpha, scatter=scatter, seed=seed)
        self.locality = float(locality)
        self.cluster_size = min(int(cluster_size), int(num_rows))

    @property
    def num_rows(self) -> int:
        return self.base.num_rows

    def sample_batch(
        self, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one batch's worth of indices with a shared topic."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        global_ranks = self.base.sample_ranks(size, rng)
        if self.locality <= 0.0 or size == 0:
            ranks = global_ranks
        else:
            # Topic anchor itself is Zipf-distributed: popular regions
            # are popular topics.
            anchor = int(self.base.sample_ranks(1, rng)[0])
            anchor = min(anchor, self.num_rows - self.cluster_size)
            local = anchor + rng.integers(0, self.cluster_size, size=size)
            use_local = rng.random(size) < self.locality
            ranks = np.where(use_local, local, global_ranks)
        ranks = np.minimum(ranks, self.num_rows - 1)
        if self.base._rank_to_row is None:
            return ranks.astype(np.int64)
        return self.base._rank_to_row[ranks]
