"""Deterministic synthetic click-log batches and dataset statistics.

:class:`SyntheticClickLog` turns a :class:`~repro.data.datasets.DatasetSpec`
into an indexable stream of training batches.  Batches are generated on
demand and *deterministically* — batch ``i`` is always the same for a
given seed — so the pipeline executor, the sequential executor and
every framework baseline train on bit-identical data.

Labels come from a planted logistic teacher: each table row carries a
hidden deterministic score and the click probability is a sigmoid of
the dense projection plus pooled row scores.  The signal makes the
accuracy/convergence experiments (Table IV, Figure 15) meaningful: a
model that learns the embeddings recovers the teacher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import DatasetSpec
from repro.data.synthetic import ClusteredZipfSampler
from repro.reorder.bijection import IndexBijection
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = [
    "Batch",
    "SyntheticClickLog",
    "unique_index_stats",
    "cumulative_access_curve",
]


@dataclass
class Batch:
    """One training batch.

    Attributes
    ----------
    dense:
        ``(B, num_dense)`` numerical features.
    sparse_indices:
        Per-table flat index arrays.
    sparse_offsets:
        Per-table bag offsets (boundary form, length ``B+1``).
    labels:
        ``(B,)`` float click labels in {0, 1}.
    batch_id:
        Position in the stream (for pipeline bookkeeping).
    """

    dense: np.ndarray
    sparse_indices: List[np.ndarray]
    sparse_offsets: List[np.ndarray]
    labels: np.ndarray
    batch_id: int = 0

    @property
    def batch_size(self) -> int:
        return int(self.dense.shape[0])

    @property
    def num_tables(self) -> int:
        return len(self.sparse_indices)

    def remap(self, bijections: Sequence[Optional[IndexBijection]]) -> "Batch":
        """Apply per-table index bijections (reordered training data)."""
        if len(bijections) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} bijections, got {len(bijections)}"
            )
        new_indices = [
            bij.apply(idx) if bij is not None else idx
            for idx, bij in zip(self.sparse_indices, bijections)
        ]
        return Batch(
            dense=self.dense,
            sparse_indices=new_indices,
            sparse_offsets=self.sparse_offsets,
            labels=self.labels,
            batch_id=self.batch_id,
        )


def _hidden_row_score(table_seed: int, indices: np.ndarray) -> np.ndarray:
    """Deterministic pseudo-random per-row teacher score in [-1, 1].

    A splitmix64-style integer hash of (table_seed, row) — stateless, so
    the teacher never needs a materialized table even at 40M rows.
    """
    with np.errstate(over="ignore"):  # uint64 wraparound is the hash
        x = indices.astype(np.uint64) + np.uint64(table_seed) * np.uint64(
            0x9E3779B97F4A7C15
        )
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return (x.astype(np.float64) / float(2**64)) * 2.0 - 1.0


class SyntheticClickLog:
    """Deterministic synthetic CTR stream for a dataset spec.

    Parameters
    ----------
    spec:
        Dataset schema (Table II).
    batch_size:
        Samples per batch (paper uses 4K end to end).
    locality:
        Temporal-clustering strength passed to the per-table samplers
        (0 = pure global Zipf).
    seed:
        Master seed; every batch derives its own child generator, so
        random access is cheap and order-independent.
    teacher_strength:
        Scale of the planted signal; 0 makes labels pure noise.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        batch_size: int = 4096,
        locality: float = 0.3,
        seed: int = 0,
        teacher_strength: float = 1.5,
    ) -> None:
        check_positive(batch_size, "batch_size")
        self.spec = spec
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.teacher_strength = float(teacher_strength)
        self.samplers = [
            ClusteredZipfSampler(
                table.num_rows,
                alpha=table.alpha,
                locality=locality,
                cluster_size=max(16, table.num_rows // 64),
                seed=(seed, t),
            )
            for t, table in enumerate(spec.tables)
        ]
        teacher_rng = ensure_rng((seed, 0xD1CE))
        self._dense_teacher = teacher_rng.normal(
            0.0, 1.0 / np.sqrt(max(1, spec.num_dense)), size=spec.num_dense
        )
        self._bias = -1.1  # ~25% positive rate, typical CTR base rate

    @property
    def num_batches(self) -> int:
        return max(1, self.spec.num_samples // self.batch_size)

    def batch(self, batch_id: int) -> Batch:
        """Generate batch ``batch_id`` (deterministic random access)."""
        if batch_id < 0:
            raise ValueError(f"batch_id must be >= 0, got {batch_id}")
        rng = ensure_rng((self.seed, 1, batch_id))
        b = self.batch_size
        dense = rng.normal(0.0, 1.0, size=(b, self.spec.num_dense))
        logits = dense @ self._dense_teacher + self._bias
        sparse_indices: List[np.ndarray] = []
        sparse_offsets: List[np.ndarray] = []
        for t, (table, sampler) in enumerate(zip(self.spec.tables, self.samplers)):
            count = b * table.bag_size
            idx = sampler.sample_batch(count, rng)
            offsets = np.arange(0, count + 1, table.bag_size, dtype=np.int64)
            sparse_indices.append(idx)
            sparse_offsets.append(offsets)
            scores = _hidden_row_score(t + 1, idx).reshape(b, table.bag_size)
            logits = logits + self.teacher_strength * scores.mean(axis=1) / np.sqrt(
                self.spec.num_sparse
            )
        probs = 1.0 / (1.0 + np.exp(-logits))
        labels = (rng.random(b) < probs).astype(np.float64)
        return Batch(
            dense=dense,
            sparse_indices=sparse_indices,
            sparse_offsets=sparse_offsets,
            labels=labels,
            batch_id=batch_id,
        )

    def batches(self, count: int, start: int = 0) -> Iterator[Batch]:
        """Yield ``count`` consecutive batches starting at ``start``."""
        for i in range(start, start + count):
            yield self.batch(i)

    def table_index_stream(
        self, table_idx: int, num_batches: int, start: int = 0
    ) -> List[np.ndarray]:
        """Index arrays of one table over a window of batches.

        The input to index-graph generation (Algorithm 2) and the
        dataset-statistics figures.
        """
        if not 0 <= table_idx < self.spec.num_sparse:
            raise ValueError(
                f"table_idx must be in [0, {self.spec.num_sparse}), got {table_idx}"
            )
        return [
            self.batch(i).sparse_indices[table_idx]
            for i in range(start, start + num_batches)
        ]


def unique_index_stats(
    batches: Sequence[np.ndarray],
) -> Dict[str, float]:
    """Average unique-index statistics over batches (Figure 4b).

    Returns the mean occurrences, mean unique count, and their ratio —
    the "large gap" the in-advance gradient aggregation exploits.
    """
    if not batches:
        raise ValueError("no batches supplied")
    occurrences = [int(np.asarray(b).size) for b in batches]
    uniques = [int(np.unique(np.asarray(b)).size) for b in batches]
    mean_occ = float(np.mean(occurrences))
    mean_unique = float(np.mean(uniques))
    return {
        "mean_indices_per_batch": mean_occ,
        "mean_unique_per_batch": mean_unique,
        "duplication_factor": mean_occ / mean_unique if mean_unique else 1.0,
    }


def cumulative_access_curve(
    batches: Sequence[np.ndarray],
    num_rows: int,
    points: int = 100,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative access share of rows sorted by popularity (Figure 4a).

    Returns ``(fraction_of_rows, fraction_of_accesses)`` arrays of
    length ``points``; e.g. a highly skewed table shows >0.9 access
    share at 0.1 row share.
    """
    if num_rows < 1:
        raise ValueError(f"num_rows must be >= 1, got {num_rows}")
    counts = np.zeros(num_rows, dtype=np.int64)
    for batch in batches:
        np.add.at(counts, np.asarray(batch, dtype=np.int64), 1)
    total = counts.sum()
    if total == 0:
        raise ValueError("batches contain no indices")
    sorted_counts = np.sort(counts)[::-1]
    cumulative = np.cumsum(sorted_counts) / total
    row_fractions = np.linspace(0.0, 1.0, points + 1)[1:]
    positions = np.minimum(
        (row_fractions * num_rows).astype(np.int64), num_rows - 1
    )
    return row_fractions, cumulative[positions]
