"""Dataset specifications mirroring the paper's Table II.

The paper trains on three public click-through-rate datasets.  Shipping
them is impossible (the Terabyte set alone is >1 TB), so each spec
records the *schema* — dense-feature count, per-table cardinalities,
sample count — at full scale, and a ``scale`` knob shrinks cardinalities
and sample counts proportionally for laptop-scale experiments while
preserving the skew structure.

Cardinalities:

* **Criteo Kaggle** — the published per-feature cardinalities of the
  Display Advertising Challenge set (13 dense + 26 categorical,
  ~45.8M samples).
* **Avazu** — the published cardinalities of the Avazu CTR set
  (1 derived numerical feature + 20 categorical, ~40.4M samples,
  11 days).
* **Criteo Terabyte** — per-feature cardinalities of the
  frequency-thresholded MLPerf variant, rescaled so the total row
  count matches the paper's reported 59.2 GB embedding footprint at
  the reference dimension (Table II: "the footprint of Criteo
  Terabyte's embedding tables is about 59.2 GB").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

__all__ = [
    "TableSpec",
    "DatasetSpec",
    "criteo_kaggle_like",
    "avazu_like",
    "criteo_tb_like",
    "DATASET_FACTORIES",
]

# Published per-feature cardinalities.
_CRITEO_KAGGLE_CARDINALITIES: Tuple[int, ...] = (
    1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145, 5683,
    8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4, 7046547, 18,
    15, 286181, 105, 142572,
)

_AVAZU_CARDINALITIES: Tuple[int, ...] = (
    7, 7, 4737, 7745, 26, 8552, 559, 36, 2686408, 6729486, 8251, 5, 4,
    2626, 8, 9, 435, 4, 68, 172,
)

# MLPerf (frequency-thresholded) Criteo Terabyte cardinalities ...
_CRITEO_TB_BASE: Tuple[int, ...] = (
    39884406, 39043, 17289, 7420, 20263, 3, 7120, 1543, 63, 38532951,
    2953546, 403346, 10, 2208, 11938, 155, 4, 976, 14, 39979771,
    25641295, 39664984, 585935, 12972, 108, 36,
)
# ... rescaled so total rows * 4 bytes * reference dim == 59.2 GB.
_TB_REFERENCE_DIM = 64
_TB_TARGET_ROWS = int(59.2e9 / (4 * _TB_REFERENCE_DIM))
_TB_SCALE = _TB_TARGET_ROWS / sum(_CRITEO_TB_BASE)
_CRITEO_TB_CARDINALITIES: Tuple[int, ...] = tuple(
    max(3, int(c * _TB_SCALE)) for c in _CRITEO_TB_BASE
)


@dataclass(frozen=True)
class TableSpec:
    """One sparse feature's embedding table.

    Attributes
    ----------
    name:
        Feature label (``C1``...).
    num_rows:
        Table cardinality.
    alpha:
        Zipf skew exponent of the feature's access distribution.
    bag_size:
        Indices per sample for this feature (1 = one-hot, the CTR
        datasets' case; >1 exercises multi-hot pooling).
    """

    name: str
    num_rows: int
    alpha: float = 1.05
    bag_size: int = 1

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {self.num_rows}")
        if self.bag_size < 1:
            raise ValueError(f"bag_size must be >= 1, got {self.bag_size}")
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")

    def footprint_bytes(self, embedding_dim: int, dtype_bytes: int = 4) -> int:
        """Dense embedding-table footprint for this feature."""
        return self.num_rows * embedding_dim * dtype_bytes


@dataclass(frozen=True)
class DatasetSpec:
    """Schema of one CTR dataset (paper Table II row).

    Attributes
    ----------
    name:
        Dataset label.
    num_dense:
        Count of numerical (dense) features.
    tables:
        One :class:`TableSpec` per categorical feature.
    num_samples:
        Training-set size.
    days:
        Span of the log in days (Table II context).
    scale:
        The shrink factor this spec was generated with (1.0 = paper
        scale); recorded for provenance in benchmark output.
    """

    name: str
    num_dense: int
    tables: Tuple[TableSpec, ...]
    num_samples: int
    days: int
    scale: float = 1.0

    @property
    def num_sparse(self) -> int:
        return len(self.tables)

    @property
    def total_rows(self) -> int:
        return sum(t.num_rows for t in self.tables)

    def embedding_footprint_bytes(
        self, embedding_dim: int, dtype_bytes: int = 4
    ) -> int:
        """Total dense embedding footprint across all tables."""
        return sum(
            t.footprint_bytes(embedding_dim, dtype_bytes) for t in self.tables
        )

    def large_tables(self, threshold_rows: int = 1_000_000) -> List[TableSpec]:
        """Tables the paper TT-compresses (>1M rows at full scale).

        The threshold scales with the spec so scaled-down datasets
        select the *same* tables the full-scale run would.
        """
        scaled_threshold = max(1, int(threshold_rows * self.scale))
        return [t for t in self.tables if t.num_rows > scaled_threshold]

    def describe(self) -> Dict[str, object]:
        """Table II row for this dataset."""
        return {
            "dataset": self.name,
            "days": self.days,
            "samples": self.num_samples,
            "dense_features": self.num_dense,
            "sparse_features": self.num_sparse,
            "total_rows": self.total_rows,
            "scale": self.scale,
        }


def _scaled_tables(
    cardinalities: Tuple[int, ...],
    scale: float,
    alpha: float,
    min_rows: int = 3,
) -> Tuple[TableSpec, ...]:
    return tuple(
        TableSpec(name=f"C{i + 1}", num_rows=max(min_rows, int(c * scale)), alpha=alpha)
        for i, c in enumerate(cardinalities)
    )


def criteo_kaggle_like(scale: float = 1.0, alpha: float = 1.05) -> DatasetSpec:
    """Criteo Kaggle schema: 13 dense + 26 sparse, ~45.8M samples, 7 days."""
    _check_scale(scale)
    return DatasetSpec(
        name="criteo-kaggle",
        num_dense=13,
        tables=_scaled_tables(_CRITEO_KAGGLE_CARDINALITIES, scale, alpha),
        num_samples=max(1, int(45_840_617 * scale)),
        days=7,
        scale=scale,
    )


def avazu_like(scale: float = 1.0, alpha: float = 1.05) -> DatasetSpec:
    """Avazu schema: 1 dense + 20 sparse, ~40.4M samples, 11 days."""
    _check_scale(scale)
    return DatasetSpec(
        name="avazu",
        num_dense=1,
        tables=_scaled_tables(_AVAZU_CARDINALITIES, scale, alpha),
        num_samples=max(1, int(40_428_967 * scale)),
        days=11,
        scale=scale,
    )


def criteo_tb_like(scale: float = 1.0, alpha: float = 1.05) -> DatasetSpec:
    """Criteo Terabyte schema: 13 dense + 26 sparse, ~4.37B samples, 24 days.

    The largest publicly available DLRM dataset (paper §VI-A); its
    59.2 GB dense embedding footprint exceeds any single GPU's HBM,
    which is the motivating scenario for EL-Rec.
    """
    _check_scale(scale)
    return DatasetSpec(
        name="criteo-tb",
        num_dense=13,
        tables=_scaled_tables(_CRITEO_TB_CARDINALITIES, scale, alpha),
        num_samples=max(1, int(4_373_472_329 * scale)),
        days=24,
        scale=scale,
    )


def _check_scale(scale: float) -> None:
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")


DATASET_FACTORIES: Dict[str, Callable[..., DatasetSpec]] = {
    "avazu": avazu_like,
    "criteo-kaggle": criteo_kaggle_like,
    "criteo-tb": criteo_tb_like,
}
