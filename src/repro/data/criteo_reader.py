"""Reader for the Criteo click-log TSV format.

The reproduction trains on synthetic streams, but users with the real
Criteo Kaggle / Terabyte files (or Avazu exported to the same layout)
can feed them directly: each line is

``label \\t I1 ... I13 \\t C1 ... C26``

with integer (possibly empty/negative) dense features and 8-hex-digit
categorical hashes; empty fields are missing values.  The reader
yields :class:`~repro.data.dataloader.Batch` objects after applying the
:mod:`repro.data.preprocess` transforms, exactly the NVTabular role in
the paper's setup (§VI-A).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from repro.data.dataloader import Batch
from repro.data.preprocess import CategoryEncoder, DenseNormalizer
from repro.utils.validation import check_positive

__all__ = ["CriteoTSVReader", "parse_criteo_lines"]


def _open(source: Union[str, Path, TextIO]) -> TextIO:
    if hasattr(source, "read"):
        return source  # type: ignore[return-value]
    path = Path(source)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"))
    return open(path, "r")


def parse_criteo_lines(
    lines: Sequence[str],
    num_dense: int = 13,
    num_sparse: int = 26,
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Parse raw TSV lines into ``(labels, dense, sparse_columns)``.

    Missing dense fields become 0 (clamped later by the log transform);
    missing categorical fields become the sentinel token ``0`` (which
    the frequency-threshold encoder maps to OOV anyway).  Categorical
    hex strings parse as base-16 integers.

    Raises
    ------
    ValueError
        On a line with the wrong field count.
    """
    num_fields = 1 + num_dense + num_sparse
    labels = np.empty(len(lines), dtype=np.float64)
    dense = np.zeros((len(lines), num_dense), dtype=np.float64)
    sparse = np.zeros((len(lines), num_sparse), dtype=np.int64)
    for row, line in enumerate(lines):
        fields = line.rstrip("\n").split("\t")
        if len(fields) != num_fields:
            raise ValueError(
                f"line {row}: expected {num_fields} tab-separated fields, "
                f"got {len(fields)}"
            )
        labels[row] = float(fields[0])
        for j in range(num_dense):
            value = fields[1 + j]
            dense[row, j] = float(value) if value else 0.0
        for j in range(num_sparse):
            token = fields[1 + num_dense + j]
            sparse[row, j] = int(token, 16) if token else 0
    return labels, dense, [sparse[:, j] for j in range(num_sparse)]


class CriteoTSVReader:
    """Streaming Criteo reader with fitted preprocessing.

    Two-phase use mirroring NVTabular: :meth:`fit` scans a sample of
    the file to build per-feature vocabularies and dense statistics;
    :meth:`batches` then streams encoded :class:`Batch` objects.

    Parameters
    ----------
    num_dense, num_sparse:
        Schema (13/26 for Criteo; pass 1/20 for Avazu-format exports).
    min_frequency:
        Categorify frequency threshold (the paper's preprocessing).
    max_cardinality:
        Optional per-feature vocabulary cap.
    """

    def __init__(
        self,
        num_dense: int = 13,
        num_sparse: int = 26,
        min_frequency: int = 2,
        max_cardinality: Optional[int] = None,
    ) -> None:
        check_positive(num_dense, "num_dense")
        check_positive(num_sparse, "num_sparse")
        self.num_dense = int(num_dense)
        self.num_sparse = int(num_sparse)
        self.encoders = [
            CategoryEncoder(
                min_frequency=min_frequency, max_cardinality=max_cardinality
            )
            for _ in range(self.num_sparse)
        ]
        self.normalizer = DenseNormalizer()
        self._fitted = False

    # -- phase 1 ---------------------------------------------------------
    def fit(
        self,
        source: Union[str, Path, TextIO],
        max_lines: Optional[int] = None,
        chunk_lines: int = 8192,
    ) -> "CriteoTSVReader":
        """Scan (a prefix of) the file and fit the transforms."""
        handle = _open(source)
        seen = 0
        while True:
            chunk = []
            for line in handle:
                chunk.append(line)
                seen += 1
                if len(chunk) >= chunk_lines or (
                    max_lines is not None and seen >= max_lines
                ):
                    break
            if not chunk:
                break
            _, dense, sparse_cols = parse_criteo_lines(
                chunk, self.num_dense, self.num_sparse
            )
            self.normalizer.partial_fit(dense)
            for enc, col in zip(self.encoders, sparse_cols):
                enc.partial_fit(col)
            if max_lines is not None and seen >= max_lines:
                break
        self.normalizer.finalize()
        for enc in self.encoders:
            enc.finalize()
        self._fitted = True
        return self

    @property
    def cardinalities(self) -> List[int]:
        """Encoded vocabulary size per sparse feature (incl. OOV)."""
        if not self._fitted:
            raise RuntimeError("reader not fitted; call fit() first")
        return [enc.cardinality for enc in self.encoders]

    # -- phase 2 ---------------------------------------------------------
    def encode_lines(self, lines: Sequence[str], batch_id: int = 0) -> Batch:
        """Encode raw TSV lines into one training batch."""
        if not self._fitted:
            raise RuntimeError("reader not fitted; call fit() first")
        labels, dense, sparse_cols = parse_criteo_lines(
            lines, self.num_dense, self.num_sparse
        )
        batch_size = len(lines)
        offsets = np.arange(batch_size + 1, dtype=np.int64)
        return Batch(
            dense=self.normalizer.transform(dense),
            sparse_indices=[
                enc.transform(col)
                for enc, col in zip(self.encoders, sparse_cols)
            ],
            sparse_offsets=[offsets] * self.num_sparse,
            labels=labels,
            batch_id=batch_id,
        )

    def batches(
        self,
        source: Union[str, Path, TextIO],
        batch_size: int = 4096,
        drop_last: bool = True,
    ) -> Iterator[Batch]:
        """Stream encoded batches from a TSV file."""
        check_positive(batch_size, "batch_size")
        handle = _open(source)
        buffer: List[str] = []
        batch_id = 0
        for line in handle:
            buffer.append(line)
            if len(buffer) == batch_size:
                yield self.encode_lines(buffer, batch_id)
                batch_id += 1
                buffer = []
        if buffer and not drop_last:
            yield self.encode_lines(buffer, batch_id)
