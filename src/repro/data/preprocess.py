"""Click-log preprocessing (the NVTabular role in the paper's setup).

The paper preprocesses Criteo/Avazu with Nvidia NVTabular (§VI-A):
raw categorical strings are hashed/encoded into contiguous ids,
infrequent categories are folded into an out-of-vocabulary bucket, and
numerical features are normalized.  This module reproduces those
transforms for raw synthetic logs so the full ingest path exists:

* :class:`CategoryEncoder` — frequency-threshold vocabulary builder
  mapping raw categorical values to contiguous ids with an OOV bucket
  (id 0), exactly the ``Categorify(freq_threshold=...)`` op.
* :class:`DenseNormalizer` — log1p + standardization of numerical
  features (the standard Criteo recipe).
* :func:`hash_encode` — stateless feature hashing for features whose
  vocabulary is unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["CategoryEncoder", "DenseNormalizer", "hash_encode"]


def hash_encode(values: np.ndarray, num_buckets: int, seed: int = 0) -> np.ndarray:
    """Stateless feature hashing of integer-coded raw values.

    Maps arbitrary non-negative integer tokens into ``[0, num_buckets)``
    with a splitmix64-style mix — the "hashing trick" baseline of the
    paper's related work [49].  Deterministic for a given seed.
    """
    check_positive(num_buckets, "num_buckets")
    vals = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = vals + np.uint64(seed) * np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(num_buckets)).astype(np.int64)


@dataclass
class CategoryEncoder:
    """Frequency-threshold categorical encoder (``Categorify`` analog).

    Two-phase use: ``fit`` on (an iterator of) raw value arrays to
    build the vocabulary, then ``transform`` maps raw values to ids.
    Values seen fewer than ``min_frequency`` times — and values never
    seen during fitting — map to the OOV bucket, id ``0``.  Retained
    vocabulary entries get ids ``1..cardinality-1`` in descending
    frequency order (so id magnitude correlates with popularity, which
    also primes the tables for TT-prefix locality).

    Attributes
    ----------
    min_frequency:
        Occurrence threshold below which values are folded into OOV.
    max_cardinality:
        Optional hard cap on vocabulary size (keeps the most frequent).
    """

    min_frequency: int = 1
    max_cardinality: Optional[int] = None
    _counts: Dict[int, int] = field(default_factory=dict, repr=False)
    _vocab: Optional[Dict[int, int]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.min_frequency < 1:
            raise ValueError(
                f"min_frequency must be >= 1, got {self.min_frequency}"
            )
        if self.max_cardinality is not None and self.max_cardinality < 1:
            raise ValueError(
                f"max_cardinality must be >= 1, got {self.max_cardinality}"
            )

    # -- fitting -------------------------------------------------------
    def partial_fit(self, raw_values: np.ndarray) -> "CategoryEncoder":
        """Accumulate value counts from one chunk of the log."""
        if self._vocab is not None:
            raise RuntimeError("encoder already finalized")
        vals, counts = np.unique(
            np.asarray(raw_values, dtype=np.int64), return_counts=True
        )
        for v, c in zip(vals.tolist(), counts.tolist()):
            self._counts[v] = self._counts.get(v, 0) + c
        return self

    def fit(self, chunks: Iterable[np.ndarray]) -> "CategoryEncoder":
        """Fit over an iterable of raw-value arrays, then finalize."""
        for chunk in chunks:
            self.partial_fit(chunk)
        return self.finalize()

    def finalize(self) -> "CategoryEncoder":
        """Freeze the vocabulary; call after the last ``partial_fit``."""
        if self._vocab is not None:
            return self
        kept = [
            (count, value)
            for value, count in self._counts.items()
            if count >= self.min_frequency
        ]
        # Descending frequency, ties by value for determinism.
        kept.sort(key=lambda pair: (-pair[0], pair[1]))
        if self.max_cardinality is not None:
            kept = kept[: self.max_cardinality - 1]  # reserve id 0 for OOV
        self._vocab = {
            value: idx + 1 for idx, (_, value) in enumerate(kept)
        }
        self._counts.clear()
        return self

    # -- transform -----------------------------------------------------
    @property
    def cardinality(self) -> int:
        """Encoded vocabulary size including the OOV bucket."""
        if self._vocab is None:
            raise RuntimeError("encoder not finalized; call fit/finalize")
        return len(self._vocab) + 1

    def transform(self, raw_values: np.ndarray) -> np.ndarray:
        """Map raw values to ids in ``[0, cardinality)`` (0 = OOV)."""
        if self._vocab is None:
            raise RuntimeError("encoder not finalized; call fit/finalize")
        vals = np.asarray(raw_values, dtype=np.int64)
        out = np.zeros(vals.shape, dtype=np.int64)
        # vectorized dict lookup via sorted key array
        if self._vocab:
            keys = np.fromiter(self._vocab.keys(), dtype=np.int64)
            ids = np.fromiter(self._vocab.values(), dtype=np.int64)
            order = np.argsort(keys)
            keys, ids = keys[order], ids[order]
            pos = np.searchsorted(keys, vals)
            pos = np.minimum(pos, keys.size - 1)
            hit = keys[pos] == vals
            out[hit] = ids[pos[hit]]
        return out

    def oov_rate(self, raw_values: np.ndarray) -> float:
        """Fraction of values mapping to the OOV bucket."""
        encoded = self.transform(raw_values)
        return float((encoded == 0).mean()) if encoded.size else 0.0


@dataclass
class DenseNormalizer:
    """Numerical-feature normalization: ``log1p`` then standardize.

    The Criteo recipe: counts span orders of magnitude, so a log
    transform precedes per-feature zero-mean/unit-variance scaling.
    Negative raw values (Criteo uses -1/-2 sentinels) clamp to 0 before
    the log.
    """

    log_transform: bool = True
    _mean: Optional[np.ndarray] = field(default=None, repr=False)
    _std: Optional[np.ndarray] = field(default=None, repr=False)
    _count: int = field(default=0, repr=False)
    _sum: Optional[np.ndarray] = field(default=None, repr=False)
    _sumsq: Optional[np.ndarray] = field(default=None, repr=False)

    def _pre(self, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"dense must be 2-D, got shape {dense.shape}")
        if self.log_transform:
            dense = np.log1p(np.maximum(dense, 0.0))
        return dense

    def partial_fit(self, dense: np.ndarray) -> "DenseNormalizer":
        """Accumulate running moments from one chunk."""
        pre = self._pre(dense)
        if self._sum is None:
            self._sum = pre.sum(axis=0)
            self._sumsq = (pre**2).sum(axis=0)
        else:
            if pre.shape[1] != self._sum.size:
                raise ValueError(
                    f"feature count changed: {pre.shape[1]} != {self._sum.size}"
                )
            self._sum += pre.sum(axis=0)
            self._sumsq += (pre**2).sum(axis=0)
        self._count += pre.shape[0]
        return self

    def finalize(self) -> "DenseNormalizer":
        if self._sum is None or self._count == 0:
            raise RuntimeError("no data accumulated")
        self._mean = self._sum / self._count
        var = np.maximum(self._sumsq / self._count - self._mean**2, 0.0)
        self._std = np.sqrt(var)
        self._std[self._std < 1e-12] = 1.0  # constant features pass through
        return self

    def fit(self, chunks: Iterable[np.ndarray]) -> "DenseNormalizer":
        for chunk in chunks:
            self.partial_fit(chunk)
        return self.finalize()

    def transform(self, dense: np.ndarray) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise RuntimeError("normalizer not finalized; call fit/finalize")
        pre = self._pre(dense)
        if pre.shape[1] != self._mean.size:
            raise ValueError(
                f"feature count mismatch: {pre.shape[1]} != {self._mean.size}"
            )
        return (pre - self._mean) / self._std
