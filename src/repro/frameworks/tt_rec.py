"""TT-Rec: Tensor-Train compression with naive kernels [20].

Strategy: compress the large tables with TT so everything fits in one
GPU's HBM — eliminating host traffic — but pay the TT computation
overhead with per-occurrence lookup (no reuse buffer), per-occurrence
backward (no in-advance gradient aggregation), and a gradient
materialization before a separate optimizer pass (extra kernel
launches and data movement, §III-B).
"""

from __future__ import annotations

from typing import Dict

from repro.frameworks.base import Framework, TimeBreakdown, WorkloadProfile
from repro.system.devices import DeviceSpec
from repro.system.multi_gpu import ring_allreduce_time

__all__ = ["TTRec"]


class TTRec(Framework):
    """TT-compressed embeddings with TT-Rec's unoptimized kernels."""

    name = "TT-Rec"

    def iteration_time(
        self,
        profile: WorkloadProfile,
        device: DeviceSpec,
        num_gpus: int = 1,
    ) -> TimeBreakdown:
        work = profile if num_gpus == 1 else profile.shard(num_gpus)
        # TT contractions are batched-small-GEMMs.  Prefer analytic
        # FLOP-count projection (free of host interpreter overhead);
        # fall back to scaling the measured host wall clock.
        if work.tt_gflops_fwd > 0:
            tt_fwd = self.cost.batched_kernel_time(work.tt_gflops_fwd, device)
            tt_bwd = self.cost.batched_kernel_time(work.tt_gflops_bwd, device)
        else:
            tt_fwd = self.cost.scale_batched(work.host_tt_fwd_time, device)
            tt_bwd = self.cost.scale_batched(work.host_tt_bwd_time, device)
        launches = profile.tt_kernel_launches * self.cost.launch_time(device)
        gpu_mlp = self.cost.scale_compute(work.host_mlp_time, device)
        components = {
            "tt_lookup": tt_fwd,
            "tt_backward_update": tt_bwd,
            "kernel_launches": launches,
            "gpu_mlp": gpu_mlp,
        }
        if num_gpus > 1:
            components["grad_allreduce"] = ring_allreduce_time(
                profile.tt_param_bytes, num_gpus, device
            )
        return self._breakdown(device, num_gpus, **components)

    def gpu_embedding_bytes(self, profile: WorkloadProfile) -> int:
        return profile.tt_param_bytes

    def table1_row(self) -> Dict[str, str]:
        return {
            "framework": "TT-Rec",
            "host_memory": "yes",
            "embedding_compression": "yes",
            "cpu_gpu_comm_latency": "n/a",
            "compression_overhead": "high",
        }
