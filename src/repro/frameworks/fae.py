"""FAE: frequently-accessed-embedding caching [24].

Strategy: profile the access skew, cache the hot rows in GPU HBM, and
classify every training batch as *hot* (touches only cached rows —
trains entirely on the GPU) or *cold* (falls back to the CPU+host
path).  The paper's profiling found ~25% cold batches, which caps FAE's
speedup (§VI-B).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.frameworks.base import Framework, TimeBreakdown, WorkloadProfile
from repro.frameworks.dlrm_ps import DlrmPS
from repro.system.devices import DeviceSpec
from repro.utils.validation import check_probability

__all__ = ["FAE", "profile_hot_fraction"]


def profile_hot_fraction(
    batches_per_table: Sequence[Sequence[np.ndarray]],
    table_rows: Sequence[int],
    hot_rows_fraction: float = 0.01,
) -> float:
    """FAE's input profiling pass: the fraction of *hot* batches.

    A batch is hot when **every** sparse index it touches (across all
    tables) falls in that table's cached hot set — FAE trains such
    batches entirely on the GPU; any other batch falls back to the
    CPU+host path.  The hot set of each table is its
    ``hot_rows_fraction`` most frequently accessed rows, estimated from
    the same sample of batches (FAE's offline profiling).

    Parameters
    ----------
    batches_per_table:
        ``batches_per_table[t][b]`` is the index array of batch ``b``
        for table ``t``; all tables must cover the same batches.
    table_rows:
        Cardinality per table.
    hot_rows_fraction:
        Fraction of each table cached on the GPU.

    Returns
    -------
    Fraction of batches classified hot (the paper's profiling found
    ~0.75 on its datasets).
    """
    check_probability(hot_rows_fraction, "hot_rows_fraction")
    if len(batches_per_table) != len(table_rows):
        raise ValueError(
            f"got {len(batches_per_table)} table streams for "
            f"{len(table_rows)} tables"
        )
    num_batches = len(batches_per_table[0])
    if any(len(stream) != num_batches for stream in batches_per_table):
        raise ValueError("all tables must cover the same batches")
    if num_batches == 0:
        raise ValueError("no batches supplied")

    hot_sets = []
    for stream, rows in zip(batches_per_table, table_rows):
        counts = np.zeros(rows, dtype=np.int64)
        for batch in stream:
            np.add.at(counts, np.asarray(batch, dtype=np.int64), 1)
        num_hot = max(1, int(rows * hot_rows_fraction))
        hot = np.zeros(rows, dtype=bool)
        hot[np.argsort(-counts, kind="stable")[:num_hot]] = True
        hot_sets.append(hot)

    hot_batches = 0
    for b in range(num_batches):
        if all(
            hot_sets[t][np.asarray(stream[b], dtype=np.int64)].all()
            for t, stream in enumerate(batches_per_table)
        ):
            hot_batches += 1
    return hot_batches / num_batches


class FAE(Framework):
    """Hot/cold split training with a GPU-resident hot-row cache."""

    name = "FAE"

    def __init__(self, cost_model=None, hot_rows_fraction: float = 0.01) -> None:
        super().__init__(cost_model)
        if not 0 < hot_rows_fraction <= 1:
            raise ValueError(
                f"hot_rows_fraction must be in (0, 1], got {hot_rows_fraction}"
            )
        self.hot_rows_fraction = hot_rows_fraction
        self._fallback = DlrmPS(self.cost)

    def iteration_time(
        self,
        profile: WorkloadProfile,
        device: DeviceSpec,
        num_gpus: int = 1,
    ) -> TimeBreakdown:
        # Hot batch: dense lookup on GPU (memory-bound) + GPU MLP, no
        # host traffic.
        gpu_lookup = self.cost.scale_memory(profile.host_dense_emb_time, device)
        gpu_mlp = self.cost.scale_compute(profile.host_mlp_time, device)
        hot_time = gpu_lookup + gpu_mlp
        # Cold batch: the DLRM CPU+GPU path.
        cold = self._fallback.iteration_time(profile, device, num_gpus=1)
        p_hot = profile.hot_fraction
        expected_hot = p_hot * hot_time
        expected_cold = (1.0 - p_hot) * cold.total
        breakdown = self._breakdown(
            device,
            num_gpus,
            hot_batches=expected_hot,
            cold_batches=expected_cold,
        )
        return breakdown

    def gpu_embedding_bytes(self, profile: WorkloadProfile) -> int:
        """Only the hot rows are cached in HBM."""
        return int(profile.dense_table_bytes * self.hot_rows_fraction)

    def table1_row(self) -> Dict[str, str]:
        return {
            "framework": "FAE",
            "host_memory": "yes",
            "embedding_compression": "no",
            "cpu_gpu_comm_latency": "moderate",
            "compression_overhead": "n/a",
        }
