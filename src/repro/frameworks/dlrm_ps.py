"""Facebook DLRM in CPU+GPU (parameter-server) mode [23].

Strategy: the full dense embedding tables live in host memory; the CPU
performs the sparse lookup/pooling and the sparse update; pooled
embeddings are copied to the GPU every iteration and their gradients
copied back; the GPU trains the MLPs.  Nothing overlaps — the paper
(§I) identifies exactly this serialization plus transfer latency as the
PS bottleneck EL-Rec removes.
"""

from __future__ import annotations

from typing import Dict

from repro.frameworks.base import Framework, TimeBreakdown, WorkloadProfile
from repro.system.devices import DeviceSpec
from repro.system.multi_gpu import all2all_time, ring_allreduce_time

__all__ = ["DlrmPS"]

# Per-collective synchronization cost (stream sync + NCCL coordination).
_SYNC_OVERHEAD_S = 50e-6


class DlrmPS(Framework):
    """DLRM with host-resident embeddings and CPU-side sparse ops."""

    name = "DLRM"

    def iteration_time(
        self,
        profile: WorkloadProfile,
        device: DeviceSpec,
        num_gpus: int = 1,
    ) -> TimeBreakdown:
        if num_gpus == 1:
            return self._single_gpu(profile, device)
        return self._multi_gpu(profile, device, num_gpus)

    def _single_gpu(
        self, profile: WorkloadProfile, device: DeviceSpec
    ) -> TimeBreakdown:
        # CPU-side embedding work runs at host speed (it *is* a CPU).
        cpu_embedding = profile.host_dense_emb_time
        transfer_down = self.cost.h2d_time(profile.embedding_transfer_bytes, device)
        gpu_mlp = self.cost.scale_compute(profile.host_mlp_time, device)
        transfer_up = self.cost.h2d_time(profile.embedding_transfer_bytes, device)
        return self._breakdown(
            device,
            1,
            cpu_embedding=cpu_embedding,
            h2d_embeddings=transfer_down,
            gpu_mlp=gpu_mlp,
            d2h_gradients=transfer_up,
        )

    def _multi_gpu(
        self, profile: WorkloadProfile, device: DeviceSpec, num_gpus: int
    ) -> TimeBreakdown:
        """Hybrid-parallel DLRM: sharded embeddings on GPUs, DP MLPs.

        With enough aggregate HBM the tables move onto the GPUs
        (model-parallel); each iteration pays an all-to-all to route
        pooled embeddings to the data-parallel MLP shards, a second
        all-to-all for their gradients, and an MLP gradient AllReduce.
        """
        total_hbm = device.hbm_bytes * 0.8 * num_gpus
        if profile.dense_table_bytes > total_hbm:
            return self._infeasible(
                device,
                num_gpus,
                f"dense tables ({profile.dense_table_bytes / 1e9:.1f} GB) exceed "
                f"{num_gpus}x HBM",
            )
        shard = profile.shard(num_gpus)
        gpu_lookup = self.cost.scale_memory(profile.host_dense_emb_time, device)
        # The hybrid-parallel reference implementation exchanges each
        # table's pooled embeddings separately (unfused all-to-all).
        exchange = all2all_time(
            shard.embedding_transfer_bytes,
            num_gpus,
            device,
            num_messages=profile.num_tables,
        )
        gpu_mlp = self.cost.scale_compute(shard.host_mlp_time, device)
        mlp_bytes = _mlp_param_bytes(profile)
        allreduce = ring_allreduce_time(mlp_bytes, num_gpus, device)
        return self._breakdown(
            device,
            num_gpus,
            gpu_embedding_lookup=gpu_lookup,
            all2all_forward=exchange,
            gpu_mlp=gpu_mlp,
            all2all_backward=exchange,
            mlp_allreduce=allreduce,
            collective_sync=3 * _SYNC_OVERHEAD_S,
        )

    def gpu_embedding_bytes(self, profile: WorkloadProfile) -> int:
        # Single-GPU CPU+GPU mode keeps embeddings on the host.
        return 0

    def table1_row(self) -> Dict[str, str]:
        return {
            "framework": "DLRM",
            "host_memory": "yes",
            "embedding_compression": "no",
            "cpu_gpu_comm_latency": "high",
            "compression_overhead": "n/a",
        }


def _mlp_param_bytes(profile: WorkloadProfile) -> int:
    """Rough dense-parameter footprint for the AllReduce payload.

    DLRM MLPs are small relative to embeddings; a fixed estimate from
    the standard configuration (a few MB) is accurate enough for the
    collective's cost.
    """
    hidden = 512
    layers = 6
    return layers * hidden * hidden * profile.dtype_bytes
