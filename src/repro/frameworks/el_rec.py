"""EL-Rec: the paper's framework (Eff-TT + reordering + pipeline).

Strategy: TT-compress the large tables with Eff-TT kernels (reuse
buffer, in-advance gradient aggregation, fused update) and replicate
them in HBM; train data-parallel across GPUs with a single gradient
AllReduce; when even the compressed model outgrows HBM, spill tables to
host memory behind the 3-stage pipeline with the embedding cache, which
overlaps CPU gather/update and transfers with GPU compute.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.frameworks.base import Framework, TimeBreakdown, WorkloadProfile
from repro.system.devices import DeviceSpec
from repro.system.multi_gpu import ring_allreduce_time
from repro.system.pipeline import pipeline_schedule

__all__ = ["ELRec"]


class ELRec(Framework):
    """The paper's framework model."""

    name = "EL-Rec"

    def iteration_time(
        self,
        profile: WorkloadProfile,
        device: DeviceSpec,
        num_gpus: int = 1,
    ) -> TimeBreakdown:
        work = profile if num_gpus == 1 else profile.shard(num_gpus)
        # Eff-TT contractions are batched-small-GEMMs.  Prefer analytic
        # FLOP-count projection; fall back to scaled host wall clock.
        if work.efftt_gflops_fwd > 0:
            eff_fwd = self.cost.batched_kernel_time(
                work.efftt_gflops_fwd, device
            )
            eff_bwd = self.cost.batched_kernel_time(
                work.efftt_gflops_bwd, device
            )
        else:
            eff_fwd = self.cost.scale_batched(work.host_efftt_fwd_time, device)
            eff_bwd = self.cost.scale_batched(work.host_efftt_bwd_time, device)
        launches = profile.efftt_kernel_launches * self.cost.launch_time(device)
        gpu_mlp = self.cost.scale_compute(work.host_mlp_time, device)
        components = {
            "efftt_lookup": eff_fwd,
            "efftt_backward_fused_update": eff_bwd,
            "kernel_launches": launches,
            "gpu_mlp": gpu_mlp,
        }
        if num_gpus > 1:
            # Data-parallel training overlaps the gradient AllReduce
            # with backward compute (standard DDP bucketing): only the
            # residual beyond the backward window hits the critical
            # path.  Model-parallel baselines cannot overlap their
            # forward all-to-all — it produces the activations.
            allreduce = ring_allreduce_time(
                profile.tt_param_bytes, num_gpus, device
            )
            backward_window = eff_bwd + (2.0 / 3.0) * gpu_mlp
            components["grad_allreduce_exposed"] = (
                max(0.0, allreduce - backward_window) + 50e-6
            )
        return self._breakdown(device, num_gpus, **components)

    def pipelined_iteration_time(
        self,
        profile: WorkloadProfile,
        device: DeviceSpec,
        host_fraction: float,
        prefetch_depth: int = 4,
        num_iterations: int = 64,
        pipelined: bool = True,
    ) -> TimeBreakdown:
        """Iteration time with ``host_fraction`` of tables host-resident.

        Three stages (paper Figure 9): CPU embedding gather + update
        for the host tables; H2D prefetch + D2H gradient transfer; GPU
        compute (MLPs + Eff-TT tables).  ``pipelined=False`` models
        "EL-Rec (Sequential)": prefetch depth 1 degenerates the
        pipeline and stages serialize.
        """
        if not 0 <= host_fraction <= 1:
            raise ValueError(
                f"host_fraction must be in [0, 1], got {host_fraction}"
            )
        cpu_stage = profile.host_dense_emb_time * host_fraction
        transfer_bytes = profile.embedding_transfer_bytes * host_fraction
        transfer_stage = 2.0 * self.cost.h2d_time(transfer_bytes, device)
        if profile.efftt_gflops_fwd > 0:
            tt_time = self.cost.batched_kernel_time(
                profile.efftt_gflops_fwd + profile.efftt_gflops_bwd, device
            )
        else:
            tt_time = self.cost.scale_batched(
                profile.host_efftt_fwd_time + profile.host_efftt_bwd_time,
                device,
            )
        gpu_stage = (
            self.cost.scale_compute(profile.host_mlp_time, device)
            + tt_time
            + profile.efftt_kernel_launches * self.cost.launch_time(device)
        )
        stage_times = np.tile(
            [cpu_stage, transfer_stage, gpu_stage], (num_iterations, 1)
        )
        if pipelined:
            schedule = pipeline_schedule(stage_times, queue_capacity=prefetch_depth)
            per_iter = schedule.makespan / num_iterations
            return self._breakdown(device, 1, pipelined_iteration=per_iter)
        return self._breakdown(
            device,
            1,
            cpu_embedding=cpu_stage,
            transfers=transfer_stage,
            gpu_compute=gpu_stage,
        )

    def gpu_embedding_bytes(self, profile: WorkloadProfile) -> int:
        return profile.tt_param_bytes

    def table1_row(self) -> Dict[str, str]:
        return {
            "framework": "EL-Rec",
            "host_memory": "yes",
            "embedding_compression": "yes",
            "cpu_gpu_comm_latency": "low",
            "compression_overhead": "low",
        }
