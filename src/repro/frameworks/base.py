"""Shared framework interface, workload profile, and time breakdowns."""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.system.devices import DeviceSpec, KernelCostModel
from repro.utils.validation import check_positive

__all__ = ["WorkloadProfile", "TimeBreakdown", "Framework"]


@dataclass(frozen=True)
class WorkloadProfile:
    """One DLRM workload with *measured* host kernel times.

    The benchmark harness measures each kernel class once on real
    NumPy implementations (the substrate), and every framework composes
    iteration time from the same measurements — strategies differ, the
    substrate does not.

    Attributes
    ----------
    name:
        Workload label (dataset name).
    batch_size, embedding_dim:
        Training configuration.
    table_rows:
        Cardinality per sparse table.
    indices_per_batch:
        Total sparse index occurrences per batch (all tables).
    host_mlp_time:
        Host seconds for bottom+top MLP fwd+bwd plus interaction.
    host_dense_emb_time:
        Host seconds for dense gather + pool + sparse update over all
        tables (the CPU-side PS work and the GPU dense-lookup kernel,
        scaled per roofline axis).
    host_tt_fwd_time / host_tt_bwd_time:
        Host seconds for TT-Rec-style naive TT kernels over all
        compressed tables.
    host_efftt_fwd_time / host_efftt_bwd_time:
        Host seconds for Eff-TT kernels (reuse + aggregation + fused
        update) over all compressed tables.
    hot_fraction:
        Fraction of batches that touch only GPU-cached hot rows (FAE's
        profiling; the paper reports ~75%).
    tt_kernel_launches / efftt_kernel_launches:
        Kernel-launch counts per iteration for the compressed paths
        (the fused update removes launches).
    """

    name: str
    batch_size: int
    embedding_dim: int
    table_rows: Tuple[int, ...]
    indices_per_batch: int
    host_mlp_time: float
    host_dense_emb_time: float
    host_tt_fwd_time: float
    host_tt_bwd_time: float
    host_efftt_fwd_time: float
    host_efftt_bwd_time: float
    hot_fraction: float = 0.75
    tt_kernel_launches: int = 24
    efftt_kernel_launches: int = 8
    tt_param_bytes: int = 0
    dtype_bytes: int = 4
    # Analytic per-iteration FLOP counts for the TT kernels (GFLOPs,
    # summed over all compressed tables).  When > 0, framework models
    # project TT kernel times as flops / batched-GEMM throughput,
    # which removes the interpreter overhead baked into host wall
    # clocks; 0 falls back to scaling the measured host time.
    tt_gflops_fwd: float = 0.0
    tt_gflops_bwd: float = 0.0
    efftt_gflops_fwd: float = 0.0
    efftt_gflops_bwd: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.batch_size, "batch_size")
        check_positive(self.embedding_dim, "embedding_dim")
        if not 0 <= self.hot_fraction <= 1:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )
        for attr in (
            "host_mlp_time",
            "host_dense_emb_time",
            "host_tt_fwd_time",
            "host_tt_bwd_time",
            "host_efftt_fwd_time",
            "host_efftt_bwd_time",
        ):
            check_positive(getattr(self, attr), attr, strict=False)

    @property
    def num_tables(self) -> int:
        return len(self.table_rows)

    @property
    def embedding_transfer_bytes(self) -> int:
        """Bytes of pooled embeddings (or their grads) for one batch."""
        return (
            self.batch_size
            * self.num_tables
            * self.embedding_dim
            * self.dtype_bytes
        )

    @property
    def dense_table_bytes(self) -> int:
        """Uncompressed embedding parameter footprint."""
        return sum(self.table_rows) * self.embedding_dim * self.dtype_bytes

    def shard(self, num_shards: int) -> "WorkloadProfile":
        """Per-device workload under data parallelism (batch split).

        Kernel times for batched ops scale ~linearly in batch size;
        that is slightly optimistic for small shards, which *favors the
        baselines* (they shard more), keeping the comparison fair.
        """
        check_positive(num_shards, "num_shards")
        f = 1.0 / num_shards
        return replace(
            self,
            batch_size=max(1, self.batch_size // num_shards),
            indices_per_batch=max(1, self.indices_per_batch // num_shards),
            host_mlp_time=self.host_mlp_time * f,
            host_dense_emb_time=self.host_dense_emb_time * f,
            host_tt_fwd_time=self.host_tt_fwd_time * f,
            host_tt_bwd_time=self.host_tt_bwd_time * f,
            host_efftt_fwd_time=self.host_efftt_fwd_time * f,
            host_efftt_bwd_time=self.host_efftt_bwd_time * f,
            tt_gflops_fwd=self.tt_gflops_fwd * f,
            tt_gflops_bwd=self.tt_gflops_bwd * f,
            efftt_gflops_fwd=self.efftt_gflops_fwd * f,
            efftt_gflops_bwd=self.efftt_gflops_bwd * f,
        )


@dataclass
class TimeBreakdown:
    """Per-component iteration time for one framework on one device."""

    framework: str
    device: str
    num_gpus: int
    components: Dict[str, float] = field(default_factory=dict)
    feasible: bool = True
    infeasible_reason: str = ""

    @property
    def total(self) -> float:
        # fsum is order-insensitive (correctly rounded), so the total
        # is bitwise-stable no matter how components were inserted.
        return math.fsum(self.components.values())

    def throughput(self, batch_size: int) -> float:
        """Samples per second (0 when infeasible)."""
        if not self.feasible or self.total <= 0:
            return 0.0
        return batch_size / self.total

    def speedup_over(self, other: "TimeBreakdown") -> float:
        """How much faster this framework is than ``other``."""
        if not (self.feasible and other.feasible) or self.total <= 0:
            return 0.0
        return other.total / self.total


class Framework(abc.ABC):
    """One DLRM training framework's strategy model."""

    name: str = "framework"

    def __init__(self, cost_model: Optional[KernelCostModel] = None) -> None:
        self.cost = cost_model if cost_model is not None else KernelCostModel()

    @abc.abstractmethod
    def iteration_time(
        self,
        profile: WorkloadProfile,
        device: DeviceSpec,
        num_gpus: int = 1,
    ) -> TimeBreakdown:
        """Model one training iteration; returns the component breakdown."""

    @abc.abstractmethod
    def table1_row(self) -> Dict[str, str]:
        """This framework's qualitative row in the paper's Table I."""

    def gpu_embedding_bytes(self, profile: WorkloadProfile) -> int:
        """Embedding bytes this framework must place in one GPU's HBM."""
        return profile.dense_table_bytes

    def fits_single_gpu(
        self, profile: WorkloadProfile, device: DeviceSpec, hbm_fraction: float = 0.8
    ) -> bool:
        return self.gpu_embedding_bytes(profile) <= device.hbm_bytes * hbm_fraction

    def _breakdown(
        self, device: DeviceSpec, num_gpus: int, **components: float
    ) -> TimeBreakdown:
        return TimeBreakdown(
            framework=self.name,
            device=device.name,
            num_gpus=num_gpus,
            components={k: float(v) for k, v in components.items()},
        )

    def _infeasible(
        self, device: DeviceSpec, num_gpus: int, reason: str
    ) -> TimeBreakdown:
        return TimeBreakdown(
            framework=self.name,
            device=device.name,
            num_gpus=num_gpus,
            components={},
            feasible=False,
            infeasible_reason=reason,
        )
