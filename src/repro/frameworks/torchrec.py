"""TorchRec: column-wise sharded embedding training [40].

Strategy ("4D parallelism" [16], column-wise variant as the paper
describes for the large-table experiment): each GPU holds a
``dim / K`` column slice of every row.  Forward gathers the local
columns for the whole batch on every GPU and runs an allgather to
assemble full-width embeddings; backward reverses the movement (a
reduce-scatter, same ring cost); MLPs replicate data-parallel.
"""

from __future__ import annotations

from typing import Dict

from repro.frameworks.base import Framework, TimeBreakdown, WorkloadProfile
from repro.frameworks.dlrm_ps import _mlp_param_bytes
from repro.system.devices import DeviceSpec
from repro.system.multi_gpu import allgather_time, ring_allreduce_time

__all__ = ["TorchRec"]

# Per-collective synchronization cost (stream sync + NCCL coordination)
# observed on real multi-GPU training stacks.
_SYNC_OVERHEAD_S = 50e-6


class TorchRec(Framework):
    """Column-wise model-parallel embedding training."""

    name = "TorchRec"

    def iteration_time(
        self,
        profile: WorkloadProfile,
        device: DeviceSpec,
        num_gpus: int = 1,
    ) -> TimeBreakdown:
        per_gpu_bytes = profile.dense_table_bytes / num_gpus
        if per_gpu_bytes > device.hbm_bytes * 0.8:
            return self._infeasible(
                device,
                num_gpus,
                f"column shard ({per_gpu_bytes / 1e9:.1f} GB) exceeds HBM",
            )
        shard = profile.shard(num_gpus)
        # Column sharding: each GPU touches every looked-up row but
        # only dim/K columns — same total bytes/K, memory-bound.
        gpu_lookup = self.cost.scale_memory(
            profile.host_dense_emb_time / num_gpus, device
        )
        # Allgather assembles full-width embeddings for the local batch
        # shard; each GPU contributes its column slice of that shard.
        # Column-wise sharding creates one shard module per device and
        # launches its collectives per shard (unfused), unlike
        # HugeCTR's single fused exchange — the implementation gap
        # behind the paper's 1.35x vs 1.07x margins in Figure 13.
        slice_bytes = shard.embedding_transfer_bytes / num_gpus
        gather = allgather_time(
            slice_bytes, num_gpus, device, num_messages=num_gpus
        )
        gpu_mlp = self.cost.scale_compute(shard.host_mlp_time, device)
        allreduce = ring_allreduce_time(
            _mlp_param_bytes(profile), num_gpus, device
        )
        return self._breakdown(
            device,
            num_gpus,
            gpu_embedding_lookup=gpu_lookup,
            allgather_forward=gather,
            gpu_mlp=gpu_mlp,
            collective_sync=3 * _SYNC_OVERHEAD_S * (num_gpus > 1),
            reduce_scatter_backward=gather,
            mlp_allreduce=allreduce,
        )

    def gpu_embedding_bytes(self, profile: WorkloadProfile) -> int:
        return profile.dense_table_bytes

    def table1_row(self) -> Dict[str, str]:
        return {
            "framework": "TorchRec",
            "host_memory": "no",
            "embedding_compression": "no",
            "cpu_gpu_comm_latency": "n/a",
            "compression_overhead": "n/a",
        }
