"""End-to-end framework strategy models (paper §VI baselines).

Each module re-implements one published framework's *strategy* —
parameter placement, kernel choice, and communication pattern — on the
shared substrate:

* :class:`DlrmPS` — Facebook DLRM in CPU+GPU mode [23]: embeddings in
  host memory, CPU-side sparse ops, synchronous value/gradient
  transfers every iteration.
* :class:`FAE` — hot embeddings cached in HBM; hot batches train fully
  on GPU, cold batches fall back to the CPU path [24].
* :class:`TTRec` — TT-compressed tables in HBM with naive TT kernels
  (no reuse, per-occurrence backward, unfused update) [20].
* :class:`ELRec` — the paper: Eff-TT kernels, optional index
  reordering, pipeline + embedding cache for host-resident overflow.
* :class:`HugeCTR` — model-parallel row-wise sharding with all-to-all
  exchanges [18].
* :class:`TorchRec` — column-wise sharding with allgather assembly [40].

All frameworks consume one :class:`WorkloadProfile` of *measured* host
kernel times and one :class:`~repro.system.devices.DeviceSpec`, so
relative results depend only on strategy.
"""

from repro.frameworks.base import (
    Framework,
    TimeBreakdown,
    WorkloadProfile,
)
from repro.frameworks.dlrm_ps import DlrmPS
from repro.frameworks.fae import FAE
from repro.frameworks.tt_rec import TTRec
from repro.frameworks.el_rec import ELRec
from repro.frameworks.hugectr import HugeCTR
from repro.frameworks.torchrec import TorchRec

ALL_FRAMEWORKS = (DlrmPS, FAE, TTRec, ELRec, HugeCTR, TorchRec)

__all__ = [
    "WorkloadProfile",
    "TimeBreakdown",
    "Framework",
    "DlrmPS",
    "FAE",
    "TTRec",
    "ELRec",
    "HugeCTR",
    "TorchRec",
    "ALL_FRAMEWORKS",
]
