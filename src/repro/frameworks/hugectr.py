"""HugeCTR: model-parallel embedding sharding [18].

Strategy: split embedding tables row-wise across GPUs (each GPU owns a
slice of the rows); MLPs replicate data-parallel.  Every iteration pays
an all-to-all to route looked-up embeddings from their owner GPU to the
GPU training the sample (forward) and a second all-to-all for the
gradients (backward), plus the MLP AllReduce — the "intensive
peer-to-peer communication" the paper contrasts with EL-Rec's
replication (§VI-B, Figure 13).

The memory layout is no longer hand-rolled here: feasibility comes from
the shared :class:`~repro.sharding.placement.RowShardedStrategy`, the
same mod-N placement the sharded parameter-server tier executes, so the
analytical framework model and the functional simulation agree on what
fits where.
"""

from __future__ import annotations

from typing import Dict, List

from repro.frameworks.base import Framework, TimeBreakdown, WorkloadProfile
from repro.frameworks.dlrm_ps import _mlp_param_bytes
from repro.reorder.stats import TableStats
from repro.sharding.placement import PlacementPlan, RowShardedStrategy
from repro.system.devices import DeviceSpec
from repro.system.multi_gpu import all2all_time, ring_allreduce_time

__all__ = ["HugeCTR"]

# Per-collective synchronization cost (stream sync + NCCL coordination)
# observed on real multi-GPU training stacks.
_SYNC_OVERHEAD_S = 50e-6


def _profile_stats(profile: WorkloadProfile) -> List[TableStats]:
    """Size-only stats for placement (HugeCTR ignores access skew)."""
    return [
        TableStats(
            table_idx=t,
            num_rows=int(rows),
            zipf_alpha=0.0,
            hot_fraction=0.1,
            hot_mass=0.0,
        )
        for t, rows in enumerate(profile.table_rows)
    ]


class HugeCTR(Framework):
    """Row-wise model-parallel embedding training."""

    name = "HugeCTR"

    #: The pluggable placement policy this framework models: every
    #: table mod-N row-sharded across the GPUs, no statistics consulted.
    placement = RowShardedStrategy()

    def placement_plan(
        self,
        profile: WorkloadProfile,
        device: DeviceSpec,
        num_gpus: int = 1,
    ) -> PlacementPlan:
        """The row-sharded layout for ``profile`` on ``num_gpus``."""
        return self.placement.plan(
            _profile_stats(profile),
            num_devices=num_gpus,
            device_budget_bytes=int(device.hbm_bytes * 0.8),
            embedding_dim=profile.embedding_dim,
            dtype_bytes=profile.dtype_bytes,
        )

    def iteration_time(
        self,
        profile: WorkloadProfile,
        device: DeviceSpec,
        num_gpus: int = 1,
    ) -> TimeBreakdown:
        plan = self.placement_plan(profile, device, num_gpus)
        if not plan.feasible:
            return self._infeasible(
                device,
                num_gpus,
                f"row shard ({plan.per_device_bytes / 1e9:.1f} GB) exceeds "
                "HBM; HugeCTR scales GPUs until the table fits",
            )
        shard = profile.shard(num_gpus)
        # Each GPU gathers the rows it owns for the *whole* global
        # batch (expected 1/K of all lookups), memory-bound.
        gpu_lookup = self.cost.scale_memory(
            profile.host_dense_emb_time / num_gpus, device
        )
        exchange = all2all_time(
            shard.embedding_transfer_bytes, num_gpus, device
        )
        gpu_mlp = self.cost.scale_compute(shard.host_mlp_time, device)
        allreduce = ring_allreduce_time(
            _mlp_param_bytes(profile), num_gpus, device
        )
        return self._breakdown(
            device,
            num_gpus,
            gpu_embedding_lookup=gpu_lookup,
            all2all_forward=exchange,
            gpu_mlp=gpu_mlp,
            collective_sync=3 * _SYNC_OVERHEAD_S * (num_gpus > 1),
            all2all_backward=exchange,
            mlp_allreduce=allreduce,
        )

    def gpu_embedding_bytes(self, profile: WorkloadProfile) -> int:
        return profile.dense_table_bytes  # per single GPU (unsharded)

    def table1_row(self) -> Dict[str, str]:
        return {
            "framework": "HugeCTR",
            "host_memory": "no",
            "embedding_compression": "no",
            "cpu_gpu_comm_latency": "n/a",
            "compression_overhead": "n/a",
        }
