"""Statistics-driven embedding-table placement planning (RecShard-style).

Given per-table :class:`~repro.reorder.stats.TableStats` (cardinality,
measured Zipf skew, hot-set mass) and a per-device memory budget, a
:class:`PlacementStrategy` decides where each table lives:

==============  =====================================================
kind            meaning
==============  =====================================================
DENSE_DEVICE    small table, dense copy in device HBM
TT_DEVICE       large table, TT-compressed cores in device HBM
HASH_DEVICE     large table, mod-hash bucket array in device HBM
ROBE_DEVICE     large table, shared ROBE weight array in device HBM
PQ_DEVICE       large table, PQ codebooks + code table in device HBM
HOT_COLD        skewed table: hot rows cached on device, cold rows
                served from the (sharded) parameter server
ROW_SHARDED     rows mod-N split across the PS shard devices
HOST            falls back to plain host memory behind the PS
==============  =====================================================

:class:`StatsDrivenStrategy` generalizes the hand-rolled placement the
training harness used (TT above a row threshold, two largest tables on
the host); :class:`RowShardedStrategy` reproduces HugeCTR's
all-tables-sharded model-parallel layout and backs
:class:`repro.frameworks.hugectr.HugeCTR`.

Decision rules compare against **fixed fractions of the whole
per-device budget**, never against a running remaining budget, so each
table's decision is independent of the others and — apart from the
ROW_SHARDED / HOST boundary, which moves with the device count but
stays on the server-resident side — independent of ``num_devices``.
That independence is what keeps N-shard training bitwise-identical to
the single-shard baseline: changing N never moves a table between the
worker and the server.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.embeddings.hash_embedding import (
    HashEmbeddingBag,
    default_hash_buckets,
)
from repro.embeddings.pq_embedding import (
    PQEmbeddingBag,
    default_pq_codes,
    default_pq_subspaces,
)
from repro.embeddings.robe_embedding import (
    RobeEmbeddingBag,
    default_robe_size,
)
from repro.reorder.stats import TableStats
from repro.utils.factorize import suggest_tt_shapes
from repro.utils.validation import check_positive

__all__ = [
    "PlacementKind",
    "PlacementDecision",
    "PlacementPlan",
    "PlacementStrategy",
    "StatsDrivenStrategy",
    "RowShardedStrategy",
    "server_resident",
    "tt_core_bytes",
]


class PlacementKind(enum.Enum):
    DENSE_DEVICE = "dense_device"
    TT_DEVICE = "tt_device"
    HASH_DEVICE = "hash_device"
    ROBE_DEVICE = "robe_device"
    PQ_DEVICE = "pq_device"
    HOT_COLD = "hot_cold"
    ROW_SHARDED = "row_sharded"
    HOST = "host"


#: Kinds whose rows are served by the parameter server (vs worker-owned).
_SERVER_KINDS = frozenset(
    {PlacementKind.HOT_COLD, PlacementKind.ROW_SHARDED, PlacementKind.HOST}
)


def server_resident(kind: PlacementKind) -> bool:
    """Whether a placement kind routes lookups through the PS tier."""
    return kind in _SERVER_KINDS


def tt_core_bytes(
    num_rows: int,
    embedding_dim: int,
    tt_rank: int,
    dtype_bytes: int = 8,
    num_cores: int = 3,
) -> Optional[int]:
    """Bytes of a TT factorization's cores, or None if none fits.

    Rank pattern ``(1, r, ..., r, 1)``; shapes via
    :func:`~repro.utils.factorize.suggest_tt_shapes`.  Returns None
    when no balanced factorization exists within the padding budget.
    """
    try:
        row_shape, col_shape, _padded = suggest_tt_shapes(
            num_rows, embedding_dim, num_cores=num_cores
        )
    except ValueError:
        return None
    ranks = [1] + [tt_rank] * (len(row_shape) - 1) + [1]
    params = sum(
        ranks[k] * row_shape[k] * col_shape[k] * ranks[k + 1]
        for k in range(len(row_shape))
    )
    return params * dtype_bytes


@dataclass(frozen=True)
class PlacementDecision:
    """Where one table lives, with its memory footprint split out."""

    table_idx: int
    kind: PlacementKind
    num_rows: int
    device_bytes: int
    server_bytes: int
    reason: str

    @property
    def on_server(self) -> bool:
        return server_resident(self.kind)


@dataclass(frozen=True)
class PlacementPlan:
    """A full placement: one decision per table plus feasibility."""

    strategy: str
    num_devices: int
    device_budget_bytes: int
    decisions: List[PlacementDecision]

    @property
    def per_device_bytes(self) -> int:
        """Worst-case device HBM consumed by this plan.

        Worker-resident tables (dense / TT / hot caches) are counted in
        full on every device (data-parallel replication); row-sharded
        server tables contribute their largest shard block.
        """
        replicated = sum(
            d.device_bytes
            for d in self.decisions
            if d.kind != PlacementKind.ROW_SHARDED
        )
        sharded = sum(
            d.device_bytes
            for d in self.decisions
            if d.kind == PlacementKind.ROW_SHARDED
        )
        return replicated + sharded

    @property
    def host_bytes(self) -> int:
        """Bytes that stay in plain host memory (HOST + cold halves)."""
        return sum(
            d.server_bytes
            for d in self.decisions
            if d.kind in (PlacementKind.HOST, PlacementKind.HOT_COLD)
        )

    @property
    def feasible(self) -> bool:
        return self.per_device_bytes <= self.device_budget_bytes

    @property
    def infeasible_reason(self) -> Optional[str]:
        if self.feasible:
            return None
        return (
            f"per-device footprint {self.per_device_bytes / 1e9:.2f} GB "
            f"exceeds budget {self.device_budget_bytes / 1e9:.2f} GB "
            f"at {self.num_devices} device(s)"
        )

    def server_table_positions(self) -> List[int]:
        """Model positions whose lookups go through the PS tier."""
        return [d.table_idx for d in self.decisions if d.on_server]

    def kind_of(self, table_idx: int) -> PlacementKind:
        for d in self.decisions:
            if d.table_idx == table_idx:
                return d.kind
        raise KeyError(f"no decision for table {table_idx}")

    def format_table(self) -> str:
        """Human-readable decision table for the CLI."""
        header = (
            f"{'table':>5}  {'rows':>10}  {'kind':<12}  "
            f"{'device':>10}  {'server':>10}  reason"
        )
        lines = [header, "-" * len(header)]
        for d in self.decisions:
            lines.append(
                f"{d.table_idx:>5}  {d.num_rows:>10}  {d.kind.value:<12}  "
                f"{d.device_bytes / 1e6:>8.2f}MB  "
                f"{d.server_bytes / 1e6:>8.2f}MB  {d.reason}"
            )
        lines.append(
            f"per-device {self.per_device_bytes / 1e6:.2f} MB of "
            f"{self.device_budget_bytes / 1e6:.2f} MB budget "
            f"({self.num_devices} device(s)) -> "
            f"{'feasible' if self.feasible else 'INFEASIBLE'}"
        )
        return "\n".join(lines)


@runtime_checkable
class PlacementStrategy(Protocol):
    """Pluggable placement policy (the HugeCTR/EL-Rec extension point)."""

    name: str

    def plan(
        self,
        stats: Sequence[TableStats],
        num_devices: int,
        device_budget_bytes: int,
        embedding_dim: int,
        dtype_bytes: int = 8,
        tt_rank: int = 8,
    ) -> PlacementPlan:
        """Decide a placement for every table in ``stats``."""
        ...


class StatsDrivenStrategy:
    """Skew- and size-aware placement (the EL-Rec/RecShard hybrid).

    Parameters
    ----------
    dense_fraction:
        A table whose dense bytes fit within this fraction of the
        budget is simply replicated on-device.
    tt_fraction:
        A compressible table whose compressed form fits within this
        fraction of the budget keeps that form on-device (the fraction
        applies to whichever ``compress_strategy`` is configured).
    shard_fraction:
        A server table is row-sharded if its dense bytes fit within
        this fraction of the budget *per device*; beyond that it
        overflows to plain host memory.
    tt_threshold_rows:
        Minimum cardinality for compression to be worth the lookup
        compute (small tables are cheaper dense).
    compress_strategy:
        Which compressed on-device form large tables take: ``"tt"``
        (default — cores, bitwise-identical to the pre-zoo planner),
        ``"hash"`` (mod-hash bucket array), ``"robe"`` (shared weight
        array), or ``"pq"`` (codebooks + code table).  All four are
        worker-resident, so swapping the strategy never moves a table
        between the worker and the server tier.
    compress_rate:
        Target compressed/dense ratio used to size the hash and ROBE
        defaults (ignored by ``"tt"``/``"pq"``).
    """

    name = "stats_driven"

    #: compress_strategy -> on-device placement kind.
    _COMPRESS_KINDS = {
        "tt": PlacementKind.TT_DEVICE,
        "hash": PlacementKind.HASH_DEVICE,
        "robe": PlacementKind.ROBE_DEVICE,
        "pq": PlacementKind.PQ_DEVICE,
    }

    def __init__(
        self,
        dense_fraction: float = 0.05,
        tt_fraction: float = 0.10,
        shard_fraction: float = 0.50,
        tt_threshold_rows: int = 4096,
        compress_strategy: str = "tt",
        compress_rate: float = 0.25,
    ) -> None:
        for val, label in (
            (dense_fraction, "dense_fraction"),
            (tt_fraction, "tt_fraction"),
            (shard_fraction, "shard_fraction"),
        ):
            if not 0.0 < val <= 1.0:
                raise ValueError(f"{label} must be in (0, 1], got {val}")
        check_positive(tt_threshold_rows, "tt_threshold_rows")
        if compress_strategy not in self._COMPRESS_KINDS:
            raise ValueError(
                f"compress_strategy must be one of "
                f"{sorted(self._COMPRESS_KINDS)}, got {compress_strategy!r}"
            )
        if not 0.0 < compress_rate <= 1.0:
            raise ValueError(
                f"compress_rate must be in (0, 1], got {compress_rate}"
            )
        self.dense_fraction = float(dense_fraction)
        self.tt_fraction = float(tt_fraction)
        self.shard_fraction = float(shard_fraction)
        self.tt_threshold_rows = int(tt_threshold_rows)
        self.compress_strategy = compress_strategy
        self.compress_rate = float(compress_rate)

    def plan(
        self,
        stats: Sequence[TableStats],
        num_devices: int,
        device_budget_bytes: int,
        embedding_dim: int,
        dtype_bytes: int = 8,
        tt_rank: int = 8,
    ) -> PlacementPlan:
        check_positive(num_devices, "num_devices")
        check_positive(device_budget_bytes, "device_budget_bytes")
        decisions = []
        for st in stats:
            decisions.append(
                self._decide(
                    st,
                    num_devices,
                    device_budget_bytes,
                    embedding_dim,
                    dtype_bytes,
                    tt_rank,
                )
            )
        return PlacementPlan(
            strategy=self.name,
            num_devices=num_devices,
            device_budget_bytes=device_budget_bytes,
            decisions=decisions,
        )

    def _decide(
        self,
        st: TableStats,
        num_devices: int,
        budget: int,
        embedding_dim: int,
        dtype_bytes: int,
        tt_rank: int,
    ) -> PlacementDecision:
        dense_bytes = st.num_rows * embedding_dim * dtype_bytes
        if dense_bytes <= self.dense_fraction * budget:
            return PlacementDecision(
                table_idx=st.table_idx,
                kind=PlacementKind.DENSE_DEVICE,
                num_rows=st.num_rows,
                device_bytes=dense_bytes,
                server_bytes=0,
                reason=(
                    f"dense {dense_bytes / 1e6:.2f} MB within "
                    f"{self.dense_fraction:.0%} of budget"
                ),
            )
        if st.num_rows >= self.tt_threshold_rows:
            compressed = self._compressed_bytes(
                st.num_rows, embedding_dim, dtype_bytes, tt_rank, dense_bytes
            )
            if compressed is not None:
                comp_bytes, reason = compressed
                if comp_bytes <= self.tt_fraction * budget:
                    return PlacementDecision(
                        table_idx=st.table_idx,
                        kind=self._COMPRESS_KINDS[self.compress_strategy],
                        num_rows=st.num_rows,
                        device_bytes=comp_bytes,
                        server_bytes=0,
                        reason=reason,
                    )
        if st.skewed:
            hot_bytes = st.hot_rows * embedding_dim * dtype_bytes
            if hot_bytes <= self.dense_fraction * budget:
                return PlacementDecision(
                    table_idx=st.table_idx,
                    kind=PlacementKind.HOT_COLD,
                    num_rows=st.num_rows,
                    device_bytes=hot_bytes,
                    server_bytes=dense_bytes - hot_bytes,
                    reason=(
                        f"hot {st.hot_fraction:.0%} of rows carries "
                        f"{st.hot_mass:.0%} of accesses"
                    ),
                )
        per_shard = _shard_block_bytes(
            st.num_rows, num_devices, embedding_dim, dtype_bytes
        )
        if per_shard <= self.shard_fraction * budget:
            return PlacementDecision(
                table_idx=st.table_idx,
                kind=PlacementKind.ROW_SHARDED,
                num_rows=st.num_rows,
                device_bytes=per_shard,
                server_bytes=dense_bytes,
                reason=(
                    f"mod-{num_devices} shard block "
                    f"{per_shard / 1e6:.2f} MB within "
                    f"{self.shard_fraction:.0%} of budget"
                ),
            )
        return PlacementDecision(
            table_idx=st.table_idx,
            kind=PlacementKind.HOST,
            num_rows=st.num_rows,
            device_bytes=0,
            server_bytes=dense_bytes,
            reason=(
                f"dense {dense_bytes / 1e9:.2f} GB overflows to host"
            ),
        )

    def _compressed_bytes(
        self,
        num_rows: int,
        embedding_dim: int,
        dtype_bytes: int,
        tt_rank: int,
        dense_bytes: int,
    ) -> Optional[tuple]:
        """On-device bytes of the configured compressed form, with reason.

        Returns ``None`` when the strategy cannot represent the table
        (TT with no balanced factorization), in which case the decision
        cascade falls through to the server-resident kinds.
        """
        if self.compress_strategy == "tt":
            tt_bytes = tt_core_bytes(
                num_rows, embedding_dim, tt_rank, dtype_bytes
            )
            if tt_bytes is None:
                return None
            return tt_bytes, (
                f"TT rank {tt_rank} compresses "
                f"{dense_bytes / 1e6:.2f} MB to "
                f"{tt_bytes / 1e6:.2f} MB"
            )
        if self.compress_strategy == "hash":
            buckets = default_hash_buckets(num_rows, self.compress_rate)
            nbytes = HashEmbeddingBag.estimate_bytes(
                buckets, embedding_dim, dtype_bytes
            )
            return nbytes, (
                f"hash to {buckets} buckets "
                f"({nbytes / 1e6:.2f} MB of {dense_bytes / 1e6:.2f} MB)"
            )
        if self.compress_strategy == "robe":
            size = default_robe_size(
                num_rows, embedding_dim, self.compress_rate
            )
            nbytes = RobeEmbeddingBag.estimate_bytes(size, dtype_bytes)
            return nbytes, (
                f"ROBE array of {size} weights "
                f"({nbytes / 1e6:.2f} MB of {dense_bytes / 1e6:.2f} MB)"
            )
        num_subspaces = default_pq_subspaces(embedding_dim)
        num_codes = default_pq_codes(num_rows, num_subspaces)
        nbytes = PQEmbeddingBag.estimate_bytes(
            num_rows, embedding_dim, num_subspaces, num_codes, dtype_bytes
        )
        return nbytes, (
            f"PQ {num_subspaces}x{num_codes} codebooks "
            f"({nbytes / 1e6:.2f} MB of {dense_bytes / 1e6:.2f} MB)"
        )


class RowShardedStrategy:
    """HugeCTR-style model parallelism: every table row-sharded.

    Each device owns a ``ceil(rows / N)`` block of every table; the
    plan is infeasible when the summed blocks exceed the per-device
    budget.  No statistics are consulted — this is the baseline the
    stats-driven planner improves on.
    """

    name = "row_sharded"

    def plan(
        self,
        stats: Sequence[TableStats],
        num_devices: int,
        device_budget_bytes: int,
        embedding_dim: int,
        dtype_bytes: int = 8,
        tt_rank: int = 8,
    ) -> PlacementPlan:
        check_positive(num_devices, "num_devices")
        check_positive(device_budget_bytes, "device_budget_bytes")
        decisions = []
        for st in stats:
            dense_bytes = st.num_rows * embedding_dim * dtype_bytes
            per_shard = _shard_block_bytes(
                st.num_rows, num_devices, embedding_dim, dtype_bytes
            )
            decisions.append(
                PlacementDecision(
                    table_idx=st.table_idx,
                    kind=PlacementKind.ROW_SHARDED,
                    num_rows=st.num_rows,
                    device_bytes=per_shard,
                    server_bytes=dense_bytes,
                    reason=f"mod-{num_devices} row shard",
                )
            )
        return PlacementPlan(
            strategy=self.name,
            num_devices=num_devices,
            device_budget_bytes=device_budget_bytes,
            decisions=decisions,
        )


def _shard_block_bytes(
    num_rows: int, num_devices: int, embedding_dim: int, dtype_bytes: int
) -> int:
    """Largest per-device block of a mod-N row-sharded table."""
    rows = int(np.ceil(num_rows / num_devices))
    return rows * embedding_dim * dtype_bytes
