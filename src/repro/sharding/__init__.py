"""Sharded parameter-server tier with statistics-driven placement.

EL-Rec's PS-pipelined training (paper §V) assumes one host-resident
parameter server.  This package scales that tier out to ``N`` simulated
devices while preserving the repo's foundation invariant — bitwise
determinism:

* :mod:`repro.sharding.partitioner` — deterministic mod-N row routing
  between global ids and per-shard blocks.
* :mod:`repro.sharding.placement` — RecShard-style placement planning:
  per-table :class:`~repro.reorder.stats.TableStats` (cardinality,
  Zipf skew, hot-set mass) decide between dense-on-device, TT
  compression, hot/cold split, row sharding, and host overflow under a
  per-device memory budget, behind a pluggable
  :class:`~repro.sharding.placement.PlacementStrategy` protocol.
* :mod:`repro.sharding.server` — the
  :class:`~repro.sharding.server.ShardedParameterServer`, a drop-in
  for :class:`~repro.system.parameter_server.HostParameterServer` with
  per-shard-link byte accounting and exactly-once gradient counters.
* :mod:`repro.sharding.compression` — optional top-k error-feedback
  gradient compression and int8 pull quantization on the PS links
  (both off by default; the default path is bitwise).
* :mod:`repro.sharding.trainer` — glue that plans a placement and
  assembles the standard pipelined PS trainer on the sharded tier.

With compression off, ``N``-shard training is bit-identical to the
single-table baseline for any ``N`` — the property the quickcheck
sharded-equivalence gate and ``tests/sharding`` pin.
"""

from repro.sharding.compression import (
    COMPRESSION_MODES,
    CompressedPush,
    LinkCompressionConfig,
    PullQuantizer,
    TopKErrorFeedback,
)
from repro.sharding.partitioner import ShardPartitioner
from repro.sharding.placement import (
    PlacementDecision,
    PlacementKind,
    PlacementPlan,
    PlacementStrategy,
    RowShardedStrategy,
    StatsDrivenStrategy,
    server_resident,
    tt_core_bytes,
)
from repro.sharding.server import LinkStats, ShardedParameterServer
from repro.sharding.trainer import (
    ShardedTrainerSetup,
    analytic_table_stats,
    build_sharded_ps_trainer,
)

__all__ = [
    "ShardPartitioner",
    "PlacementKind",
    "PlacementDecision",
    "PlacementPlan",
    "PlacementStrategy",
    "StatsDrivenStrategy",
    "RowShardedStrategy",
    "server_resident",
    "tt_core_bytes",
    "ShardedParameterServer",
    "LinkStats",
    "LinkCompressionConfig",
    "COMPRESSION_MODES",
    "CompressedPush",
    "TopKErrorFeedback",
    "PullQuantizer",
    "ShardedTrainerSetup",
    "analytic_table_stats",
    "build_sharded_ps_trainer",
]
