"""Lossy compression for the simulated PS links (push and pull).

Two independent knobs, both **off by default** so the sharded trainer
stays bitwise-identical to the single-table baseline:

* **Push (gradient) compression** — :class:`TopKErrorFeedback` sends
  only the ``k``-fraction of unique rows with the largest aggregated
  L2 norm per step and keeps everything unsent in a per-table
  *residual* that is re-added before the next selection.  The error-
  feedback invariant (``sent + residual_after == residual_before +
  grads``, exactly, per row) means no gradient mass is ever dropped,
  only delayed — the property that keeps EF-SGD convergent.
* **Pull (row) quantization** — :class:`PullQuantizer` simulates
  shipping prefetched rows as symmetric per-row int8: each row is
  quantized with scale ``max|row| / 127`` and immediately dequantized,
  so the worker trains on values carrying real quantization error
  while the arrays stay float64 end to end.

Wire accounting is explicit: every compressor reports the bytes a real
link would carry (values + row ids + scales), which the
:class:`~repro.sharding.server.ShardedParameterServer` attributes per
shard link.  All compression math runs under the ``link_compress``
kernel zone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend import ZONE_LINK_COMPRESS, get_backend
from repro.utils.validation import check_positive

__all__ = [
    "LinkCompressionConfig",
    "CompressedPush",
    "TopKErrorFeedback",
    "PullQuantizer",
    "COMPRESSION_MODES",
]

#: Bytes of one float64 value / one int64 row id on the wire.
_VALUE_BYTES = 8
_INDEX_BYTES = 8
#: Bytes of one int8 quantized value + per-row float64 scale.
_QUANT_VALUE_BYTES = 1
_QUANT_SCALE_BYTES = 8

#: ``--compress`` vocabulary: which knobs each mode enables.
COMPRESSION_MODES: Dict[str, Tuple[bool, bool]] = {
    "none": (False, False),
    "topk": (True, False),
    "quant": (False, True),
    "both": (True, True),
}


@dataclass(frozen=True)
class LinkCompressionConfig:
    """Configuration of both PS-link compression knobs.

    ``mode`` names the preset (see :data:`COMPRESSION_MODES`);
    ``topk_fraction`` sizes the gradient top-k selection.
    """

    mode: str = "none"
    topk_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.mode not in COMPRESSION_MODES:
            raise ValueError(
                f"mode must be one of {sorted(COMPRESSION_MODES)}, "
                f"got {self.mode!r}"
            )
        if not 0.0 < self.topk_fraction <= 1.0:
            raise ValueError(
                f"topk_fraction must be in (0, 1], got {self.topk_fraction}"
            )

    @property
    def push_topk(self) -> bool:
        return COMPRESSION_MODES[self.mode][0]

    @property
    def pull_quant(self) -> bool:
        return COMPRESSION_MODES[self.mode][1]

    @property
    def bitwise(self) -> bool:
        """True when both knobs are off (the bitwise default)."""
        return self.mode == "none"


@dataclass
class CompressedPush:
    """One compressed gradient push: selected rows plus wire cost."""

    unique_indices: np.ndarray
    row_grads: np.ndarray
    raw_bytes: int
    wire_bytes: int


def _push_raw_bytes(num_rows: int, dim: int) -> int:
    return num_rows * (dim * _VALUE_BYTES + _INDEX_BYTES)


class TopKErrorFeedback:
    """Top-k gradient sparsification with per-table error feedback.

    Parameters
    ----------
    table_rows:
        Cardinality of each table a residual is kept for.
    embedding_dim:
        Shared embedding width.
    fraction:
        Fraction of a step's unique rows that is actually sent
        (at least one row is always sent).

    Notes
    -----
    The residual is stored dense per table — fine at reproduction
    scale and what makes it checkpointable as a plain array (a real
    deployment would keep it sparse).  Selection is deterministic:
    rows are ranked by residual-corrected L2 norm with the row id as
    tie-break.
    """

    def __init__(
        self,
        table_rows: List[int],
        embedding_dim: int,
        fraction: float = 0.1,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        check_positive(embedding_dim, "embedding_dim")
        self.fraction = float(fraction)
        self.embedding_dim = int(embedding_dim)
        self.residuals: List[np.ndarray] = [
            np.zeros((rows, embedding_dim), dtype=np.float64)
            for rows in table_rows
        ]

    def compress(
        self, table_idx: int, unique_indices: np.ndarray, row_grads: np.ndarray
    ) -> CompressedPush:
        """Select the top-k rows of ``residual + grads``; bank the rest."""
        residual = self.residuals[table_idx]
        uidx = np.asarray(unique_indices, dtype=np.int64)
        grads = np.asarray(row_grads, dtype=np.float64)
        if grads.shape != (uidx.size, self.embedding_dim):
            raise ValueError(
                f"row_grads shape {grads.shape} does not match "
                f"({uidx.size}, {self.embedding_dim})"
            )
        bk = get_backend()
        with bk.zone(ZONE_LINK_COMPRESS):
            corrected = residual[uidx] + grads
            norms = np.sqrt((corrected * corrected).sum(axis=1))
            keep = max(1, int(np.ceil(self.fraction * uidx.size)))
            # Deterministic ranking: largest norm first, row id breaks
            # ties; the kept set is then restored to ascending row
            # order so downstream routing sees a sorted unique set.
            order = np.lexsort((uidx, -norms))
            kept_positions = np.sort(order[:keep])
            dropped_positions = np.sort(order[keep:])
            sent = corrected[kept_positions]
            residual[uidx[kept_positions]] = 0.0
            residual[uidx[dropped_positions]] = corrected[dropped_positions]
        return CompressedPush(
            unique_indices=uidx[kept_positions],
            row_grads=sent,
            raw_bytes=_push_raw_bytes(uidx.size, self.embedding_dim),
            wire_bytes=_push_raw_bytes(kept_positions.size, self.embedding_dim),
        )

    # -- checkpoint support --------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Residual arrays keyed for a trainer snapshot."""
        return {f"ef{t}": r for t, r in enumerate(self.residuals)}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore residuals in place (shape-checked before any write)."""
        staged = []
        for t, residual in enumerate(self.residuals):
            key = f"ef{t}"
            if key not in arrays:
                raise KeyError(f"snapshot missing residual array {key!r}")
            stored = np.asarray(arrays[key], dtype=np.float64)
            if stored.shape != residual.shape:
                raise ValueError(
                    f"residual {key!r} shape mismatch: "
                    f"{stored.shape} vs {residual.shape}"
                )
            staged.append((residual, stored))
        for residual, stored in staged:
            residual[...] = stored


class PullQuantizer:
    """Symmetric per-row int8 quantization for prefetched rows."""

    def __init__(self, embedding_dim: int) -> None:
        check_positive(embedding_dim, "embedding_dim")
        self.embedding_dim = int(embedding_dim)

    def apply(self, rows: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """Quantize-dequantize ``rows``; returns (rows', raw, wire) bytes."""
        rows = np.asarray(rows, dtype=np.float64)
        num = rows.shape[0]
        raw = num * self.embedding_dim * _VALUE_BYTES
        wire = num * (
            self.embedding_dim * _QUANT_VALUE_BYTES + _QUANT_SCALE_BYTES
        )
        if num == 0:
            return rows, raw, wire
        bk = get_backend()
        with bk.zone(ZONE_LINK_COMPRESS):
            scale = np.abs(rows).max(axis=1, keepdims=True) / 127.0
            # All-zero rows quantize to zero with any scale; avoid 0/0.
            safe = bk.where(scale > 0.0, scale, 1.0)
            quantized = np.rint(rows / safe)
            dequantized = quantized * safe
        return dequantized, raw, wire


def build_push_compressor(
    config: LinkCompressionConfig,
    table_rows: List[int],
    embedding_dim: int,
) -> Optional[TopKErrorFeedback]:
    """Push-side compressor for ``config`` (None = send everything)."""
    if not config.push_topk:
        return None
    return TopKErrorFeedback(
        table_rows, embedding_dim, fraction=config.topk_fraction
    )


def build_pull_quantizer(
    config: LinkCompressionConfig, embedding_dim: int
) -> Optional[PullQuantizer]:
    """Pull-side quantizer for ``config`` (None = exact rows)."""
    if not config.pull_quant:
        return None
    return PullQuantizer(embedding_dim)
