"""Deterministic row -> shard routing for sharded embedding tables.

Rows are routed with plain modular arithmetic: global row ``g`` lives on
shard ``g % N`` at local offset ``g // N``.  Two properties make this
the right partition for the reproduction:

* **Zipf balance** — popular rows are spread by *id*, and the data
  generators scatter popularity ranks through a random permutation, so
  mod-N routing balances both capacity and access load without a
  directory.
* **Bitwise reassembly** — within one shard, locals sorted ascending
  correspond to globals sorted ascending, so a per-shard gather of a
  sorted unique index set can be scattered back into globally sorted
  order without re-sorting.  That is what keeps N-shard training
  bit-identical to the single-table baseline.

The routing math runs under the ``shard_route`` kernel zone so the
instrumented backend can attribute its cost.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.backend import ZONE_SHARD_ROUTE, get_backend
from repro.utils.validation import check_positive

__all__ = ["ShardPartitioner"]


class ShardPartitioner:
    """Stateless mod-N router between global row ids and shard slots.

    Parameters
    ----------
    num_shards:
        Number of simulated devices the rows are split across.
    """

    def __init__(self, num_shards: int) -> None:
        check_positive(num_shards, "num_shards")
        self.num_shards = int(num_shards)

    # -- static layout -------------------------------------------------
    def shard_rows(self, num_rows: int, shard: int) -> int:
        """Rows owned by ``shard`` for a table of ``num_rows``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        if num_rows < 0:
            raise ValueError(f"num_rows must be >= 0, got {num_rows}")
        # Globals owned by shard s are s, s+N, s+2N, ...
        return (num_rows - shard + self.num_shards - 1) // self.num_shards

    def split_table(self, table: np.ndarray) -> List[np.ndarray]:
        """Scatter a full table into per-shard blocks (copies).

        Block ``s`` row ``l`` holds global row ``l * N + s``; blocks of
        an ``R``-row table have ``shard_rows(R, s)`` rows each.
        """
        return [
            np.array(table[s :: self.num_shards], copy=True)
            for s in range(self.num_shards)
        ]

    # -- routing -------------------------------------------------------
    def route(
        self, global_indices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Map global row ids to ``(shard_ids, local_indices)``."""
        idx = np.asarray(global_indices, dtype=np.int64)
        bk = get_backend()
        with bk.zone(ZONE_SHARD_ROUTE):
            shard_ids = idx % self.num_shards
            local = idx // self.num_shards
        return shard_ids, local

    def to_global(
        self, shard: int, local_indices: np.ndarray
    ) -> np.ndarray:
        """Inverse of :meth:`route` for one shard."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        local = np.asarray(local_indices, dtype=np.int64)
        return local * self.num_shards + shard

    def shard_masks(self, shard_ids: np.ndarray) -> List[np.ndarray]:
        """Boolean membership masks, one per shard, over a routed set."""
        bk = get_backend()
        with bk.zone(ZONE_SHARD_ROUTE):
            return [shard_ids == s for s in range(self.num_shards)]
