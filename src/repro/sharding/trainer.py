"""Assemble a PS-pipeline trainer on top of the sharded server tier.

:func:`build_sharded_ps_trainer` is the one-stop constructor the CLI,
the chaos harness, and the scaling benchmark share: it runs the
placement planner over per-table statistics, puts the server-resident
tables behind a :class:`~repro.sharding.server.ShardedParameterServer`,
and wires the standard :class:`~repro.system.pipeline.PipelinedPSTrainer`
around them.  Seeds follow the established harness conventions (model
7, server 3, worker bags ``200 + table``), so a 1-shard build is
bitwise-identical to the legacy
:class:`~repro.system.parameter_server.HostParameterServer` harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.reorder.stats import TableStats
from repro.sharding.compression import LinkCompressionConfig
from repro.sharding.placement import (
    PlacementKind,
    PlacementPlan,
    PlacementStrategy,
    StatsDrivenStrategy,
)
from repro.sharding.server import ShardedParameterServer
from repro.system.devices import TESLA_V100
from repro.system.parameter_server import HostBackedEmbeddingBag
from repro.system.pipeline import PipelinedPSTrainer, TraceProbe

__all__ = [
    "ShardedTrainerSetup",
    "build_sharded_ps_trainer",
    "analytic_table_stats",
]

#: Default skew for analytic stats when no index stream was profiled
#: (matches the synthetic data generators' default).
_DEFAULT_ALPHA = 1.05

#: Worker-resident compressed placement kinds -> the embedding backend
#: that realizes them.  Kinds outside this map (dense / TT / the
#: server-resident ones) keep the model config's per-table backend,
#: which preserves the pre-zoo construction bit for bit.
_KIND_BACKENDS = {
    PlacementKind.HASH_DEVICE: EmbeddingBackend.HASH,
    PlacementKind.ROBE_DEVICE: EmbeddingBackend.ROBE,
    PlacementKind.PQ_DEVICE: EmbeddingBackend.PQ,
}


def analytic_table_stats(
    table_rows: Sequence[int], alpha: float = _DEFAULT_ALPHA
) -> List[TableStats]:
    """Analytic per-table stats when no profiling window is available."""
    return [
        TableStats.from_spec(t, rows, alpha)
        for t, rows in enumerate(table_rows)
    ]


@dataclass
class ShardedTrainerSetup:
    """Everything :func:`build_sharded_ps_trainer` assembled."""

    model: DLRM
    server: ShardedParameterServer
    trainer: PipelinedPSTrainer
    plan: PlacementPlan
    host_positions: List[int]
    host_table_map: Dict[int, int]
    stats: List[TableStats]


def build_sharded_ps_trainer(
    model_cfg: DLRMConfig,
    num_shards: int = 1,
    compression: Optional[LinkCompressionConfig] = None,
    stats: Optional[Sequence[TableStats]] = None,
    strategy: Optional[PlacementStrategy] = None,
    device_budget_bytes: Optional[int] = None,
    host_positions: Optional[Sequence[int]] = None,
    probe: Optional[TraceProbe] = None,
    lr: float = 0.05,
    prefetch_depth: int = 3,
    grad_queue_depth: int = 2,
    use_cache: bool = True,
    model_seed: int = 7,
    server_seed: int = 3,
    bag_seed_base: int = 200,
) -> ShardedTrainerSetup:
    """Build a pipelined PS trainer backed by a sharded server.

    The placement plan decides which tables sit behind the PS tier
    (``host_positions`` overrides it — the chaos harness pins the two
    largest tables for backward-compatible trajectories).  When the
    plan puts *every* table on-device, the two largest tables are
    forced server-side anyway: this is a PS trainer and an empty
    server would degenerate to plain local training.
    """
    rows = list(model_cfg.table_rows)
    table_stats = (
        list(stats) if stats is not None else analytic_table_stats(rows)
    )
    if len(table_stats) != len(rows):
        raise ValueError(
            f"got {len(table_stats)} stats for {len(rows)} tables"
        )
    planner = strategy if strategy is not None else StatsDrivenStrategy()
    budget = (
        int(device_budget_bytes)
        if device_budget_bytes is not None
        else int(TESLA_V100.hbm_bytes * 0.8)
    )
    plan = planner.plan(
        table_stats,
        num_devices=num_shards,
        device_budget_bytes=budget,
        embedding_dim=model_cfg.embedding_dim,
        dtype_bytes=8,
        tt_rank=model_cfg.tt_rank,
    )

    if host_positions is not None:
        positions = sorted(int(p) for p in host_positions)
    else:
        positions = sorted(plan.server_table_positions())
        if not positions:
            positions = sorted(
                sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
            )
    host_map = {p: i for i, p in enumerate(positions)}
    server_rows = [rows[p] for p in positions]

    bags = []
    for t, r in enumerate(rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(r, model_cfg.embedding_dim))
        else:
            backend = _KIND_BACKENDS.get(
                plan.kind_of(t), model_cfg.backend_for_table(t)
            )
            bags.append(
                build_embedding_bag(
                    backend,
                    r,
                    model_cfg.embedding_dim,
                    model_cfg.tt_rank,
                    seed=(bag_seed_base + t),
                    compress_rate=model_cfg.compress_rate,
                )
            )
    model = DLRM(model_cfg, seed=model_seed, embedding_bags=bags)
    server = ShardedParameterServer(
        server_rows,
        model_cfg.embedding_dim,
        lr=lr,
        num_shards=num_shards,
        seed=server_seed,
        compression=compression,
    )
    trainer = PipelinedPSTrainer(
        model,
        server,
        host_map,
        lr=lr,
        prefetch_depth=prefetch_depth,
        grad_queue_depth=grad_queue_depth,
        use_cache=use_cache,
        probe=probe,
    )
    return ShardedTrainerSetup(
        model=model,
        server=server,
        trainer=trainer,
        plan=plan,
        host_positions=positions,
        host_table_map=host_map,
        stats=table_stats,
    )
