"""Sharded parameter server: host tables split across simulated devices.

:class:`ShardedParameterServer` duck-types
:class:`~repro.system.parameter_server.HostParameterServer` — same
``gather`` / ``apply_gradients`` / ``tables`` surface — so the existing
sequential and pipelined PS trainers drive it unchanged.  Internally
every table is split across ``num_shards`` simulated devices by the
mod-N :class:`~repro.sharding.partitioner.ShardPartitioner`; a gather
fans out to the owning shards and reassembles rows in globally sorted
order, an apply fans the aggregated row gradients back out.

Three invariants the tests pin:

* **Bitwise equivalence** — with link compression off, training against
  an N-shard server is bit-identical to the single-table baseline for
  any N: tables are initialized *before* splitting with the exact
  HostParameterServer RNG stream, per-shard blocks are strided views'
  copies (``table[s::N]``), and both fan-out directions preserve sorted
  order, so every float op matches the unsharded execution.
* **Exactly-once accounting** — each ``apply_gradients`` call is one
  logical update; per-shard apply counters track which devices actually
  received rows, and their sum over a run equals the number of
  non-empty (table, shard) pushes.  The resilience ledger's replay
  therefore reconciles against ``update_count`` exactly as it does for
  the host server.
* **Explicit wire accounting** — every pull (gather) and push
  (gradient) is metered per shard link in raw vs on-wire bytes, so the
  scaling benchmark can show compression shrinking PS traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import ZONE_PS_APPLY, ZONE_PS_GATHER, get_backend
from repro.nn.optim import SparseSGD
from repro.sharding.compression import (
    LinkCompressionConfig,
    build_pull_quantizer,
    build_push_compressor,
)
from repro.sharding.partitioner import ShardPartitioner
from repro.system.parameter_server import PrefetchedRows
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import check_1d_int_array

__all__ = ["ShardedParameterServer", "LinkStats"]

_ROW_ID_BYTES = 8


@dataclass
class LinkStats:
    """Per-shard-link byte counters (pull = gather, push = gradients)."""

    num_shards: int
    pull_raw: np.ndarray = field(init=False)
    pull_wire: np.ndarray = field(init=False)
    push_raw: np.ndarray = field(init=False)
    push_wire: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        for name in ("pull_raw", "pull_wire", "push_raw", "push_wire"):
            setattr(self, name, np.zeros(self.num_shards, dtype=np.int64))

    @property
    def total_raw(self) -> int:
        return int(self.pull_raw.sum() + self.push_raw.sum())

    @property
    def total_wire(self) -> int:
        return int(self.pull_wire.sum() + self.push_wire.sum())

    @property
    def compression_ratio(self) -> float:
        """raw / wire (1.0 when nothing crossed a link yet)."""
        wire = self.total_wire
        return self.total_raw / wire if wire else 1.0

    def summary(self) -> Dict[str, float]:
        return {
            "pull_raw_bytes": int(self.pull_raw.sum()),
            "pull_wire_bytes": int(self.pull_wire.sum()),
            "push_raw_bytes": int(self.push_raw.sum()),
            "push_wire_bytes": int(self.push_wire.sum()),
            "compression_ratio": self.compression_ratio,
        }


class _ShardedTableView:
    """Read-only global-index view over one table's shard blocks.

    Lets callers that expect a plain ``np.ndarray`` table (the
    pipeline's no-cache diagnostic, serving snapshots) address rows by
    global id without knowing the shard layout.
    """

    def __init__(
        self,
        blocks: List[np.ndarray],
        partitioner: ShardPartitioner,
        num_rows: int,
        embedding_dim: int,
    ) -> None:
        self._blocks = blocks
        self._partitioner = partitioner
        self._num_rows = num_rows
        self._embedding_dim = embedding_dim

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._num_rows, self._embedding_dim)

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._blocks)

    def __len__(self) -> int:
        return self._num_rows

    def __getitem__(self, key: Any) -> np.ndarray:
        idx = np.asarray(key, dtype=np.int64)
        scalar = idx.ndim == 0
        flat = idx.reshape(-1)
        shard_ids, local = self._partitioner.route(flat)
        out = np.empty(
            (flat.size, self._embedding_dim), dtype=np.float64
        )
        for s, block in enumerate(self._blocks):
            mask = shard_ids == s
            if mask.any():
                out[mask] = block[local[mask]]
        if scalar:
            return out[0]
        return out.reshape(idx.shape + (self._embedding_dim,))

    def __array__(
        self, dtype: Any = None, copy: Optional[bool] = None
    ) -> np.ndarray:
        full = np.empty(
            (self._num_rows, self._embedding_dim), dtype=np.float64
        )
        for s, block in enumerate(self._blocks):
            full[s :: self._partitioner.num_shards] = block
        if dtype is not None:
            return full.astype(dtype)
        return full


class _TableViewList:
    """List-like ``server.tables`` facade producing shard views."""

    def __init__(self, server: "ShardedParameterServer") -> None:
        self._server = server

    def __len__(self) -> int:
        return self._server.num_tables

    def __getitem__(self, table_idx: int) -> _ShardedTableView:
        return self._server.table_view(table_idx)

    def __iter__(self) -> Iterator[_ShardedTableView]:
        for t in range(len(self)):
            yield self[t]


class ShardedParameterServer:
    """Parameter server whose tables are row-sharded across N devices.

    Parameters
    ----------
    table_rows:
        Cardinality of each server-resident table.
    embedding_dim:
        Shared embedding width.
    lr:
        Learning rate for the server-side sparse update.
    num_shards:
        Simulated device count (``1`` reduces to the host server's
        behaviour, still bitwise).
    seed:
        RNG for table initialization — the same seed produces tables
        bitwise-identical to a :class:`HostParameterServer`.
    compression:
        Optional :class:`LinkCompressionConfig`; ``None`` (or mode
        ``"none"``) keeps both link directions exact.
    """

    def __init__(
        self,
        table_rows: Sequence[int],
        embedding_dim: int,
        lr: float,
        num_shards: int = 1,
        seed: RngLike = 0,
        compression: Optional[LinkCompressionConfig] = None,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.embedding_dim = int(embedding_dim)
        self.lr = float(lr)
        self.partitioner = ShardPartitioner(num_shards)
        self.num_shards = self.partitioner.num_shards
        self.table_rows: List[int] = [int(r) for r in table_rows]
        self.compression = compression or LinkCompressionConfig()

        # Initialize full tables with the HostParameterServer RNG
        # stream, *then* split — shard blocks hold bitwise the same
        # values the unsharded server would.
        rngs = spawn_rngs(seed, len(self.table_rows))
        self._shards: List[List[np.ndarray]] = []
        for rows, rng in zip(self.table_rows, rngs):
            bound = 1.0 / np.sqrt(rows)
            full = rng.uniform(-bound, bound, size=(rows, embedding_dim))
            self._shards.append(self.partitioner.split_table(full))

        self._sgd = SparseSGD(lr)
        self._push = build_push_compressor(
            self.compression, self.table_rows, self.embedding_dim
        )
        self._pull = build_pull_quantizer(self.compression, self.embedding_dim)

        self.gather_count = 0
        self.update_count = 0
        self.shard_apply_counts = np.zeros(self.num_shards, dtype=np.int64)
        self.link_stats = LinkStats(self.num_shards)

    # -- HostParameterServer surface -----------------------------------
    @property
    def num_tables(self) -> int:
        return len(self.table_rows)

    @property
    def tables(self) -> _TableViewList:
        return _TableViewList(self)

    def table_view(self, table_idx: int) -> _ShardedTableView:
        return _ShardedTableView(
            self._shards[table_idx],
            self.partitioner,
            self.table_rows[table_idx],
            self.embedding_dim,
        )

    def shard_blocks(self, table_idx: int) -> List[np.ndarray]:
        """The live per-shard blocks of one table (not copies)."""
        return self._shards[table_idx]

    def gather(self, table_idx: int, indices: np.ndarray) -> PrefetchedRows:
        """Gather a batch's unique rows from their owning shards.

        The reassembled ``rows`` array is ordered by ascending global
        id, exactly as the host server's ``np.unique``-sorted gather.
        """
        num_rows = self.table_rows[table_idx]
        idx = check_1d_int_array(
            indices, "indices", min_value=0, max_value=num_rows - 1
        )
        unique = np.unique(idx)
        self.gather_count += 1
        shard_ids, local = self.partitioner.route(unique)
        rows = np.empty(
            (unique.size, self.embedding_dim), dtype=np.float64
        )
        bk = get_backend()
        for s, block in enumerate(self._shards[table_idx]):
            mask = shard_ids == s
            count = int(mask.sum())
            if count == 0:
                continue
            with bk.zone(ZONE_PS_GATHER):
                pulled = bk.gather_rows(block, local[mask])
            raw = count * self.embedding_dim * 8
            wire = raw
            if self._pull is not None:
                pulled, raw, wire = self._pull.apply(pulled)
            rows[mask] = pulled
            self.link_stats.pull_raw[s] += raw + count * _ROW_ID_BYTES
            self.link_stats.pull_wire[s] += wire + count * _ROW_ID_BYTES
        return PrefetchedRows(
            table_idx=table_idx,
            unique_indices=unique,
            rows=rows,
        )

    def apply_gradients(
        self, table_idx: int, unique_indices: np.ndarray, row_grads: np.ndarray
    ) -> None:
        """Route one batch's aggregated row gradients to their shards.

        With top-k compression enabled, only the top rows by
        residual-corrected norm cross the links this step; everything
        else is banked in the error-feedback residual and sent later.
        The call counts as exactly one logical update regardless of how
        many shard links it touched.
        """
        uidx = np.asarray(unique_indices, dtype=np.int64)
        grads = np.asarray(row_grads, dtype=np.float64)
        raw_ids, raw_locals = self.partitioner.route(uidx)
        if self._push is not None:
            pushed = self._push.compress(table_idx, uidx, grads)
            sent_idx, sent_grads = pushed.unique_indices, pushed.row_grads
            sent_ids, sent_locals = self.partitioner.route(sent_idx)
        else:
            sent_idx, sent_grads = uidx, grads
            sent_ids, sent_locals = raw_ids, raw_locals
        per_row_bytes = self.embedding_dim * 8 + _ROW_ID_BYTES
        blocks = self._shards[table_idx]
        for s in range(self.num_shards):
            raw_count = int((raw_ids == s).sum())
            mask = sent_ids == s
            count = int(mask.sum())
            self.link_stats.push_raw[s] += raw_count * per_row_bytes
            self.link_stats.push_wire[s] += count * per_row_bytes
            if count == 0:
                continue
            self._sgd.step_rows(
                blocks[s],
                sent_locals[mask],
                sent_grads[mask],
                zone=ZONE_PS_APPLY,
            )
            self.shard_apply_counts[s] += 1
        self.update_count += 1

    def nbytes(self) -> int:
        return sum(
            block.nbytes for shards in self._shards for block in shards
        )

    # -- checkpoint support --------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Live state arrays for a trainer snapshot.

        Shard blocks are exposed per (table, shard) so a checkpoint of
        an N-shard run restores into an N-shard server without
        re-splitting; error-feedback residuals ride along so recovery
        is bitwise even with compression on.
        """
        arrays: Dict[str, np.ndarray] = {}
        for t, shards in enumerate(self._shards):
            for s, block in enumerate(shards):
                arrays[f"table{t}/shard{s}"] = block
        if self._push is not None:
            for key, residual in sorted(self._push.state_arrays().items()):
                arrays[key] = residual
        return arrays

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_arrays` output (validate, then write)."""
        staged = []
        for t, shards in enumerate(self._shards):
            for s, block in enumerate(shards):
                key = f"table{t}/shard{s}"
                if key not in arrays:
                    raise KeyError(f"snapshot missing shard array {key!r}")
                stored = np.asarray(arrays[key], dtype=np.float64)
                if stored.shape != block.shape:
                    raise ValueError(
                        f"shard {key!r} shape mismatch: "
                        f"{stored.shape} vs {block.shape}"
                    )
                staged.append((block, stored))
        for block, stored in staged:
            block[...] = stored
        if self._push is not None:
            self._push.load_state_arrays(arrays)
