"""Canned hazard-detection experiment (fault injection included).

Builds the same tiny DLRM + parameter-server pipeline the test suite
uses, attaches a :class:`~repro.analysis.shims.PipelineProbe`, trains,
and returns the analyzed :class:`~repro.analysis.hazards.HazardReport`.

Two modes:

* ``inject_fault=False`` (default) — life-cycle cache management on;
  the report must be hazard-free (every stale gather is repaired).
* ``inject_fault=True`` — LC management disabled, reproducing the
  naive prefetching of paper Figure 10(a); the report must surface
  RAW hazards on hot rows.

Exposed on the CLI as ``python -m repro hazards [--inject]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.hazards import HazardReport
from repro.analysis.shims import PipelineProbe
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import PipelinedPSTrainer, TrainLog

__all__ = ["HazardExperimentResult", "run_hazard_experiment"]


@dataclass
class HazardExperimentResult:
    """Everything a caller needs to judge one instrumented run."""

    report: HazardReport
    train_log: TrainLog
    num_batches: int
    inject_fault: bool

    def summary(self) -> str:
        mode = (
            "FAULT INJECTION (LC management disabled)"
            if self.inject_fault
            else "default pipeline (LC management on)"
        )
        lines = [
            f"mode            : {mode}",
            f"batches trained : {self.num_batches}",
            self.report.summary(),
        ]
        if self.inject_fault:
            lines.append(
                f"stale rows seen : {self.train_log.stale_rows_consumed} "
                "(trainer-side diagnostic, corroborates the detector)"
            )
        else:
            lines.append(
                f"cache hits      : {self.train_log.cache_hits} "
                "(each one a stale gather the LC cache repaired)"
            )
        return "\n".join(lines)


def _build_pipeline(
    seed: int, lr: float
) -> Tuple[DLRM, HostParameterServer, Dict[int, int], SyntheticClickLog]:
    """Small two-host-table DLRM over a scaled Criteo-like schema."""
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=64, seed=seed)
    cfg = DLRMConfig.from_dataset(
        spec,
        embedding_dim=8,
        backend=EmbeddingBackend.EFF_TT,
        tt_rank=8,
        tt_threshold_rows=100,
        bottom_mlp=(16,),
        top_mlp=(16,),
    )
    rows = list(cfg.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    host_map = {p: i for i, p in enumerate(host_positions)}
    bags: List[object] = []
    for t, num_rows in enumerate(cfg.table_rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(num_rows, cfg.embedding_dim))
        else:
            bags.append(
                build_embedding_bag(
                    cfg.backend_for_table(t),
                    num_rows,
                    cfg.embedding_dim,
                    cfg.tt_rank,
                    seed=(200 + t),
                )
            )
    model = DLRM(cfg, seed=7, embedding_bags=bags)
    server = HostParameterServer(
        [rows[p] for p in host_positions], cfg.embedding_dim, lr=lr, seed=3
    )
    return model, server, host_map, log


def run_hazard_experiment(
    inject_fault: bool = False,
    num_batches: int = 16,
    prefetch_depth: int = 3,
    grad_queue_depth: int = 2,
    lr: float = 0.05,
    seed: int = 0,
) -> HazardExperimentResult:
    """Train an instrumented pipeline and analyze its row trace.

    ``inject_fault=True`` disables the §V-B cache (LC management), the
    exact failure mode the paper's Figure 10(a) illustrates; the
    detector must then flag RAW hazards.  All inputs are seeded, so
    repeated runs produce identical traces and identical reports.
    """
    model, server, host_map, log = _build_pipeline(seed=seed, lr=lr)
    probe = PipelineProbe()
    trainer = PipelinedPSTrainer(
        model,
        server,
        host_map,
        lr=lr,
        prefetch_depth=prefetch_depth,
        grad_queue_depth=grad_queue_depth,
        use_cache=not inject_fault,
        probe=probe,
    )
    train_log = trainer.train(log, num_batches)
    return HazardExperimentResult(
        report=probe.report(),
        train_log=train_log,
        num_batches=num_batches,
        inject_fault=inject_fault,
    )
