"""Event-recording shims over the pipeline's moving parts.

Subclasses of :class:`~repro.system.queues.BoundedQueue` and
:class:`~repro.embeddings.cache.EmbeddingCache` that log every
interaction to a :class:`~repro.analysis.hazards.TraceRecorder`, plus
:class:`PipelineProbe` — the object a
:class:`~repro.system.pipeline.PipelinedPSTrainer` accepts to have its
gather/consume/update/apply path traced.  The shims change *no*
behaviour: an instrumented run is bit-identical to a bare run (asserted
in the test suite), they only observe.
"""

from __future__ import annotations

from typing import Iterable, Tuple, TypeVar

import numpy as np

from repro.analysis.hazards import (
    EventKind,
    HazardReport,
    TraceRecorder,
    analyze_trace,
)
from repro.embeddings.cache import BoolArray, EmbeddingCache, FloatArray, IntArray
from repro.system.queues import BoundedQueue

__all__ = ["RecordingQueue", "RecordingCache", "PipelineProbe"]

T = TypeVar("T")

# Stage tags used in recorded events.  DESIGN.md §7 maps these onto the
# paper's §V-B life-cycle narrative.
STAGE_SERVER_GATHER = "server_gather"
STAGE_WORKER_TRAIN = "worker_train"
STAGE_SERVER_APPLY = "server_apply"
STAGE_CACHE = "lc_cache"


class RecordingQueue(BoundedQueue[T]):
    """A :class:`BoundedQueue` that logs put/get traffic.

    Queue events carry the queue's name as their stage tag; they feed
    occupancy diagnostics, not the hazard analysis itself (hazards are
    defined on row events).
    """

    def __init__(
        self, capacity: int, recorder: TraceRecorder, name: str
    ) -> None:
        super().__init__(capacity)
        self._recorder = recorder
        self._name = name

    def put(self, item: T) -> None:
        super().put(item)
        self._recorder.tick()
        self._recorder.record(EventKind.QUEUE_PUT, stage=self._name)

    def get(self) -> T:
        item = super().get()
        self._recorder.tick()
        self._recorder.record(EventKind.QUEUE_GET, stage=self._name)
        return item


class RecordingCache(EmbeddingCache):
    """An :class:`EmbeddingCache` that logs its life-cycle events.

    ``SYNC_HIT`` events are what mark a stale gather as *repaired* in
    the hazard analysis; ``CACHE_PUT``/``CACHE_DEC``/``CACHE_EVICT``
    narrate the §V-B life-cycle for the report.
    """

    def __init__(
        self,
        embedding_dim: int,
        default_lifecycle: int,
        recorder: TraceRecorder,
        table: int,
    ) -> None:
        super().__init__(embedding_dim, default_lifecycle)
        self._recorder = recorder
        self._table = table
        self._current_batch = -1

    def set_batch(self, batch_id: int) -> None:
        """Tag subsequent cache events with the active batch id."""
        self._current_batch = int(batch_id)

    def put(self, indices: IntArray, values: FloatArray) -> None:
        super().put(indices, values)
        self._recorder.tick()
        self._recorder.record_rows(
            EventKind.CACHE_PUT,
            stage=STAGE_CACHE,
            table=self._table,
            rows=np.asarray(indices).tolist(),
            batch=self._current_batch,
        )

    def synchronize(
        self, indices: IntArray, values: FloatArray
    ) -> Tuple[FloatArray, BoolArray]:
        fresh, hit_mask = super().synchronize(indices, values)
        self._recorder.tick()
        idx = np.asarray(indices)
        self._recorder.record_rows(
            EventKind.SYNC_HIT,
            stage=STAGE_CACHE,
            table=self._table,
            rows=idx[hit_mask].tolist(),
            batch=self._current_batch,
        )
        self._recorder.record_rows(
            EventKind.SYNC_MISS,
            stage=STAGE_CACHE,
            table=self._table,
            rows=idx[~hit_mask].tolist(),
            batch=self._current_batch,
        )
        return fresh, hit_mask

    def decrement(self, indices: IntArray) -> int:
        idx = np.unique(np.asarray(indices))
        before = {int(i) for i in idx.tolist() if int(i) in self}
        evicted = super().decrement(indices)
        self._recorder.tick()
        gone = sorted(i for i in before if i not in self)
        live = sorted(before - set(gone))
        self._recorder.record_rows(
            EventKind.CACHE_DEC,
            stage=STAGE_CACHE,
            table=self._table,
            rows=live,
            batch=self._current_batch,
        )
        self._recorder.record_rows(
            EventKind.CACHE_EVICT,
            stage=STAGE_CACHE,
            table=self._table,
            rows=gone,
            batch=self._current_batch,
        )
        return evicted


class PipelineProbe:
    """Trace recorder attachable to a :class:`PipelinedPSTrainer`.

    The trainer calls the factory methods at construction time (so its
    queues and caches are recording variants) and the ``on_*`` hooks
    from its gather/consume/update/apply path.  After a run,
    :meth:`report` analyzes the accumulated trace.
    """

    def __init__(self) -> None:
        self.recorder = TraceRecorder()
        self._caches: "list[RecordingCache]" = []

    # -- component factories (called by the trainer) -------------------
    def make_queue(self, capacity: int, name: str) -> RecordingQueue[T]:
        return RecordingQueue(capacity, self.recorder, name)

    def make_cache(
        self, embedding_dim: int, default_lifecycle: int, table: int
    ) -> RecordingCache:
        cache = RecordingCache(
            embedding_dim, default_lifecycle, self.recorder, table
        )
        self._caches.append(cache)
        return cache

    # -- dataflow hooks (called by the trainer) ------------------------
    def on_gather(
        self, batch_id: int, table: int, unique_indices: Iterable[int]
    ) -> None:
        """Server read host rows for a prefetch entry."""
        self.recorder.tick()
        self.recorder.record_rows(
            EventKind.GATHER,
            stage=STAGE_SERVER_GATHER,
            table=table,
            rows=unique_indices,
            batch=batch_id,
        )

    def on_consume(
        self, batch_id: int, table: int, unique_indices: Iterable[int]
    ) -> None:
        """Worker loaded the (possibly cache-synced) prefetched rows."""
        self.recorder.tick()
        self.recorder.record_rows(
            EventKind.CONSUME,
            stage=STAGE_WORKER_TRAIN,
            table=table,
            rows=unique_indices,
            batch=batch_id,
        )

    def on_update(
        self, batch_id: int, table: int, unique_indices: Iterable[int]
    ) -> None:
        """Worker produced fresh row values (write intent)."""
        self.recorder.tick()
        self.recorder.record_rows(
            EventKind.UPDATE,
            stage=STAGE_WORKER_TRAIN,
            table=table,
            rows=unique_indices,
            batch=batch_id,
        )

    def on_apply(
        self, batch_id: int, table: int, unique_indices: Iterable[int]
    ) -> None:
        """Server applied a batch's gradients to host memory."""
        self.recorder.tick()
        self.recorder.record_rows(
            EventKind.APPLY,
            stage=STAGE_SERVER_APPLY,
            table=table,
            rows=unique_indices,
            batch=batch_id,
        )

    def on_batch_start(self, batch_id: int) -> None:
        """Tag this probe's recording caches with the active batch."""
        for cache in self._caches:
            cache.set_batch(batch_id)

    # -- analysis ------------------------------------------------------
    def report(self) -> HazardReport:
        """Analyze the trace recorded so far."""
        return analyze_trace(self.recorder.events)
