"""Correctness tooling: the ``reprolint`` linter + pipeline hazard detector.

Two prongs, one goal — make the reproduction's determinism and
read-after-write safety *machine-checked* instead of asserted:

* :mod:`repro.analysis.linter` / :mod:`repro.analysis.rules` — an
  AST-based lint pass with repo-specific rules (seeded RNG only,
  SimClock-only zones, explicit kernel dtypes, batch-loop perf
  advisories).  Run it with ``python -m repro lint src/repro``.
* :mod:`repro.analysis.hazards` / :mod:`repro.analysis.shims` — an
  event-recording shim over the pipelined PS trainer that logs
  per-embedding-row reads/writes with simulated timestamps and detects
  RAW/WAR hazards; ``python -m repro hazards --inject`` demonstrates
  the §V raw conflict being caught.
"""

from repro.analysis.experiment import (
    HazardExperimentResult,
    run_hazard_experiment,
)
from repro.analysis.detcheck import (
    DET_RULES,
    detcheck_paths,
    detcheck_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.hazards import (
    HAZARD_RULES,
    EventKind,
    Hazard,
    HazardReport,
    RowEvent,
    TraceRecorder,
    analyze_trace,
    hazard_findings,
)
from repro.analysis.linter import (
    LintResult,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.analysis.perfcheck import (
    PERF_RULES,
    build_fusion_plan,
    perfcheck_paths,
    perfcheck_source,
    run_calibration,
)
from repro.analysis.rules import RULE_REGISTRY, Rule, RuleContext, register
from repro.analysis.sarif import result_to_sarif, results_to_sarif_bundle
from repro.analysis.shapecheck import (
    SHAPE_RULES,
    shapecheck_paths,
    shapecheck_source,
)
from repro.analysis.shims import PipelineProbe, RecordingCache, RecordingQueue

__all__ = [
    "Finding",
    "Severity",
    "LintResult",
    "lint_paths",
    "lint_source",
    "format_findings",
    "RULE_REGISTRY",
    "Rule",
    "RuleContext",
    "register",
    "EventKind",
    "RowEvent",
    "TraceRecorder",
    "Hazard",
    "HazardReport",
    "analyze_trace",
    "PipelineProbe",
    "RecordingCache",
    "RecordingQueue",
    "HazardExperimentResult",
    "run_hazard_experiment",
    "SHAPE_RULES",
    "shapecheck_paths",
    "shapecheck_source",
    "DET_RULES",
    "detcheck_paths",
    "detcheck_source",
    "HAZARD_RULES",
    "hazard_findings",
    "result_to_sarif",
    "results_to_sarif_bundle",
    "PERF_RULES",
    "perfcheck_paths",
    "perfcheck_source",
    "build_fusion_plan",
    "run_calibration",
]
