"""The ``reprolint`` runner: file discovery, pragmas, formatting.

Usage surfaces:

* CLI — ``python -m repro lint [paths...]`` (exit 1 on error-level
  findings);
* pytest — ``tests/analysis/test_lint_self.py`` lints ``src/repro``
  itself and asserts the tree ships clean;
* library — :func:`lint_paths` for ad-hoc tooling.

Suppression pragmas (matched per physical line)::

    x = time.time()  # reprolint: disable=wall-clock
    # reprolint: disable-file=batch-loop   (anywhere: whole module)
    y = np.zeros(4)  # reprolint: disable=all

Rules are identified in pragmas by symbolic name (``wall-clock``) or
id (``REP002``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import RULE_REGISTRY, Rule, build_context

__all__ = [
    "LintResult",
    "lint_paths",
    "lint_source",
    "format_findings",
    "iter_python_files",
    "parse_pragmas",
    "is_suppressed",
    "package_rel",
]

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\- ]+)"
)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-level findings survived pragmas."""
        return not self.errors

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_scanned": self.files_scanned,
                "suppressed": self.suppressed,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def parse_pragmas(source: str) -> "tuple[Dict[int, Set[str]], Set[str]]":
    """Extract per-line and file-wide suppression sets from pragmas."""
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        names = {part.strip() for part in match.group(2).split(",") if part.strip()}
        if match.group(1) == "disable-file":
            file_wide |= names
        else:
            per_line.setdefault(lineno, set()).update(names)
    return per_line, file_wide


def is_suppressed(finding: Finding, names: Set[str]) -> bool:
    return bool(names & {finding.rule, finding.rule_id, "all"})


def package_rel(path: Path) -> str:
    """Posix path rooted at the innermost ``repro`` package directory.

    Files outside any ``repro`` directory keep their file name, which
    places them in no lint zone (zone rules skip them).
    """
    parts = path.resolve().parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return path.name


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        return list(RULE_REGISTRY.values())
    rules: List[Rule] = []
    for name in select:
        matches = [
            rule
            for rule in RULE_REGISTRY.values()
            if name in (rule.name, rule.id)
        ]
        if not matches:
            raise KeyError(
                f"unknown rule {name!r}; known: "
                f"{sorted(RULE_REGISTRY)}"
            )
        rules.extend(matches)
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    rel: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint one in-memory module (unit-test and tooling entry point).

    ``rel`` positions the module for zone checks; it defaults to the
    path's package-relative form.
    """
    result = LintResult(files_scanned=1)
    resolved_rel = rel if rel is not None else package_rel(Path(path))
    ctx = build_context(Path(path), resolved_rel, source)
    per_line, file_wide = parse_pragmas(source)
    for rule in _select_rules(select):
        for finding in rule.check(ctx):
            line_names = per_line.get(finding.line, set())
            if is_suppressed(finding, line_names | file_wide):
                result.suppressed += 1
                continue
            result.findings.append(finding)
    result.findings.sort(key=lambda f: f.sort_key)
    return result


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``; aggregate the results."""
    total = LintResult()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            single = lint_source(
                source,
                path=str(file_path),
                rel=package_rel(file_path),
                select=select,
            )
        except SyntaxError as exc:
            total.findings.append(
                Finding(
                    rule="syntax-error",
                    rule_id="REP000",
                    severity=Severity.ERROR,
                    path=str(file_path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            total.files_scanned += 1
            continue
        total.files_scanned += single.files_scanned
        total.suppressed += single.suppressed
        total.findings.extend(single.findings)
    total.findings.sort(key=lambda f: f.sort_key)
    return total


def format_findings(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in result.findings]
    lines.append(
        f"{result.files_scanned} file(s) scanned: "
        f"{len(result.errors)} error(s), {len(result.warnings)} warning(s), "
        f"{result.suppressed} suppressed"
    )
    return "\n".join(lines)
