"""Repo-specific lint rules (the ``reprolint`` rule catalog).

Rules are small objects satisfying the :class:`Rule` protocol; the
module-level :data:`RULE_REGISTRY` is what the linter iterates.  Each
rule inspects one parsed module through a :class:`RuleContext` and
yields :class:`~repro.analysis.findings.Finding` records.

The catalog enforces the invariants the reproduction's correctness
story rests on:

``unseeded-rng`` (REP001, error)
    All randomness flows through :mod:`repro.utils.rng`.  Calling
    ``np.random.default_rng()`` with no seed, or any legacy global
    ``np.random.*`` sampler, silently breaks bit-reproducibility.
``wall-clock`` (REP002, error)
    ``system/``, ``serving/`` and ``embeddings/`` are SimClock-only
    zones: simulated time must come from the event loop, never from
    ``time.time()``/``time.perf_counter()``, or traces stop being
    deterministic.  (Measurement harnesses opt out per line with a
    ``# reprolint: disable=wall-clock`` pragma.)
``implicit-dtype`` (REP003, error)
    Kernel modules (``embeddings/``, ``nn/``) must allocate with an
    explicit ``dtype``: numpy's float64 default has bitten every
    mixed-precision port of this code, and implicit dtypes make the
    Table-III memory accounting wrong.
``batch-loop`` (REP004, warning)
    Python-level ``for`` loops over batch-shaped data inside kernel
    modules are the slow path the paper's kernels exist to remove;
    flagged as a perf advisory, not an error.
``direct-numpy-in-kernel-zone`` (REP005, error)
    Hot-path contractions (``np.matmul``/``np.einsum``/``np.dot``)
    must route through the active :mod:`repro.backend` so FLOP
    instrumentation, plan caching, and accelerated backends see every
    kernel.  The reference :class:`NumpyBackend` is the one module
    allowed to call them, via a ``disable-file`` pragma.
``silent-except`` (REP006, error)
    Kernel and system zones must not hide failures: a bare
    ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` along
    with everything else, and a handler whose body is only
    ``pass``/``...`` swallows the exception without a trace.  The
    resilience layer's whole contract is that faults are *detected*
    and *recovered*, never silently eaten — a swallowed exception in
    these zones is indistinguishable from the dropped-gradient fault
    the chaos suite injects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

from repro.analysis.findings import Finding, Severity

__all__ = [
    "Rule",
    "RuleContext",
    "RULE_REGISTRY",
    "register",
    "UnseededRngRule",
    "WallClockRule",
    "ImplicitDtypeRule",
    "BatchLoopRule",
    "DirectNumpyRule",
    "SilentExceptRule",
    "SIMCLOCK_ZONES",
    "KERNEL_ZONES",
    "BACKEND_ROUTED_ZONES",
    "EXCEPTION_ZONES",
    "RNG_EXEMPT_FILES",
]

# Module prefixes (posix, rooted at the package dir) where simulated
# time is the only legal clock.
SIMCLOCK_ZONES: Tuple[str, ...] = (
    "repro/system/",
    "repro/serving/",
    "repro/embeddings/",
    "repro/resilience/",
    "repro/sharding/",
)

# Module prefixes holding numeric kernels: allocations need explicit
# dtypes and batch loops are a perf smell.
KERNEL_ZONES: Tuple[str, ...] = (
    "repro/embeddings/",
    "repro/nn/",
    "repro/sharding/",
)

# Module prefixes whose contractions are routed through repro.backend:
# direct np.matmul/einsum/dot calls there bypass instrumentation and
# plan caching.  The reference NumpyBackend opts out per file.
BACKEND_ROUTED_ZONES: Tuple[str, ...] = KERNEL_ZONES + (
    "repro/system/",
    "repro/serving/",
    "repro/backend/",
)

# Module prefixes where exceptions must never be silently swallowed:
# the numeric kernels plus every zone with fault-detection duties.
EXCEPTION_ZONES: Tuple[str, ...] = (
    "repro/embeddings/",
    "repro/nn/",
    "repro/system/",
    "repro/serving/",
    "repro/resilience/",
    "repro/sharding/",
)

# The one module allowed to touch numpy's RNG constructors directly.
RNG_EXEMPT_FILES: Tuple[str, ...] = ("repro/utils/rng.py",)


@dataclass
class RuleContext:
    """Everything a rule may look at for one module.

    Attributes
    ----------
    path:
        The file as given on the command line (used in findings).
    rel:
        Posix path rooted at the ``repro`` package dir
        (``repro/system/pipeline.py``); zone checks key off this.
    tree:
        Parsed AST of the module.
    source:
        Raw text (for ``ast.get_source_segment``).
    aliases:
        Import-alias map: local name -> absolute dotted target
        (``np`` -> ``numpy``, ``pc`` -> ``time.perf_counter``).
    """

    path: str
    rel: str
    tree: ast.Module
    source: str
    aliases: Dict[str, str] = field(default_factory=dict)

    def in_zone(self, prefixes: Tuple[str, ...]) -> bool:
        return self.rel.startswith(prefixes)

    def resolve_call(self, node: ast.expr) -> Optional[str]:
        """Absolute dotted name of a call target, or None.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` given ``import numpy as np``; a
        bare ``perf_counter`` resolves through a
        ``from time import perf_counter`` alias.
        """
        parts: List[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.append(cursor.id)
        parts.reverse()
        head, rest = parts[0], parts[1:]
        target = self.aliases.get(head, head)
        return ".".join([target, *rest]) if rest else target


def build_context(path: Path, rel: str, source: str) -> RuleContext:
    """Parse one module and pre-compute its import-alias map."""
    tree = ast.parse(source, filename=str(path))
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return RuleContext(
        path=str(path), rel=rel, tree=tree, source=source, aliases=aliases
    )


class Rule(Protocol):
    """One pluggable lint rule."""

    id: str
    name: str
    severity: Severity
    description: str

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        ...


RULE_REGISTRY: Dict[str, "Rule"] = {}


def register(rule: "Rule") -> "Rule":
    """Add a rule instance to the global registry (name must be unique)."""
    if rule.name in RULE_REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    RULE_REGISTRY[rule.name] = rule
    return rule


def _finding(
    rule: "Rule", ctx: RuleContext, node: ast.AST, message: str, hint: str
) -> Finding:
    return Finding(
        rule=rule.name,
        rule_id=rule.id,
        severity=rule.severity,
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
        hint=hint,
    )


# ---------------------------------------------------------------------------
# REP001 — unseeded / global RNG
# ---------------------------------------------------------------------------

_LEGACY_SAMPLERS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "get_state",
        "set_state",
    }
)


class UnseededRngRule:
    """All randomness must flow through ``repro.utils.rng``."""

    id = "REP001"
    name = "unseeded-rng"
    severity = Severity.ERROR
    description = (
        "no unseeded default_rng() or legacy global np.random.* outside "
        "utils/rng.py"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.rel in RNG_EXEMPT_FILES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target is None or not target.startswith("numpy.random."):
                continue
            tail = target.rsplit(".", 1)[1]
            if tail == "default_rng" and not node.args and not node.keywords:
                yield _finding(
                    self,
                    ctx,
                    node,
                    "unseeded np.random.default_rng() is nondeterministic",
                    'use repro.utils.rng.ensure_rng with an int seed, or '
                    'seed="entropy" for an explicit opt-in',
                )
            elif tail in _LEGACY_SAMPLERS:
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"legacy global np.random.{tail}() mutates shared "
                    "process state",
                    "draw from a repro.utils.rng.ensure_rng(seed) Generator",
                )


# ---------------------------------------------------------------------------
# REP002 — wall clock inside SimClock zones
# ---------------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


class WallClockRule:
    """SimClock-only zones must not read the host clock."""

    id = "REP002"
    name = "wall-clock"
    severity = Severity.ERROR
    description = (
        "no time.time()/time.perf_counter() in system/, serving/, "
        "embeddings/ (SimClock-only zones)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.in_zone(SIMCLOCK_ZONES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target in _WALL_CLOCK_CALLS:
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"{target}() reads the host clock inside a "
                    "SimClock-only zone",
                    "take timestamps from the Simulator/SimClock event "
                    "loop; measurement harnesses may disable per line",
                )


# ---------------------------------------------------------------------------
# REP003 — allocations without an explicit dtype in kernel modules
# ---------------------------------------------------------------------------

_ALLOCATORS = frozenset(
    {"numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full"}
)


class ImplicitDtypeRule:
    """Kernel allocations must name their dtype."""

    id = "REP003"
    name = "implicit-dtype"
    severity = Severity.ERROR
    description = (
        "np.zeros/ones/empty/full in embeddings/ and nn/ must pass an "
        "explicit dtype"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.in_zone(KERNEL_ZONES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target not in _ALLOCATORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            short = target.rsplit(".", 1)[1]
            yield _finding(
                self,
                ctx,
                node,
                f"np.{short}() without an explicit dtype in a kernel module",
                "pass dtype=np.float64 (or the intended width) explicitly",
            )


# ---------------------------------------------------------------------------
# REP004 — Python loops over batch dimensions in kernels (perf advisory)
# ---------------------------------------------------------------------------

_BATCH_ITER = re.compile(r"\b(batch(_size)?|bags|bag_ids|samples)\b|\.tolist\(")


class BatchLoopRule:
    """Row-at-a-time Python loops are the slow path the kernels replace."""

    id = "REP004"
    name = "batch-loop"
    severity = Severity.WARNING
    description = (
        "warn on Python for-loops over batch-shaped iterables in kernel "
        "modules (vectorize instead)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.in_zone(KERNEL_ZONES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            segment = ast.get_source_segment(ctx.source, node.iter) or ""
            if _BATCH_ITER.search(segment):
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"Python-level loop over batch data ({segment.strip()})",
                    "vectorize with numpy gather/segment ops; loops over "
                    "rows dominate kernel time",
                )


# ---------------------------------------------------------------------------
# REP005 — direct numpy contractions in backend-routed zones
# ---------------------------------------------------------------------------

_CONTRACTIONS = frozenset({"numpy.matmul", "numpy.einsum", "numpy.dot"})


class DirectNumpyRule:
    """Hot-path contractions must go through the active backend."""

    id = "REP005"
    name = "direct-numpy-in-kernel-zone"
    severity = Severity.ERROR
    description = (
        "no direct np.matmul/np.einsum/np.dot in backend-routed zones; "
        "call get_backend().matmul/einsum so instrumentation and plan "
        "caching see the kernel"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.in_zone(BACKEND_ROUTED_ZONES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target not in _CONTRACTIONS:
                continue
            short = target.rsplit(".", 1)[1]
            yield _finding(
                self,
                ctx,
                node,
                f"direct np.{short}() bypasses the repro.backend layer",
                "route through get_backend().matmul/einsum (the reference "
                "NumpyBackend itself opts out with a disable-file pragma)",
            )


# ---------------------------------------------------------------------------
# REP006 — bare / silently-swallowed exceptions in kernel+system zones
# ---------------------------------------------------------------------------


def _is_swallowed(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing observable at all."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            # A docstring or bare `...` — still silent.
            continue
        return False
    return True


class SilentExceptRule:
    """Fault-detecting zones must not hide exceptions."""

    id = "REP006"
    name = "silent-except"
    severity = Severity.ERROR
    description = (
        "no bare `except:` and no pass-only exception handlers in "
        "kernel and system zones; recover, re-raise, or record — "
        "never swallow"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.in_zone(EXCEPTION_ZONES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield _finding(
                    self,
                    ctx,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "and hides the failure's type",
                    "name the exception(s) you can actually handle, or "
                    "`except Exception` + re-raise after cleanup",
                )
                continue
            if _is_swallowed(node):
                segment = ast.get_source_segment(ctx.source, node.type) or ""
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"exception handler for {segment.strip() or 'Exception'} "
                    "silently swallows the failure",
                    "handle it, re-raise it, or record it (e.g. a metrics "
                    "counter); silent drops mask injected and real faults "
                    "alike",
                )


register(UnseededRngRule())
register(WallClockRule())
register(ImplicitDtypeRule())
register(BatchLoopRule())
register(DirectNumpyRule())
register(SilentExceptRule())
