"""Abstract domain for the shapecheck interpreter.

Shapecheck executes kernel code over *abstract* tensors: each array is
summarized by a symbolic shape (a tuple of dimensions, each either a
concrete ``int``, a named :class:`SymDim` symbol, or unknown) and an
optional floating dtype name.  The domain is deliberately one-sided:
every question shapecheck asks is of the form "is this *provably*
wrong?" — two dimensions conflict only when both are concrete integers
that differ, so unknown or symbolic values never produce findings.
That asymmetry is what lets the checker run clean over ``src/repro``
(whose shapes are mostly symbolic) while still catching the seeded
mutation corpus (whose shapes are concrete).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

__all__ = [
    "Dim",
    "SymDim",
    "Top",
    "TOP",
    "TensorVal",
    "TupleVal",
    "DTypeVal",
    "DottedVal",
    "BackendVal",
    "PlanCacheVal",
    "SpecVal",
    "CoresVal",
    "CoreListVal",
    "SymbolFactory",
    "FLOAT_DTYPES",
    "resolve_dtype",
    "promote_dtypes",
    "dims_conflict",
    "dims_equal",
    "dim_product",
    "broadcast_shapes",
    "format_dim",
    "format_shape",
]


@dataclass(frozen=True)
class SymDim:
    """A named symbolic dimension (``B``, ``s3``) of unknown extent."""

    name: str

    def __repr__(self) -> str:
        return self.name


#: A single abstract dimension: concrete, symbolic, or unknown.
Dim = Union[int, SymDim, None]


class SymbolFactory:
    """Mints fresh :class:`SymDim` symbols for one checked module."""

    def __init__(self) -> None:
        self._counter = 0

    def fresh(self, hint: str = "s") -> SymDim:
        self._counter += 1
        return SymDim(f"{hint}{self._counter}")


class Top:
    """The unknown abstract value (no information)."""

    _instance: Optional["Top"] = None

    def __new__(cls) -> "Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOP"


TOP = Top()

FLOAT_DTYPES = ("float16", "float32", "float64")

# Dotted-name tails that resolve to a concrete dtype (``np.float32``,
# ``numpy.float64`` via import aliases).
_DTYPE_TAILS: Dict[str, str] = {
    "float16": "float16",
    "float32": "float32",
    "float64": "float64",
    "single": "float32",
    "double": "float64",
    "half": "float16",
    "int8": "int8",
    "int16": "int16",
    "int32": "int32",
    "int64": "int64",
    "intp": "int64",
    "bool_": "bool",
    "uint8": "uint8",
}


@dataclass(frozen=True)
class TensorVal:
    """Abstract ndarray: symbolic shape + dtype (+ small literal values).

    ``shape is None`` means unknown rank.  ``int_values`` carries the
    concrete entries of a small 1-D integer literal (``np.array([0, -1])``)
    so gather/scatter index bounds can be checked statically.
    """

    shape: Optional[Tuple[Dim, ...]] = None
    dtype: Optional[str] = None
    int_values: Optional[Tuple[int, ...]] = None

    @property
    def rank(self) -> Optional[int]:
        return None if self.shape is None else len(self.shape)

    def with_dtype(self, dtype: Optional[str]) -> "TensorVal":
        return TensorVal(self.shape, dtype, self.int_values)


@dataclass(frozen=True)
class TupleVal:
    """An evaluated tuple/list literal (shape tuples, index lists)."""

    items: Tuple[Any, ...]


@dataclass(frozen=True)
class DTypeVal:
    """A dtype object flowing as a value (``np.dtype("float32")``)."""

    name: str


@dataclass(frozen=True)
class DottedVal:
    """An unresolved dotted name (``numpy.zeros``, ``repro.backend.get_backend``)."""

    name: str

    @property
    def tail(self) -> str:
        return self.name.rsplit(".", 1)[-1]


class BackendVal:
    """The active :class:`~repro.backend.protocol.ArrayBackend`."""

    def __repr__(self) -> str:
        return "<backend>"


class PlanCacheVal:
    """The process-wide :class:`ContractionPlanCache`."""

    def __repr__(self) -> str:
        return "<plan-cache>"


@dataclass(frozen=True)
class SpecVal:
    """A concrete :class:`~repro.embeddings.tt_core.TTSpec`.

    Shapecheck mirrors ``TTSpec``'s metadata exactly so TT-core chain
    shapes derive from the constructor arguments: core ``k`` is stored
    as ``(m_k, R_{k-1}, n_k, R_k)``.
    """

    row_shape: Tuple[int, ...]
    col_shape: Tuple[int, ...]
    ranks: Tuple[int, ...]

    @property
    def num_cores(self) -> int:
        return len(self.row_shape)

    @property
    def padded_rows(self) -> int:
        return math.prod(self.row_shape)

    @property
    def embedding_dim(self) -> int:
        return math.prod(self.col_shape)

    def core_shape(self, k: int) -> Optional[Tuple[int, int, int, int]]:
        if not 0 <= k < self.num_cores:
            return None
        return (
            self.row_shape[k],
            self.ranks[k],
            self.col_shape[k],
            self.ranks[k + 1],
        )


@dataclass(frozen=True)
class CoresVal:
    """A :class:`TTCores` instance with (possibly) known spec metadata."""

    spec: Optional[SpecVal] = None
    dtype: Optional[str] = None


@dataclass(frozen=True)
class CoreListVal:
    """``TTCores.cores`` — indexing with a constant yields a core shape."""

    spec: Optional[SpecVal] = None
    dtype: Optional[str] = None


def resolve_dtype(value: Any) -> Optional[str]:
    """Dtype name carried by an abstract value, or None when unknown."""
    if isinstance(value, DTypeVal):
        return value.name
    if isinstance(value, DottedVal):
        return _DTYPE_TAILS.get(value.tail)
    if isinstance(value, str):
        return value if value in _DTYPE_TAILS.values() else None
    return None


def promote_dtypes(*names: Optional[str]) -> Optional[str]:
    """Widest floating dtype among ``names`` (None when none known)."""
    best: Optional[str] = None
    for name in names:
        if name in FLOAT_DTYPES:
            if best is None or FLOAT_DTYPES.index(name) > FLOAT_DTYPES.index(best):
                best = name
    return best


def dims_equal(a: Dim, b: Dim) -> bool:
    """Provably equal: identical ints or the same symbol."""
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    if isinstance(a, SymDim) and isinstance(b, SymDim):
        return a == b
    return False


def dims_conflict(a: Dim, b: Dim) -> bool:
    """Provably unequal: both concrete and different."""
    return isinstance(a, int) and isinstance(b, int) and a != b


def dim_product(dims: Tuple[Dim, ...]) -> Optional[int]:
    """Product of all dims when every one is concrete, else None."""
    total = 1
    for dim in dims:
        if not isinstance(dim, int):
            return None
        total *= dim
    return total


def broadcast_shapes(
    a: Tuple[Dim, ...], b: Tuple[Dim, ...]
) -> Tuple[Optional[Tuple[Dim, ...]], bool]:
    """Numpy-style broadcast of two known-rank shapes.

    Returns ``(result_shape, conflict)``; ``conflict`` is True only for
    a provable incompatibility (two concrete dims, unequal, neither 1).
    """
    rank = max(len(a), len(b))
    padded_a = (1,) * (rank - len(a)) + a
    padded_b = (1,) * (rank - len(b)) + b
    out: list[Dim] = []
    for da, db in zip(padded_a, padded_b):
        if da == 1:
            out.append(db)
        elif db == 1:
            out.append(da)
        elif dims_equal(da, db):
            out.append(da)
        elif dims_conflict(da, db):
            return None, True
        else:
            out.append(None)
    return tuple(out), False


def format_dim(dim: Dim) -> str:
    if dim is None:
        return "?"
    return str(dim)


def format_shape(shape: Optional[Tuple[Dim, ...]]) -> str:
    if shape is None:
        return "(?)"
    if len(shape) == 1:
        return f"({format_dim(shape[0])},)"
    return "(" + ", ".join(format_dim(d) for d in shape) + ")"
