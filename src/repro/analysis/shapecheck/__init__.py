"""Shapecheck: static shape/dtype checking over backend kernel zones.

An AST-level abstract interpreter that symbolically executes module
code against abstract tensors (symbolic shapes + dtypes), resolving
``backend.einsum`` signature literals, propagating shapes through
``matmul``/``gather_rows``/``scatter_add_rows``/reshape/transpose,
deriving TT-core chain shapes from :class:`TTSpec` metadata, and
enforcing the one-float-dtype-per-zone policy.  Findings reuse the
reprolint machinery (severities, pragmas, JSON/SARIF output).

Entry points: :func:`shapecheck_paths`, :func:`shapecheck_source`, and
``python -m repro shapecheck``.
"""

from repro.analysis.shapecheck.checker import (
    SHAPE_RULES,
    shapecheck_paths,
    shapecheck_source,
)
from repro.analysis.shapecheck.domain import (
    TOP,
    Dim,
    SymDim,
    TensorVal,
    broadcast_shapes,
    dims_conflict,
    dims_equal,
)
from repro.analysis.shapecheck.einsum import EinsumIssue, check_einsum, parse_subscripts
from repro.analysis.shapecheck.interp import ShapeRuleInfo, interpret_module

__all__ = [
    "SHAPE_RULES",
    "ShapeRuleInfo",
    "shapecheck_paths",
    "shapecheck_source",
    "interpret_module",
    "check_einsum",
    "parse_subscripts",
    "EinsumIssue",
    "TensorVal",
    "SymDim",
    "Dim",
    "TOP",
    "dims_equal",
    "dims_conflict",
    "broadcast_shapes",
]
