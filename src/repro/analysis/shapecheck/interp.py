"""The shapecheck abstract interpreter.

Symbolically executes one parsed module over the abstract domain in
:mod:`repro.analysis.shapecheck.domain`: assignments propagate abstract
tensors, ``with backend.zone(...)`` blocks open *kernel zones*, and the
backend/numpy calls inside them are checked for provable shape, rank,
and dtype inconsistencies.

Soundness posture
-----------------
The interpreter is deliberately lossy in the safe direction:

* unsupported expressions evaluate to ``TOP`` (unknown) and unknown
  values never produce findings;
* ``if``/``try`` branches are interpreted independently and merged
  point-wise (disagreeing bindings widen to ``TOP``);
* loop bodies are interpreted once *after* havocking every name the
  body assigns, so checks inside a loop see a generic iteration, not
  the first one.

Checks (the SHP rule catalog)
-----------------------------
``SHP001 einsum-subscripts``  malformed signature / operand-count mismatch
``SHP002 einsum-rank``        operand rank vs. subscript term arity
``SHP003 einsum-dim``         one index letter, two incompatible extents
``SHP004 matmul-shape``       inner-dimension / batch-broadcast conflict
``SHP005 reshape-elements``   provably inconsistent element count
``SHP006 dtype-upcast``       implicit float64 upcast inside a kernel zone
``SHP007 gather-index``       constant gather/scatter index out of range
``SHP008 broadcast-shape``    elementwise/scatter operand shape conflict
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import RuleContext
from repro.analysis.shapecheck.domain import (
    TOP,
    BackendVal,
    CoreListVal,
    CoresVal,
    Dim,
    DottedVal,
    DTypeVal,
    PlanCacheVal,
    SpecVal,
    SymbolFactory,
    TensorVal,
    TupleVal,
    broadcast_shapes,
    dim_product,
    dims_conflict,
    format_shape,
    promote_dtypes,
    resolve_dtype,
)
from repro.analysis.shapecheck.einsum import check_einsum

__all__ = ["SHAPE_RULES", "ShapeRuleInfo", "interpret_module"]


@dataclass(frozen=True)
class ShapeRuleInfo:
    """Catalog entry for one shapecheck rule (mirrors the lint Rule shape)."""

    id: str
    name: str
    severity: Severity
    description: str


SHAPE_RULES: Dict[str, ShapeRuleInfo] = {
    rule.name: rule
    for rule in (
        ShapeRuleInfo(
            "SHP001",
            "einsum-subscripts",
            Severity.ERROR,
            "einsum signature literal is malformed or names a different "
            "number of terms than the call passes operands",
        ),
        ShapeRuleInfo(
            "SHP002",
            "einsum-rank",
            Severity.ERROR,
            "einsum operand rank differs from its subscript term arity",
        ),
        ShapeRuleInfo(
            "SHP003",
            "einsum-dim",
            Severity.ERROR,
            "one einsum index letter is bound to two provably different "
            "extents",
        ),
        ShapeRuleInfo(
            "SHP004",
            "matmul-shape",
            Severity.ERROR,
            "matmul operands have provably incompatible inner or batch "
            "dimensions",
        ),
        ShapeRuleInfo(
            "SHP005",
            "reshape-elements",
            Severity.ERROR,
            "reshape target has a provably different element count than "
            "the source",
        ),
        ShapeRuleInfo(
            "SHP006",
            "dtype-upcast",
            Severity.ERROR,
            "implicit float64 upcast inside a kernel zone (mixed concrete "
            "float dtypes)",
        ),
        ShapeRuleInfo(
            "SHP007",
            "gather-index",
            Severity.ERROR,
            "constant gather/scatter row index is negative or exceeds the "
            "table's row count",
        ),
        ShapeRuleInfo(
            "SHP008",
            "broadcast-shape",
            Severity.ERROR,
            "elementwise/scatter operands have provably incompatible "
            "shapes",
        ),
    )
}

# Dotted-name tails that yield the active backend / plan cache.
_BACKEND_FACTORIES = (
    "get_backend",
    "resolve_backend",
    "set_backend",
    "NumpyBackend",
    "InstrumentedBackend",
    "SanitizerBackend",
    "TorchBackend",
)

_ELEMENTWISE_NUMPY = (
    "sqrt",
    "exp",
    "log",
    "log1p",
    "abs",
    "absolute",
    "sign",
    "negative",
    "square",
    "tanh",
)

# Known kernel-zone constant names (``ZONE_EFFTT_FORWARD`` → "efftt_forward").
def _zone_constants() -> Dict[str, str]:
    from repro.backend import protocol

    return {
        name: getattr(protocol, name)
        for name in dir(protocol)
        if name.startswith("ZONE_")
    }


_ZONE_CONSTANTS = _zone_constants()

_STARRED = object()  # marker: a *args element of unknown arity


class _ZoneFrame:
    """Dtype-policy state for one open kernel zone."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.float_dtypes: Set[str] = set()
        self.reported = False


class _Interpreter:
    def __init__(self, ctx: RuleContext) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        self.syms = SymbolFactory()
        self._zones: List[_ZoneFrame] = []

    # -- findings ------------------------------------------------------
    def _emit(self, rule_name: str, node: ast.AST, message: str, hint: str) -> None:
        rule = SHAPE_RULES[rule_name]
        self.findings.append(
            Finding(
                rule=rule.name,
                rule_id=rule.id,
                severity=rule.severity,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                hint=hint,
            )
        )

    # -- zone / dtype policy -------------------------------------------
    @property
    def _zone(self) -> Optional[_ZoneFrame]:
        return self._zones[-1] if self._zones else None

    def _note_zone_dtype(self, node: ast.AST, dtype: Optional[str], op: str) -> None:
        """Track concrete float dtypes per zone; flag the first mix."""
        zone = self._zone
        if zone is None or dtype not in ("float16", "float32", "float64"):
            return
        zone.float_dtypes.add(dtype)
        if len(zone.float_dtypes) > 1 and not zone.reported:
            zone.reported = True
            dtypes = "/".join(sorted(zone.float_dtypes))
            self._emit(
                "dtype-upcast",
                node,
                f"kernel zone {zone.name!r} mixes concrete float dtypes "
                f"({dtypes}) at {op}: implicit float64 upcasts break the "
                "zone's precision contract",
                "keep one float dtype per zone; cast explicitly with "
                "astype() where widening is intended",
            )

    def _note_operands(self, node: ast.AST, op: str, *operands: Any) -> None:
        for operand in operands:
            if isinstance(operand, TensorVal):
                self._note_zone_dtype(node, operand.dtype, op)

    # ==================================================================
    # statements
    # ==================================================================
    def run(self) -> None:
        self._exec_block(self.ctx.tree.body, {})

    def _exec_block(self, stmts: Sequence[ast.stmt], env: Dict[str, Any]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: Dict[str, Any]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._exec_function(stmt, env)
        elif isinstance(stmt, ast.ClassDef):
            self._exec_block(stmt.body, {})
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            current = self._eval_target(stmt.target, env)
            value = self._eval(stmt.value, env)
            result = self._binop_values(stmt, current, value)
            self._bind(stmt.target, result, env)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._exec_branches(env, stmt.body, stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env)
            self._havoc(stmt, env)
            self._bind(stmt.target, TOP, env)
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.orelse, env)
            self._havoc(stmt, env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            self._havoc(stmt, env)
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.orelse, env)
            self._havoc(stmt, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._exec_with(stmt, env)
        elif isinstance(stmt, ast.Try):
            branches = [stmt.body + stmt.finalbody]
            for handler in stmt.handlers:
                branches.append(handler.body + stmt.finalbody)
            if stmt.orelse:
                branches.append(stmt.body + stmt.orelse + stmt.finalbody)
            self._exec_branches(env, *branches)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Import/Pass/Break/Continue/Global/Nonlocal: no abstract effect
        # (imports are pre-resolved into ctx.aliases).

    def _exec_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, env: Dict[str, Any]
    ) -> None:
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is not None:
                self._eval(default, env)
        fn_env: Dict[str, Any] = {}
        args = node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            fn_env[arg.arg] = TOP
        self._exec_block(node.body, fn_env)

    def _exec_branches(
        self, env: Dict[str, Any], *branches: Sequence[ast.stmt]
    ) -> None:
        """Interpret each branch on a copy; merge bindings point-wise."""
        snapshots: List[Dict[str, Any]] = []
        for branch in branches:
            branch_env = dict(env)
            self._exec_block(branch, branch_env)
            snapshots.append(branch_env)
        if not snapshots:
            return
        keys: Set[str] = set()
        for snap in snapshots:
            keys.update(snap)
        for key in keys:
            values = [snap.get(key, TOP) for snap in snapshots]
            first = values[0]
            if all(v == first for v in values[1:]):
                env[key] = first
            else:
                env[key] = TOP

    def _exec_with(self, stmt: ast.With | ast.AsyncWith, env: Dict[str, Any]) -> None:
        zone_name: Optional[str] = None
        for item in stmt.items:
            zone = self._zone_of(item.context_expr, env)
            if zone is not None and zone_name is None:
                zone_name = zone
                continue
            value = self._eval(item.context_expr, env)
            if item.optional_vars is not None:
                # use_backend(...) yields the installed backend.
                bound = value if isinstance(value, BackendVal) else TOP
                self._bind(item.optional_vars, bound, env)
        if zone_name is not None:
            self._zones.append(_ZoneFrame(zone_name))
            try:
                self._exec_block(stmt.body, env)
            finally:
                self._zones.pop()
        else:
            self._exec_block(stmt.body, env)

    def _zone_of(self, expr: ast.expr, env: Dict[str, Any]) -> Optional[str]:
        """Kernel-zone name when ``expr`` is a ``backend.zone(...)`` call."""
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "zone"
            and expr.args
        ):
            return None
        receiver = self._eval(expr.func.value, env)
        arg = expr.args[0]
        name: Optional[str] = None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
        else:
            arg_val = self._eval(arg, env)
            if isinstance(arg_val, str):
                name = arg_val
            elif isinstance(arg_val, DottedVal) and arg_val.tail in _ZONE_CONSTANTS:
                name = _ZONE_CONSTANTS[arg_val.tail]
        if isinstance(receiver, BackendVal):
            return name if name is not None else "<unknown>"
        # Unknown receiver: only trust the call when the argument is a
        # recognized kernel-zone constant.
        if name in _ZONE_CONSTANTS.values():
            return name
        return None

    def _havoc(self, node: ast.stmt, env: Dict[str, Any]) -> None:
        """Widen every name the statement may assign to TOP."""
        for name in self._assigned_names(node):
            env[name] = TOP

    @staticmethod
    def _assigned_names(node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                names.add(child.id)
            elif (
                isinstance(child, ast.Attribute)
                and isinstance(child.ctx, ast.Store)
                and isinstance(child.value, ast.Name)
            ):
                names.add(f"{child.value.id}.{child.attr}")
            elif isinstance(child, ast.Subscript) and isinstance(
                child.ctx, ast.Store
            ):
                if isinstance(child.value, ast.Name):
                    names.add(child.value.id)
        return names

    # -- binding -------------------------------------------------------
    def _bind(self, target: ast.expr, value: Any, env: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = (
                value.items
                if isinstance(value, TupleVal)
                and len(value.items) == len(target.elts)
                else [TOP] * len(target.elts)
            )
            for elt, item in zip(target.elts, items):
                if isinstance(elt, ast.Starred):
                    self._bind(elt.value, TOP, env)
                else:
                    self._bind(elt, item, env)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            env[f"{target.value.id}.{target.attr}"] = value
        elif isinstance(target, ast.Subscript):
            # Mutating one element invalidates a tracked tuple; tensor
            # element writes keep shape/dtype.
            if isinstance(target.value, ast.Name):
                current = env.get(target.value.id)
                if isinstance(current, TupleVal):
                    env[target.value.id] = TOP
            self._eval(target.value, env)

    def _eval_target(self, target: ast.expr, env: Dict[str, Any]) -> Any:
        """Current abstract value of an AugAssign target."""
        if isinstance(target, ast.Name):
            return env.get(target.id, TOP)
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            return env.get(f"{target.value.id}.{target.attr}", TOP)
        return TOP

    # ==================================================================
    # expressions
    # ==================================================================
    def _eval(self, node: ast.expr, env: Dict[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            alias = self.ctx.aliases.get(node.id)
            if alias is not None:
                return DottedVal(alias)
            return TOP
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, (ast.Tuple, ast.List)):
            if any(isinstance(elt, ast.Starred) for elt in node.elts):
                for elt in node.elts:
                    inner = elt.value if isinstance(elt, ast.Starred) else elt
                    self._eval(inner, env)
                return TOP
            return TupleVal(tuple(self._eval(elt, env) for elt in node.elts))
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub) and isinstance(operand, (int, float)):
                return -operand
            if isinstance(operand, TensorVal):
                return operand
            return TOP
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            return self._binop_values(node, left, right)
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            for comparator in node.comparators:
                self._eval(comparator, env)
            if isinstance(left, TensorVal):
                return TensorVal(left.shape, "bool")
            return TOP
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value, env)
            return TOP
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            body = self._eval(node.body, env)
            orelse = self._eval(node.orelse, env)
            return body if body == orelse else TOP
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._bind(node.target, value, env)
            return value
        if isinstance(node, ast.Starred):
            self._eval(node.value, env)
            return TOP
        if isinstance(node, ast.JoinedStr):
            return TOP
        # Comprehensions, lambdas, dict/set literals, await, yield:
        # opaque — their inner scopes are not interpreted.
        return TOP

    # -- attribute / subscript -----------------------------------------
    def _eval_attribute(self, node: ast.Attribute, env: Dict[str, Any]) -> Any:
        if isinstance(node.value, ast.Name):
            dotted = env.get(f"{node.value.id}.{node.attr}")
            if dotted is not None:
                return dotted
        base = self._eval(node.value, env)
        return self._attribute_value(node, base)

    def _attribute_value(self, node: ast.Attribute, base: Any) -> Any:
        """Attribute lookup on an already-evaluated base (subclass seam)."""
        if isinstance(base, DottedVal):
            return DottedVal(f"{base.name}.{node.attr}")
        if isinstance(base, TensorVal):
            if node.attr == "shape":
                if base.shape is None:
                    return TOP
                return TupleVal(tuple(base.shape))
            if node.attr == "dtype":
                return DTypeVal(base.dtype) if base.dtype else TOP
            if node.attr == "T":
                if base.shape is None:
                    return TensorVal(None, base.dtype)
                return TensorVal(tuple(reversed(base.shape)), base.dtype)
            if node.attr == "ndim":
                return base.rank if base.rank is not None else TOP
            if node.attr == "size":
                if base.shape is not None:
                    total = dim_product(base.shape)
                    if total is not None:
                        return total
                return TOP
            return TOP
        if isinstance(base, SpecVal):
            if node.attr == "row_shape":
                return TupleVal(base.row_shape)
            if node.attr == "col_shape":
                return TupleVal(base.col_shape)
            if node.attr == "ranks":
                return TupleVal(base.ranks)
            if node.attr == "num_cores":
                return base.num_cores
            if node.attr == "padded_rows":
                return base.padded_rows
            if node.attr == "embedding_dim":
                return base.embedding_dim
            return TOP
        if isinstance(base, CoresVal):
            if node.attr == "cores":
                return CoreListVal(base.spec, base.dtype)
            if node.attr == "spec":
                return base.spec if base.spec is not None else TOP
            if node.attr == "dtype":
                return DTypeVal(base.dtype) if base.dtype else TOP
            return TOP
        return TOP

    def _eval_subscript(self, node: ast.Subscript, env: Dict[str, Any]) -> Any:
        base = self._eval(node.value, env)
        index_node = node.slice
        if isinstance(base, TupleVal):
            if isinstance(index_node, ast.Slice):
                lower = self._eval(index_node.lower, env) if index_node.lower else None
                upper = self._eval(index_node.upper, env) if index_node.upper else None
                if (lower is None or isinstance(lower, int)) and (
                    upper is None or isinstance(upper, int)
                ):
                    return TupleVal(base.items[lower:upper])
                return TOP
            index = self._eval(index_node, env)
            if isinstance(index, int):
                try:
                    return base.items[index]
                except IndexError:
                    return TOP
            return TOP
        if isinstance(base, CoreListVal):
            index = self._eval(index_node, env)
            if isinstance(index, int) and base.spec is not None:
                shape = base.spec.core_shape(index)
                if shape is not None:
                    return TensorVal(shape, base.dtype)
            return TensorVal(None, base.dtype)
        if isinstance(base, TensorVal):
            if isinstance(index_node, ast.Slice):
                self._eval_slice_parts(index_node, env)
                if base.shape is not None:
                    return TensorVal((None,) + base.shape[1:], base.dtype)
                return TensorVal(None, base.dtype)
            index = self._eval(index_node, env)
            if isinstance(index, int) and base.shape is not None and base.shape:
                return TensorVal(base.shape[1:], base.dtype)
            return TensorVal(None, base.dtype)
        if isinstance(index_node, ast.Slice):
            self._eval_slice_parts(index_node, env)
        else:
            self._eval(index_node, env)
        return TOP

    def _eval_slice_parts(self, node: ast.Slice, env: Dict[str, Any]) -> None:
        for part in (node.lower, node.upper, node.step):
            if part is not None:
                self._eval(part, env)

    # -- binary operators ----------------------------------------------
    def _binop_values(self, node: ast.AST, left: Any, right: Any) -> Any:
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            try:
                if isinstance(node, (ast.BinOp, ast.AugAssign)):
                    op = node.op
                    if isinstance(op, ast.Add):
                        return left + right
                    if isinstance(op, ast.Sub):
                        return left - right
                    if isinstance(op, ast.Mult):
                        return left * right
                    if isinstance(op, ast.FloorDiv):
                        return left // right
                    if isinstance(op, ast.Div):
                        return left / right
                    if isinstance(op, ast.Mod):
                        return left % right
                    if isinstance(op, ast.Pow):
                        return left**right
            except (ZeroDivisionError, OverflowError, ValueError):
                return TOP
            return TOP
        arithmetic = isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Pow, ast.Mod)
        )
        if arithmetic and (
            isinstance(left, TensorVal) or isinstance(right, TensorVal)
        ):
            return self._elementwise(node, left, right, op_name="elementwise op")
        if isinstance(left, TupleVal) and isinstance(right, TupleVal) and isinstance(
            node, ast.BinOp
        ) and isinstance(node.op, ast.Add):
            return TupleVal(left.items + right.items)
        return TOP

    def _elementwise(
        self, node: ast.AST, left: Any, right: Any, op_name: str
    ) -> TensorVal:
        tensors = [v for v in (left, right) if isinstance(v, TensorVal)]
        self._note_operands(node, op_name, *tensors)
        dtype = promote_dtypes(*(t.dtype for t in tensors))
        if len(tensors) == 2:
            a, b = tensors
            if a.shape is not None and b.shape is not None:
                result, conflict = broadcast_shapes(a.shape, b.shape)
                if conflict:
                    self._emit(
                        "broadcast-shape",
                        node,
                        f"{op_name} operands with shapes "
                        f"{format_shape(a.shape)} and {format_shape(b.shape)} "
                        "cannot broadcast",
                        "align the operand shapes (or reshape/expand "
                        "explicitly)",
                    )
                    return TensorVal(None, dtype)
                return TensorVal(result, dtype)
            return TensorVal(None, dtype)
        if not tensors:
            return TensorVal(None, dtype)
        # Tensor-scalar: shape passes through.
        return TensorVal(tensors[0].shape, dtype)

    # ==================================================================
    # calls
    # ==================================================================
    def _eval_call(self, node: ast.Call, env: Dict[str, Any]) -> Any:
        args: List[Any] = []
        starred = False
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self._eval(arg.value, env)
                args.append(_STARRED)
                starred = True
            else:
                args.append(self._eval(arg, env))
        kwargs: Dict[str, Any] = {}
        for kw in node.keywords:
            value = self._eval(kw.value, env)
            if kw.arg is not None:
                kwargs[kw.arg] = value

        func = node.func
        if isinstance(func, ast.Attribute):
            base = self._eval(func.value, env)
            method = func.attr
            if isinstance(base, BackendVal):
                return self._backend_call(node, method, args, kwargs, starred)
            if isinstance(base, PlanCacheVal):
                if method == "einsum_plan" and not starred and args:
                    self._einsum_call(node, args[0], args[1:])
                return TOP
            if isinstance(base, TensorVal):
                return self._tensor_method(node, base, method, args, kwargs)
            if isinstance(base, SpecVal):
                if method == "core_shape" and args and isinstance(args[0], int):
                    shape = base.core_shape(args[0])
                    return TupleVal(shape) if shape is not None else TOP
                return TOP
            if isinstance(base, DottedVal):
                return self._dotted_call(
                    node, f"{base.name}.{method}", args, kwargs, starred
                )
            if isinstance(base, TupleVal) and isinstance(func.value, ast.Name):
                # append/extend/etc. mutate the sequence: widen it.
                env[func.value.id] = TOP
                return TOP
            if method == "einsum" and not starred and args:
                # Unknown receiver, literal signature: still resolvable.
                return self._einsum_call(node, args[0], args[1:])
            return TOP
        fval = self._eval(func, env)
        if isinstance(fval, DottedVal):
            return self._dotted_call(node, fval.name, args, kwargs, starred)
        return TOP

    def _dotted_call(
        self,
        node: ast.Call,
        name: str,
        args: List[Any],
        kwargs: Dict[str, Any],
        starred: bool,
    ) -> Any:
        tail = name.rsplit(".", 1)[-1]
        if tail in _BACKEND_FACTORIES or tail == "use_backend":
            return BackendVal()
        if tail == "get_plan_cache":
            return PlanCacheVal()
        if name.startswith("numpy.") or name == "numpy":
            return self._numpy_call(node, name, args, kwargs, starred)
        if tail == "prod" and args and isinstance(args[0], TupleVal):
            total = dim_product(tuple(
                item if isinstance(item, int) else None for item in args[0].items
            ))
            return total if total is not None else TOP
        if name.endswith("TTSpec.create") or tail == "TTSpec":
            return self._make_spec(name, args, kwargs)
        if name.endswith("TTCores.random_init") or tail == "TTCores":
            spec = args[0] if args and isinstance(args[0], SpecVal) else None
            dtype = resolve_dtype(kwargs.get("dtype")) or "float64"
            return CoresVal(spec, dtype)
        return TOP

    def _make_spec(
        self, name: str, args: List[Any], kwargs: Dict[str, Any]
    ) -> Any:
        def int_tuple(value: Any) -> Optional[Tuple[int, ...]]:
            if isinstance(value, TupleVal) and all(
                isinstance(item, int) for item in value.items
            ):
                return tuple(value.items)
            return None

        ordered = [
            kwargs.get(key, args[i] if i < len(args) else None)
            for i, key in enumerate(("row_shape", "col_shape", "rank" if name.endswith("create") else "ranks"))
        ]
        rows, cols = int_tuple(ordered[0]), int_tuple(ordered[1])
        if rows is None or cols is None or len(rows) != len(cols):
            return TOP
        if name.endswith("TTSpec.create"):
            rank = ordered[2]
            rank_arg: Any = rank if isinstance(rank, int) else int_tuple(rank)
            if rank_arg is None:
                return TOP
            try:
                from repro.embeddings.tt_core import clamp_ranks

                ranks = tuple(clamp_ranks(rows, cols, rank_arg))
            except Exception:
                return TOP
            return SpecVal(rows, cols, ranks)
        boundary = int_tuple(ordered[2])
        if boundary is None or len(boundary) != len(rows) + 1:
            return TOP
        return SpecVal(rows, cols, boundary)

    # -- numpy calls ---------------------------------------------------
    def _numpy_call(
        self,
        node: ast.Call,
        name: str,
        args: List[Any],
        kwargs: Dict[str, Any],
        starred: bool,
    ) -> Any:
        tail = name.rsplit(".", 1)[-1]
        if tail in ("zeros", "ones", "empty"):
            shape = self._shape_from_val(args[0]) if args else None
            dtype = resolve_dtype(kwargs.get("dtype", args[1] if len(args) > 1 else None))
            self._note_zone_dtype(node, dtype, f"np.{tail}")
            return TensorVal(shape, dtype)
        if tail == "full":
            shape = self._shape_from_val(args[0]) if args else None
            dtype = resolve_dtype(kwargs.get("dtype", args[2] if len(args) > 2 else None))
            self._note_zone_dtype(node, dtype, "np.full")
            return TensorVal(shape, dtype)
        if tail in ("zeros_like", "ones_like", "empty_like", "full_like"):
            ref = args[0] if args else None
            dtype = resolve_dtype(kwargs.get("dtype"))
            if isinstance(ref, TensorVal):
                return TensorVal(ref.shape, dtype or ref.dtype)
            return TensorVal(None, dtype)
        if tail in ("asarray", "ascontiguousarray", "array"):
            source = args[0] if args else None
            dtype = resolve_dtype(kwargs.get("dtype", args[1] if len(args) > 1 else None))
            if isinstance(source, TensorVal):
                return TensorVal(source.shape, dtype or source.dtype, source.int_values)
            if isinstance(source, TupleVal):
                return self._tensor_from_literal(source, dtype)
            return TensorVal(None, dtype)
        if tail == "arange":
            if args and isinstance(args[0], int) and len(args) == 1:
                return TensorVal((args[0],), resolve_dtype(kwargs.get("dtype")) or "int64")
            return TensorVal(None, resolve_dtype(kwargs.get("dtype")) or "int64")
        if tail == "dtype" and args:
            resolved = resolve_dtype(args[0])
            return DTypeVal(resolved) if resolved else TOP
        if tail in _ELEMENTWISE_NUMPY:
            source = args[0] if args else None
            if isinstance(source, TensorVal):
                self._note_operands(node, f"np.{tail}", source)
                return TensorVal(source.shape, source.dtype)
            return TOP
        if tail in ("maximum", "minimum"):
            if len(args) == 2:
                return self._elementwise(node, args[0], args[1], f"np.{tail}")
            return TOP
        if tail == "where":
            if len(args) == 3:
                return self._where(node, args[0], args[1], args[2])
            return TOP
        if tail == "matmul" or tail == "dot":
            if len(args) == 2:
                return self._check_matmul(node, args[0], args[1], f"np.{tail}")
            return TOP
        if tail == "einsum":
            if starred or not args:
                return TOP
            return self._einsum_call(node, args[0], args[1:])
        if tail == "prod" and args and isinstance(args[0], TupleVal):
            total = dim_product(tuple(
                item if isinstance(item, int) else None for item in args[0].items
            ))
            return total if total is not None else TOP
        return TOP

    def _tensor_from_literal(
        self, literal: TupleVal, dtype: Optional[str]
    ) -> TensorVal:
        """Shape (and small-int values) of a nested list literal."""
        items = literal.items
        if all(isinstance(item, int) and not isinstance(item, bool) for item in items):
            return TensorVal(
                (len(items),), dtype or "int64", tuple(items)
            )
        if all(isinstance(item, (int, float)) for item in items):
            return TensorVal((len(items),), dtype or "float64")
        if items and all(isinstance(item, TupleVal) for item in items):
            inner = self._tensor_from_literal(items[0], dtype)
            widths = {len(item.items) for item in items}
            if len(widths) == 1 and inner.shape is not None:
                return TensorVal((len(items),) + inner.shape, inner.dtype)
        return TensorVal(None, dtype)

    # -- backend calls -------------------------------------------------
    def _backend_call(
        self,
        node: ast.Call,
        method: str,
        args: List[Any],
        kwargs: Dict[str, Any],
        starred: bool,
    ) -> Any:
        if method in ("zeros", "ones", "empty"):
            shape = self._shape_from_val(args[0]) if args else None
            dtype = resolve_dtype(
                kwargs.get("dtype", args[1] if len(args) > 1 else None)
            )
            self._note_zone_dtype(node, dtype, f"backend.{method}")
            return TensorVal(shape, dtype)
        if method == "full":
            shape = self._shape_from_val(args[0]) if args else None
            dtype = resolve_dtype(
                kwargs.get("dtype", args[2] if len(args) > 2 else None)
            )
            self._note_zone_dtype(node, dtype, "backend.full")
            return TensorVal(shape, dtype)
        if method == "asarray":
            source = args[0] if args else None
            dtype = resolve_dtype(
                kwargs.get("dtype", args[1] if len(args) > 1 else None)
            )
            if isinstance(source, TensorVal):
                return TensorVal(source.shape, dtype or source.dtype, source.int_values)
            if isinstance(source, TupleVal):
                return self._tensor_from_literal(source, dtype)
            return TensorVal(None, dtype)
        if method == "matmul" and len(args) == 2:
            return self._check_matmul(node, args[0], args[1], "backend.matmul")
        if method == "einsum":
            if starred or not args:
                return TOP
            return self._einsum_call(node, args[0], args[1:])
        if method == "gather_rows" and len(args) == 2:
            return self._check_gather(node, args[0], args[1])
        if method == "scatter_add_rows" and len(args) >= 3:
            self._check_scatter(node, args[0], args[1], args[2])
            return None
        if method == "exp" and args:
            source = args[0]
            if isinstance(source, TensorVal):
                self._note_operands(node, "backend.exp", source)
                return TensorVal(source.shape, source.dtype)
            return TOP
        if method in ("maximum", "minimum") and len(args) == 2:
            return self._elementwise(node, args[0], args[1], f"backend.{method}")
        if method == "where" and len(args) == 3:
            return self._where(node, args[0], args[1], args[2])
        if method == "axpy" and len(args) >= 2:
            self._elementwise(node, args[0], args[1], "backend.axpy")
            return None
        return TOP

    def _where(self, node: ast.AST, cond: Any, a: Any, b: Any) -> TensorVal:
        result = self._elementwise(node, a, b, "where")
        if isinstance(cond, TensorVal) and cond.shape is not None and result.shape is not None:
            merged, conflict = broadcast_shapes(cond.shape, result.shape)
            if conflict:
                self._emit(
                    "broadcast-shape",
                    node,
                    f"where() condition shape {format_shape(cond.shape)} "
                    f"cannot broadcast with value shape "
                    f"{format_shape(result.shape)}",
                    "align the mask with the value operands",
                )
                return TensorVal(None, result.dtype)
            return TensorVal(merged, result.dtype)
        return TensorVal(None, result.dtype)

    # -- tensor methods ------------------------------------------------
    def _tensor_method(
        self,
        node: ast.Call,
        base: TensorVal,
        method: str,
        args: List[Any],
        kwargs: Dict[str, Any],
    ) -> Any:
        if method == "reshape":
            return self._reshape(node, base, args)
        if method == "transpose":
            if not args:
                if base.shape is None:
                    return base
                return TensorVal(tuple(reversed(base.shape)), base.dtype)
            perm = args
            if len(args) == 1 and isinstance(args[0], TupleVal):
                perm = list(args[0].items)
            if (
                base.shape is not None
                and all(isinstance(p, int) for p in perm)
                and sorted(perm) == list(range(len(base.shape)))
            ):
                return TensorVal(
                    tuple(base.shape[p] for p in perm), base.dtype
                )
            return TensorVal(None, base.dtype)
        if method == "astype":
            dtype = resolve_dtype(args[0] if args else kwargs.get("dtype"))
            return TensorVal(base.shape, dtype, base.int_values)
        if method == "copy":
            return base
        if method in ("sum", "mean", "max", "min", "prod", "std", "var"):
            axis = kwargs.get("axis", args[0] if args else None)
            if axis is None:
                return TensorVal((), base.dtype)
            if (
                isinstance(axis, int)
                and base.shape is not None
                and -len(base.shape) <= axis < len(base.shape)
            ):
                reduced = list(base.shape)
                reduced.pop(axis)
                return TensorVal(tuple(reduced), base.dtype)
            return TensorVal(None, base.dtype)
        return TOP

    def _reshape(self, node: ast.Call, base: TensorVal, args: List[Any]) -> TensorVal:
        dims_in = args
        if len(args) == 1 and isinstance(args[0], TupleVal):
            dims_in = list(args[0].items)
        new_dims: List[Dim] = []
        minus_one_at: Optional[int] = None
        for i, value in enumerate(dims_in):
            if isinstance(value, int):
                if value == -1:
                    if minus_one_at is not None:
                        return TensorVal(None, base.dtype)
                    minus_one_at = i
                    new_dims.append(None)
                else:
                    new_dims.append(value)
            elif hasattr(value, "name") and value.__class__.__name__ == "SymDim":
                new_dims.append(value)
            else:
                new_dims.append(None)
        old_total = dim_product(base.shape) if base.shape is not None else None
        known = [d for d in new_dims if isinstance(d, int)]
        if old_total is not None and len(known) == len(new_dims):
            new_total = 1
            for d in known:
                new_total *= d
            if minus_one_at is None:
                if new_total != old_total:
                    self._emit(
                        "reshape-elements",
                        node,
                        f"reshape from {format_shape(base.shape)} "
                        f"({old_total} elements) to "
                        f"{format_shape(tuple(new_dims))} ({new_total} "
                        "elements)",
                        "the reshape target must preserve the element count",
                    )
                    return TensorVal(None, base.dtype)
        if (
            minus_one_at is not None
            and old_total is not None
            and all(isinstance(d, int) for i, d in enumerate(new_dims) if i != minus_one_at)
        ):
            rest = 1
            for i, d in enumerate(new_dims):
                if i != minus_one_at and isinstance(d, int):
                    rest *= d
            if rest > 0 and old_total % rest != 0:
                self._emit(
                    "reshape-elements",
                    node,
                    f"reshape from {format_shape(base.shape)} "
                    f"({old_total} elements) cannot infer -1: {old_total} "
                    f"is not divisible by {rest}",
                    "the explicit reshape dims must divide the element count",
                )
                return TensorVal(None, base.dtype)
            if rest > 0:
                new_dims[minus_one_at] = old_total // rest
        return TensorVal(tuple(new_dims), base.dtype, base.int_values)

    # -- kernel op checks ----------------------------------------------
    def _einsum_call(
        self, node: ast.Call, subscripts: Any, operands: List[Any]
    ) -> Any:
        if not isinstance(subscripts, str) or _STARRED in operands:
            return TOP
        self._note_operands(node, "einsum", *operands)
        result, issues = check_einsum(subscripts, operands)
        for issue in issues:
            self._emit(
                issue.code,
                node,
                issue.message,
                "check the subscript string against the operand shapes "
                "(TT chain terms are (L, R_in, n_k, R_out))",
            )
        return result

    def _check_matmul(self, node: ast.AST, a: Any, b: Any, op: str) -> TensorVal:
        self._note_operands(node, op, a, b)
        if not (isinstance(a, TensorVal) and isinstance(b, TensorVal)):
            tensors = [v for v in (a, b) if isinstance(v, TensorVal)]
            return TensorVal(None, promote_dtypes(*(t.dtype for t in tensors)))
        dtype = promote_dtypes(a.dtype, b.dtype)
        if a.shape is None or b.shape is None:
            return TensorVal(None, dtype)
        if len(a.shape) == 0 or len(b.shape) == 0:
            self._emit(
                "matmul-shape",
                node,
                f"{op} on a 0-d operand (shapes {format_shape(a.shape)}, "
                f"{format_shape(b.shape)})",
                "matmul needs at least 1-d operands",
            )
            return TensorVal(None, dtype)
        inner_a = a.shape[-1]
        inner_b = b.shape[-2] if len(b.shape) >= 2 else b.shape[-1]
        if dims_conflict(inner_a, inner_b):
            self._emit(
                "matmul-shape",
                node,
                f"{op} inner dimensions disagree: "
                f"{format_shape(a.shape)} @ {format_shape(b.shape)} "
                f"contracts {inner_a} against {inner_b}",
                "the last dim of the left operand must equal the "
                "second-to-last dim of the right operand",
            )
            return TensorVal(None, dtype)
        if len(a.shape) >= 2 and len(b.shape) >= 2:
            batch_a, batch_b = a.shape[:-2], b.shape[:-2]
            batch, conflict = broadcast_shapes(batch_a, batch_b)
            if conflict:
                self._emit(
                    "matmul-shape",
                    node,
                    f"{op} batch dimensions cannot broadcast: "
                    f"{format_shape(a.shape)} @ {format_shape(b.shape)}",
                    "stack the batched operands consistently",
                )
                return TensorVal(None, dtype)
            assert batch is not None
            return TensorVal(batch + (a.shape[-2], b.shape[-1]), dtype)
        # Rank-1 semantics collapse an axis; keep only the dtype.
        return TensorVal(None, dtype)

    def _check_gather(self, node: ast.AST, table: Any, indices: Any) -> Any:
        index_values: Optional[Tuple[int, ...]] = None
        index_shape: Optional[Tuple[Dim, ...]] = None
        if isinstance(indices, TensorVal):
            index_values = indices.int_values
            index_shape = indices.shape
        elif isinstance(indices, TupleVal) and all(
            isinstance(item, int) for item in indices.items
        ):
            index_values = tuple(indices.items)
            index_shape = (len(indices.items),)
        table_val = table if isinstance(table, TensorVal) else TensorVal()
        rows = (
            table_val.shape[0]
            if table_val.shape is not None and table_val.shape
            else None
        )
        if index_values is not None:
            for value in index_values:
                if value < 0:
                    self._emit(
                        "gather-index",
                        node,
                        f"gather_rows with constant negative index {value} "
                        "(row tables are never addressed from the end)",
                        "use non-negative row ids; negative indices wrap "
                        "silently and read the wrong row",
                    )
                    break
                if isinstance(rows, int) and value >= rows:
                    self._emit(
                        "gather-index",
                        node,
                        f"gather_rows with constant index {value} out of "
                        f"range for a table with {rows} rows",
                        "indices must satisfy 0 <= idx < table.shape[0]",
                    )
                    break
        if table_val.shape is not None and index_shape is not None:
            return TensorVal(
                tuple(index_shape) + tuple(table_val.shape[1:]), table_val.dtype
            )
        return TensorVal(None, table_val.dtype)

    def _check_scatter(
        self, node: ast.AST, target: Any, indices: Any, values: Any
    ) -> None:
        self._note_operands(node, "backend.scatter_add_rows", target, values)
        index_values: Optional[Tuple[int, ...]] = None
        index_len: Optional[int] = None
        if isinstance(indices, TensorVal):
            index_values = indices.int_values
            if indices.shape is not None and len(indices.shape) == 1 and isinstance(
                indices.shape[0], int
            ):
                index_len = indices.shape[0]
        elif isinstance(indices, TupleVal) and all(
            isinstance(item, int) for item in indices.items
        ):
            index_values = tuple(indices.items)
            index_len = len(indices.items)
        target_val = target if isinstance(target, TensorVal) else TensorVal()
        values_val = values if isinstance(values, TensorVal) else TensorVal()
        rows = (
            target_val.shape[0]
            if target_val.shape is not None and target_val.shape
            else None
        )
        if index_values is not None:
            for value in index_values:
                if value < 0 or (isinstance(rows, int) and value >= rows):
                    self._emit(
                        "gather-index",
                        node,
                        f"scatter_add_rows with constant index {value} out "
                        "of range for the target table"
                        + (f" ({rows} rows)" if isinstance(rows, int) else ""),
                        "indices must satisfy 0 <= idx < target.shape[0]",
                    )
                    break
        if (
            target_val.shape is not None
            and values_val.shape is not None
            and len(values_val.shape) >= 1
        ):
            if index_len is not None and dims_conflict(
                values_val.shape[0], index_len
            ):
                self._emit(
                    "broadcast-shape",
                    node,
                    f"scatter_add_rows values have leading dim "
                    f"{values_val.shape[0]} but {index_len} indices were "
                    "given",
                    "values must supply one row per index",
                )
                return
            trailing_t = target_val.shape[1:]
            trailing_v = values_val.shape[1:]
            if len(trailing_t) == len(trailing_v):
                for dt, dv in zip(trailing_t, trailing_v):
                    if dims_conflict(dt, dv):
                        self._emit(
                            "broadcast-shape",
                            node,
                            "scatter_add_rows values rows have shape "
                            f"{format_shape(trailing_v)} but target rows "
                            f"have shape {format_shape(trailing_t)}",
                            "the per-row value shape must match the "
                            "target's row shape",
                        )
                        break

    # -- helpers -------------------------------------------------------
    def _shape_from_val(self, value: Any) -> Optional[Tuple[Dim, ...]]:
        if isinstance(value, int):
            return (value,)
        if isinstance(value, TupleVal):
            out: List[Dim] = []
            for item in value.items:
                if isinstance(item, int):
                    out.append(item)
                elif item.__class__.__name__ == "SymDim":
                    out.append(item)
                else:
                    out.append(None)
            return tuple(out)
        return None


def interpret_module(ctx: RuleContext) -> List[Finding]:
    """Run the abstract interpreter over one parsed module."""
    interp = _Interpreter(ctx)
    interp.run()
    interp.findings.sort(key=lambda f: f.sort_key)
    return interp.findings
