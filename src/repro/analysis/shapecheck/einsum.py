"""Einsum signature resolution for shapecheck.

Parses literal ``einsum`` subscript strings (``"lar,lrbs->labs"``) and
checks them against abstract operand shapes: term/operand arity, term
length vs. operand rank, and the consistency of every subscript
letter's bound extent across operands.  Conflicts are reported only
when *provable* (two concrete, unequal extents, neither of which is 1 —
numpy einsum broadcasts size-1 dims on repeated labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.shapecheck.domain import (
    Dim,
    TensorVal,
    dims_conflict,
    format_shape,
    promote_dtypes,
)

__all__ = ["EinsumIssue", "check_einsum", "parse_subscripts"]

ELLIPSIS = "..."


@dataclass(frozen=True)
class EinsumIssue:
    """One problem found while resolving an einsum signature."""

    code: str  # "einsum-subscripts" | "einsum-rank" | "einsum-dim"
    message: str


@dataclass
class _Parsed:
    terms: List[str]  # per-operand letters, ellipsis stripped
    term_has_ellipsis: List[bool]
    output: Optional[str]  # None = implicit
    output_has_ellipsis: bool = False


def parse_subscripts(subscripts: str) -> Tuple[Optional[_Parsed], List[EinsumIssue]]:
    """Parse a subscripts string; issues are malformed-signature findings."""
    issues: List[EinsumIssue] = []
    spec = subscripts.replace(" ", "")
    if spec.count("->") > 1:
        return None, [
            EinsumIssue(
                "einsum-subscripts",
                f'"{subscripts}" has more than one "->"',
            )
        ]
    if "->" in spec:
        lhs, rhs = spec.split("->")
        output: Optional[str] = rhs
    else:
        lhs, output = spec, None

    def split_term(term: str, where: str) -> Tuple[Optional[str], bool]:
        has_ellipsis = ELLIPSIS in term
        letters = term.replace(ELLIPSIS, "", 1)
        if ELLIPSIS in letters:
            issues.append(
                EinsumIssue(
                    "einsum-subscripts",
                    f'{where} term "{term}" repeats "..."',
                )
            )
            return None, has_ellipsis
        bad = [ch for ch in letters if not ch.isalpha()]
        if bad:
            issues.append(
                EinsumIssue(
                    "einsum-subscripts",
                    f'invalid subscript character {bad[0]!r} in "{subscripts}"',
                )
            )
            return None, has_ellipsis
        return letters, has_ellipsis

    terms: List[str] = []
    term_has_ellipsis: List[bool] = []
    for term in lhs.split(","):
        letters, has_ell = split_term(term, "input")
        if letters is None:
            return None, issues
        terms.append(letters)
        term_has_ellipsis.append(has_ell)

    out_letters: Optional[str] = None
    out_has_ellipsis = False
    if output is not None:
        out_letters, out_has_ellipsis = split_term(output, "output")
        if out_letters is None:
            return None, issues
        seen = set()
        for ch in out_letters:
            if ch in seen:
                issues.append(
                    EinsumIssue(
                        "einsum-subscripts",
                        f'output subscript "{output}" repeats index '
                        f"{ch!r}",
                    )
                )
                return None, issues
            seen.add(ch)
        input_letters = set("".join(terms))
        for ch in out_letters:
            if ch not in input_letters:
                issues.append(
                    EinsumIssue(
                        "einsum-subscripts",
                        f"output index {ch!r} does not appear in any "
                        f'input term of "{subscripts}"',
                    )
                )
                return None, issues

    return (
        _Parsed(
            terms=terms,
            term_has_ellipsis=term_has_ellipsis,
            output=out_letters,
            output_has_ellipsis=out_has_ellipsis,
        ),
        issues,
    )


def check_einsum(
    subscripts: str, operands: Sequence[object]
) -> Tuple[TensorVal, List[EinsumIssue]]:
    """Resolve one einsum call against abstract operands.

    Returns the abstract result tensor plus any provable issues.  The
    result shape is derived from the output term and the letter→extent
    bindings collected from known operand shapes.
    """
    parsed, issues = parse_subscripts(subscripts)
    if parsed is None:
        return TensorVal(), issues

    tensors = [op if isinstance(op, TensorVal) else TensorVal() for op in operands]
    if len(parsed.terms) != len(operands):
        issues.append(
            EinsumIssue(
                "einsum-subscripts",
                f'"{subscripts}" names {len(parsed.terms)} operand '
                f"term(s) but the call passes {len(operands)}",
            )
        )
        return TensorVal(), issues

    bindings: Dict[str, Dim] = {}
    for pos, (term, has_ellipsis, tensor) in enumerate(
        zip(parsed.terms, parsed.term_has_ellipsis, tensors)
    ):
        shape = tensor.shape
        if shape is None:
            continue
        rank = len(shape)
        if not has_ellipsis and rank != len(term):
            issues.append(
                EinsumIssue(
                    "einsum-rank",
                    f'operand {pos} of "{subscripts}" has rank {rank} '
                    f'but its term "{term}" expects rank {len(term)} '
                    f"(shape {format_shape(shape)})",
                )
            )
            continue
        if has_ellipsis and rank < len(term):
            issues.append(
                EinsumIssue(
                    "einsum-rank",
                    f'operand {pos} of "{subscripts}" has rank {rank}, '
                    f'fewer than the {len(term)} named indices in "{term}..."',
                )
            )
            continue
        # Named letters bind right-aligned when an ellipsis soaks up
        # leading axes.
        dims = shape[rank - len(term):] if has_ellipsis else shape
        for ch, dim in zip(term, dims):
            bound = bindings.get(ch)
            if isinstance(dim, int) and dim != 1:
                # Concrete non-broadcast extents pin the binding; a
                # second concrete extent must agree (size-1 broadcasts).
                if isinstance(bound, int) and bound not in (1, dim):
                    issues.append(
                        EinsumIssue(
                            "einsum-dim",
                            f'index {ch!r} of "{subscripts}" is bound to '
                            f"extent {bound} but operand {pos} (shape "
                            f"{format_shape(shape)}) provides {dim}",
                        )
                    )
                else:
                    bindings[ch] = dim
            elif ch not in bindings and dim is not None:
                bindings[ch] = dim

    out_dtype = promote_dtypes(*(t.dtype for t in tensors))
    if parsed.output is None or parsed.output_has_ellipsis:
        return TensorVal(dtype=out_dtype), issues
    out_shape = tuple(bindings.get(ch) for ch in parsed.output)
    return TensorVal(shape=out_shape, dtype=out_dtype), issues
