"""The ``shapecheck`` runner.

Mirrors the :mod:`repro.analysis.linter` surface so diagnostics are
uniform across both tools: the same :class:`Finding`/:class:`LintResult`
records, the same ``# reprolint: disable=`` pragma suppression, the same
file discovery.  The actual checking is the abstract interpreter in
:mod:`repro.analysis.shapecheck.interp`.

Usage surfaces:

* CLI — ``python -m repro shapecheck [paths...]`` (exit 1 on errors);
* pytest — ``tests/analysis/test_shapecheck_self.py`` checks
  ``src/repro`` ships clean while the seeded-mutation corpus is caught;
* library — :func:`shapecheck_paths` / :func:`shapecheck_source`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import (
    LintResult,
    iter_python_files,
    is_suppressed,
    package_rel,
    parse_pragmas,
)
from repro.analysis.rules import build_context
from repro.analysis.shapecheck.interp import (
    SHAPE_RULES,
    ShapeRuleInfo,
    interpret_module,
)

__all__ = ["shapecheck_paths", "shapecheck_source", "SHAPE_RULES"]


def _select_rules(select: Optional[Sequence[str]]) -> List[ShapeRuleInfo]:
    if select is None:
        return list(SHAPE_RULES.values())
    rules: List[ShapeRuleInfo] = []
    for name in select:
        matches = [
            rule
            for rule in SHAPE_RULES.values()
            if name in (rule.name, rule.id)
        ]
        if not matches:
            raise KeyError(
                f"unknown shapecheck rule {name!r}; known: "
                f"{sorted(SHAPE_RULES)}"
            )
        rules.extend(matches)
    return rules


def shapecheck_source(
    source: str,
    path: str = "<string>",
    rel: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Shapecheck one in-memory module (unit-test entry point)."""
    result = LintResult(files_scanned=1)
    resolved_rel = rel if rel is not None else package_rel(Path(path))
    ctx = build_context(Path(path), resolved_rel, source)
    per_line, file_wide = parse_pragmas(source)
    selected = {rule.name for rule in _select_rules(select)}
    for finding in interpret_module(ctx):
        if finding.rule not in selected:
            continue
        line_names = per_line.get(finding.line, set())
        if is_suppressed(finding, line_names | file_wide):
            result.suppressed += 1
            continue
        result.findings.append(finding)
    result.findings.sort(key=lambda f: f.sort_key)
    return result


def shapecheck_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Shapecheck every ``.py`` file under ``paths``; aggregate."""
    total = LintResult()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            single = shapecheck_source(
                source,
                path=str(file_path),
                rel=package_rel(file_path),
                select=select,
            )
        except SyntaxError as exc:
            total.findings.append(
                Finding(
                    rule="syntax-error",
                    rule_id="SHP000",
                    severity=Severity.ERROR,
                    path=str(file_path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            total.files_scanned += 1
            continue
        total.files_scanned += single.files_scanned
        total.suppressed += single.suppressed
        total.findings.extend(single.findings)
    total.findings.sort(key=lambda f: f.sort_key)
    return total
