"""Pipeline read/write trace schema and RAW/WAR hazard analysis.

The pipelined PS trainer (paper §V, Figure 9) gathers host embedding
rows for batch ``i + Q`` *before* the gradients of batches
``i..i+Q-1`` reach host memory.  Without the §V-B life-cycle-managed
embedding cache that is a read-after-write hazard: the worker trains
on rows that are missing in-flight updates (Figure 10a).  This module
turns that argument into a mechanical check:

* instrumented pipeline components (:mod:`repro.analysis.shims`)
  record one :class:`RowEvent` per embedding-row access with a
  *simulated timestamp* — a deterministic logical clock that ticks
  once per pipeline operation, so traces are bit-identical across
  runs;
* :func:`analyze_trace` replays the event log per ``(table, row)``
  and reports every program-order/memory-order inversion, classified
  RAW or WAR, together with whether the embedding cache *repaired* it
  (a cache hit served the fresh value, so no stale data was consumed).

A clean pipelined run (LC management on) must analyze to **zero**
unrepaired hazards; the fault-injection run (``use_cache=False``)
must surface the paper's raw conflict.  Both facts are asserted in
``tests/analysis/test_hazards.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.findings import Finding, Severity

__all__ = [
    "EventKind",
    "RowEvent",
    "TraceRecorder",
    "Hazard",
    "HazardReport",
    "HazardRuleInfo",
    "HAZARD_RULES",
    "analyze_trace",
    "hazard_findings",
]


class EventKind(enum.Enum):
    """What happened to an embedding row (or queue slot)."""

    GATHER = "gather"  # server read host memory for a prefetch
    CONSUME = "consume"  # worker consumed the (possibly synced) rows
    UPDATE = "update"  # worker produced fresh row values (write intent)
    APPLY = "apply"  # server applied gradients to host memory (write)
    SYNC_HIT = "sync_hit"  # cache replaced a stale prefetched row
    SYNC_MISS = "sync_miss"  # cache had no entry for a prefetched row
    CACHE_PUT = "cache_put"  # LC cache stored/refreshed a row
    CACHE_DEC = "cache_dec"  # LC decremented (grad batch drained)
    CACHE_EVICT = "cache_evict"  # LC reached zero, row evicted
    QUEUE_PUT = "queue_put"  # bounded-queue enqueue (stage-tagged)
    QUEUE_GET = "queue_get"  # bounded-queue dequeue (stage-tagged)


# Event kinds that address a concrete (table, row) pair.
_ROW_KINDS = frozenset(
    {
        EventKind.GATHER,
        EventKind.CONSUME,
        EventKind.UPDATE,
        EventKind.APPLY,
        EventKind.SYNC_HIT,
        EventKind.SYNC_MISS,
        EventKind.CACHE_PUT,
        EventKind.CACHE_DEC,
        EventKind.CACHE_EVICT,
    }
)


@dataclass(frozen=True)
class RowEvent:
    """One trace record.

    Attributes
    ----------
    time:
        Simulated timestamp: the logical-clock value of the pipeline
        operation that produced the event.  All rows touched by one
        vectorized operation share a timestamp; distinct operations
        never do.
    kind:
        :class:`EventKind`.
    stage:
        Pipeline stage tag (``server_gather``, ``worker_train``,
        ``server_apply``, ``cache``, or a queue name).  Maps onto the
        paper's life-cycle discussion — see DESIGN.md §7.
    table:
        Host-table position in the model (``-1`` for queue events).
    row:
        Embedding-row id (``-1`` for queue events).
    batch:
        Batch id the operation belongs to (``-1`` when not
        attributable, e.g. generic queue traffic).
    """

    time: int
    kind: EventKind
    stage: str
    table: int = -1
    row: int = -1
    batch: int = -1


class TraceRecorder:
    """Deterministic event log with a logical clock.

    ``tick`` advances simulated time by one; ``record_rows`` stamps a
    whole vector of rows with the current instant.  Because the clock
    only advances when the (single-threaded, deterministic) pipeline
    performs an operation, identical runs produce identical traces.
    """

    def __init__(self) -> None:
        self.events: List[RowEvent] = []
        self._clock = 0

    @property
    def now(self) -> int:
        return self._clock

    def tick(self) -> int:
        """Advance simulated time; returns the new timestamp."""
        self._clock += 1
        return self._clock

    def record(
        self,
        kind: EventKind,
        stage: str,
        table: int = -1,
        row: int = -1,
        batch: int = -1,
    ) -> None:
        """Append one event at the current simulated time."""
        self.events.append(
            RowEvent(
                time=self._clock,
                kind=kind,
                stage=stage,
                table=table,
                row=row,
                batch=batch,
            )
        )

    def record_rows(
        self,
        kind: EventKind,
        stage: str,
        table: int,
        rows: Iterable[int],
        batch: int,
    ) -> None:
        """Append one event per row, all at the current instant."""
        for row in rows:
            self.record(kind, stage, table=table, row=int(row), batch=batch)

    def clear(self) -> None:
        self.events.clear()
        self._clock = 0


@dataclass(frozen=True)
class Hazard:
    """One program-order/memory-order inversion on an embedding row.

    ``kind == "RAW"``: reader batch ``reader_batch`` gathered row
    ``row`` from host memory at ``read_time``, *before* the write of
    earlier batch ``writer_batch`` landed at ``write_time`` — the
    reader missed an update it depends on.  ``repaired`` is True when
    a cache sync served the fresh value to the reader anyway.

    ``kind == "WAR"``: the write of a *later* batch landed before an
    earlier batch's gather — the reader observed the future.
    """

    kind: str
    table: int
    row: int
    writer_batch: int
    reader_batch: int
    write_time: int
    read_time: int
    repaired: bool

    def describe(self) -> str:
        fixed = " (repaired by LC cache)" if self.repaired else ""
        return (
            f"{self.kind} table={self.table} row={self.row}: batch "
            f"{self.reader_batch} gathered at t={self.read_time} vs "
            f"batch {self.writer_batch} write at t={self.write_time}{fixed}"
        )


@dataclass
class HazardReport:
    """Analysis outcome over one recorded trace."""

    hazards: List[Hazard] = field(default_factory=list)
    repaired: List[Hazard] = field(default_factory=list)
    events_analyzed: int = 0
    rows_tracked: int = 0

    @property
    def raw_hazards(self) -> List[Hazard]:
        return [h for h in self.hazards if h.kind == "RAW"]

    @property
    def war_hazards(self) -> List[Hazard]:
        return [h for h in self.hazards if h.kind == "WAR"]

    @property
    def clean(self) -> bool:
        return not self.hazards

    def hot_rows(self, top: int = 5) -> List[Tuple[int, int, int]]:
        """``(table, row, hazard_count)`` for the worst offenders."""
        counts: Dict[Tuple[int, int], int] = {}
        for hazard in self.hazards:
            key = (hazard.table, hazard.row)
            counts[key] = counts.get(key, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(t, r, n) for (t, r), n in ranked[:top]]

    def summary(self) -> str:
        lines = [
            f"events analyzed : {self.events_analyzed}",
            f"rows tracked    : {self.rows_tracked}",
            f"RAW hazards     : {len(self.raw_hazards)}",
            f"WAR hazards     : {len(self.war_hazards)}",
            f"repaired        : {len(self.repaired)} "
            "(stale gathers healed by the LC cache)",
        ]
        for table, row, count in self.hot_rows():
            lines.append(f"  hot row table={table} row={row}: {count} hazard(s)")
        return "\n".join(lines)


def analyze_trace(events: Sequence[RowEvent]) -> HazardReport:
    """Detect RAW/WAR hazards in a recorded pipeline trace.

    For every ``(table, row)`` pair the analyzer collects the host
    *reads* (``GATHER``, tagged with the reading batch) and host
    *writes* (``APPLY``, tagged with the writing batch), plus the
    cache repairs (``SYNC_HIT``) observed by each reader.  Program
    order says batch ``j``'s write must be visible to batch ``i``'s
    read whenever ``j < i``; the trace violates that whenever the
    gather's timestamp precedes the apply's timestamp:

    * ``j < i`` and ``t_gather(i) < t_apply(j)`` → **RAW** — reader
      ``i`` missed writer ``j``'s update;
    * ``j > i`` and ``t_apply(j) < t_gather(i)`` → **WAR** — reader
      ``i`` observed a write from its future.

    A RAW inversion whose reader also has a ``SYNC_HIT`` on the same
    row *after* the gather is recorded as repaired (the §V-B cache
    served the fresh value), not as a hazard.  Output ordering is
    deterministic: sorted by (table, row, reader, writer).
    """
    reads: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    writes: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    repairs: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for event in events:
        if event.kind not in _ROW_KINDS:
            continue
        key = (event.table, event.row)
        if event.kind is EventKind.GATHER:
            reads.setdefault(key, []).append((event.time, event.batch))
        elif event.kind is EventKind.APPLY:
            writes.setdefault(key, []).append((event.time, event.batch))
        elif event.kind is EventKind.SYNC_HIT:
            repairs.setdefault(key, []).append((event.time, event.batch))

    report = HazardReport(
        events_analyzed=len(events),
        rows_tracked=len(set(reads) | set(writes)),
    )
    for key in sorted(set(reads) & set(writes)):
        table, row = key
        row_repairs = repairs.get(key, [])
        for read_time, reader in reads[key]:
            repaired = any(
                sync_batch == reader and sync_time >= read_time
                for sync_time, sync_batch in row_repairs
            )
            for write_time, writer in writes[key]:
                if writer < reader and read_time < write_time:
                    hazard = Hazard(
                        kind="RAW",
                        table=table,
                        row=row,
                        writer_batch=writer,
                        reader_batch=reader,
                        write_time=write_time,
                        read_time=read_time,
                        repaired=repaired,
                    )
                elif writer > reader and write_time < read_time:
                    hazard = Hazard(
                        kind="WAR",
                        table=table,
                        row=row,
                        writer_batch=writer,
                        reader_batch=reader,
                        write_time=write_time,
                        read_time=read_time,
                        repaired=False,
                    )
                else:
                    continue
                if hazard.repaired:
                    report.repaired.append(hazard)
                else:
                    report.hazards.append(hazard)

    def _order(h: Hazard) -> Tuple[int, int, int, int]:
        return (h.table, h.row, h.reader_batch, h.writer_batch)

    report.hazards.sort(key=_order)
    report.repaired.sort(key=_order)
    return report


# ---------------------------------------------------------------------------
# Finding/SARIF bridge
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HazardRuleInfo:
    """SARIF rule descriptor for one hazard class."""

    id: str
    name: str
    severity: Severity
    description: str


HAZARD_RULES: Dict[str, HazardRuleInfo] = {
    rule.name: rule
    for rule in (
        HazardRuleInfo(
            "HAZ001",
            "raw-hazard",
            Severity.ERROR,
            "a batch gathered an embedding row before an earlier "
            "batch's gradient landed (paper Fig. 10a), and the LC "
            "cache did not repair the stale read",
        ),
        HazardRuleInfo(
            "HAZ002",
            "war-hazard",
            Severity.ERROR,
            "a later batch's write landed before an earlier batch's "
            "gather — the reader observed its future",
        ),
    )
}


def hazard_findings(
    report: HazardReport, trace_path: str = "trace://pipeline"
) -> List[Finding]:
    """Render unrepaired hazards as :class:`Finding` records.

    Hazards live in a logical-clock trace, not a file, so ``path`` is
    the synthetic trace URI and ``line`` is the reader's gather
    timestamp — the instant the stale value was observed.
    """
    findings: List[Finding] = []
    for hazard in report.hazards:
        rule = HAZARD_RULES[
            "raw-hazard" if hazard.kind == "RAW" else "war-hazard"
        ]
        findings.append(
            Finding(
                rule=rule.name,
                rule_id=rule.id,
                severity=rule.severity,
                path=trace_path,
                line=hazard.read_time,
                col=0,
                message=hazard.describe(),
                hint="enable LC cache management so prefetched rows "
                "are synced before consumption",
            )
        )
    return findings
