"""The ``repro perfcheck`` runner and FusionPlan builder.

Mirrors the shapecheck/detcheck runner surface — same
:class:`Finding`/:class:`LintResult` records, pragma suppression, and
file discovery — on top of the perf interpreter in
:mod:`repro.analysis.perfcheck.interp`.

The interprocedural part reuses detcheck's
:func:`~repro.analysis.detcheck.callgraph.build_program`: chain kernels
like ``tt_chain_backward`` take their zone as a *parameter*
(``zone=ZONE_TT_BACKWARD``), so a caller passing
``zone=ZONE_EFFTT_BACKWARD`` runs the same body under a different zone.
:func:`build_fusion_plan` finds such call sites in the call graph and
re-interprets the callee's module with the caller's zone bound, merging
the resulting graphs into the FusionPlan — findings are only ever taken
from the base (declared-zone) runs, so rule output stays per-module and
deterministic.

Usage surfaces:

* CLI — ``python -m repro perfcheck [paths...] [--fusion-plan out.json]``;
* pytest — ``tests/analysis/test_perfcheck_self.py`` checks ``src/repro``
  ships clean and the FusionPlan covers the TT/Eff-TT zones;
* library — :func:`perfcheck_paths` / :func:`perfcheck_source` /
  :func:`build_fusion_plan`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..detcheck.callgraph import build_program
from ..findings import Finding, Severity
from ..linter import (
    LintResult,
    is_suppressed,
    iter_python_files,
    package_rel,
    parse_pragmas,
)
from ..rules import build_context
from .graph import Chain, OpNode, fusion_plan_json
from .interp import (
    PERF_RULES,
    PerfModuleResult,
    PerfRuleInfo,
    interpret_module_perf,
)

__all__ = [
    "perfcheck_paths",
    "perfcheck_source",
    "build_fusion_plan",
    "PERF_RULES",
]


def _select_rules(select: Optional[Sequence[str]]) -> List[PerfRuleInfo]:
    if select is None:
        return list(PERF_RULES.values())
    rules: List[PerfRuleInfo] = []
    for name in select:
        matches = [
            rule for rule in PERF_RULES.values() if name in (rule.name, rule.id)
        ]
        if not matches:
            raise KeyError(
                f"unknown perfcheck rule {name!r}; known: {sorted(PERF_RULES)}"
            )
        rules.extend(matches)
    return rules


def perfcheck_source(
    source: str,
    path: str = "<string>",
    rel: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Perfcheck one in-memory module (unit-test entry point)."""
    result = LintResult(files_scanned=1)
    resolved_rel = rel if rel is not None else package_rel(Path(path))
    ctx = build_context(Path(path), resolved_rel, source)
    per_line, file_wide = parse_pragmas(source)
    selected = {rule.name for rule in _select_rules(select)}
    for finding in interpret_module_perf(ctx).findings:
        if finding.rule not in selected:
            continue
        line_names = per_line.get(finding.line, set())
        if is_suppressed(finding, line_names | file_wide):
            result.suppressed += 1
            continue
        result.findings.append(finding)
    result.findings.sort(key=lambda f: f.sort_key)
    return result


def perfcheck_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Perfcheck every ``.py`` file under ``paths``; aggregate."""
    total = LintResult()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            single = perfcheck_source(
                source,
                path=str(file_path),
                rel=package_rel(file_path),
                select=select,
            )
        except SyntaxError as exc:
            total.findings.append(
                Finding(
                    rule="syntax-error",
                    rule_id="PERF000",
                    severity=Severity.ERROR,
                    path=str(file_path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            total.files_scanned += 1
            continue
        total.files_scanned += single.files_scanned
        total.suppressed += single.suppressed
        total.findings.extend(single.findings)
    total.findings.sort(key=lambda f: f.sort_key)
    return total


def _zone_kwarg_name(value: ast.expr) -> Optional[str]:
    """The kernel-zone string a ``zone=ZONE_X`` call keyword names."""
    from ..shapecheck.interp import _ZONE_CONSTANTS

    if isinstance(value, ast.Name) and value.id in _ZONE_CONSTANTS:
        return _ZONE_CONSTANTS[value.id]
    if isinstance(value, ast.Attribute) and value.attr in _ZONE_CONSTANTS:
        return _ZONE_CONSTANTS[value.attr]
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        if value.value in _ZONE_CONSTANTS.values():
            return value.value
    return None


def build_fusion_plan(paths: Sequence[Path]) -> Dict[str, object]:
    """Interprocedural FusionPlan over every module under ``paths``.

    Base pass: each module is interpreted under its declared zones.
    Interprocedural pass: for every call-graph edge that passes
    ``zone=ZONE_X`` to a function whose zone is a parameter, the callee's
    module is re-interpreted with that zone bound, and only the graphs
    belonging to the propagated zone are merged in.
    """
    files: List[Tuple[Path, str, str]] = []
    for file_path in iter_python_files(paths):
        files.append(
            (file_path, package_rel(file_path), file_path.read_text(encoding="utf-8"))
        )

    all_nodes: List[OpNode] = []
    all_chains: List[Chain] = []
    module_results: Dict[str, PerfModuleResult] = {}
    for file_path, rel, source in files:
        try:
            ctx = build_context(file_path, rel, source)
        except SyntaxError:
            continue
        result = interpret_module_perf(ctx, collect_findings=False)
        module_results[rel] = result
        all_nodes.extend(result.nodes)
        all_chains.extend(result.chains)

    # Call-graph pass: find zone=ZONE_X keywords on resolved callees.
    overrides: Dict[Tuple[str, str, str], None] = {}
    try:
        program = build_program(files)
    except SyntaxError:
        program = None
    if program is not None:
        for fn in program.functions.values():
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                zone = None
                for keyword in call.keywords:
                    if keyword.arg == "zone":
                        zone = _zone_kwarg_name(keyword.value)
                if zone is None:
                    continue
                for callee in program.resolve_callees(fn, call):
                    if "zone" not in callee.params:
                        continue
                    overrides[(callee.module, callee.name, zone)] = None

        rel_by_module = {
            modname: info.ctx.rel for modname, info in program.modules.items()
        }
        source_by_rel = {rel: (file_path, source) for file_path, rel, source in files}
        for modname, fn_name, zone in overrides:
            rel = rel_by_module.get(modname)
            if rel is None or rel not in source_by_rel:
                continue
            file_path, source = source_by_rel[rel]
            try:
                ctx = build_context(file_path, rel, source)
            except SyntaxError:
                continue
            result = interpret_module_perf(
                ctx, zone_overrides={fn_name: zone}, collect_findings=False
            )
            # Only the propagated zone is new information; the module's
            # declared zones were already covered by the base pass.
            all_nodes.extend(n for n in result.nodes if n.zone == zone)
            all_chains.extend(c for c in result.chains if c.zone == zone)

    return fusion_plan_json(all_nodes, all_chains)
