"""Symbolic FLOP/byte cost model for perfcheck.

Costs are sums of integer-coefficient *product terms* over symbolic
dimension names — ``2*batch*r_prev*n_k*r_next`` — mirroring, formula
for formula, what :class:`~repro.backend.instrumented.InstrumentedBackend`
measures at run time.  When every dimension is a concrete ``int`` the
cost collapses to an exact integer (``Cost.value``); any unknown
dimension (``None`` in the shapecheck domain) makes the whole product
unknown and the op-level helper returns ``None`` rather than a guess —
the same one-sided posture the PERF rules take.

The calibration gate (:mod:`repro.analysis.perfcheck.calibrate`) runs
these same functions against runtime shapes and checks the totals match
``InstrumentedBackend`` per-zone counters, so the static numbers embedded
in a FusionPlan are anchored to measurement.

TT chain costs
--------------
:func:`tt_chain_flops_per_row` reproduces the per-row FLOP count of the
plan cache's :class:`~repro.backend.plan_cache.ChainPlan` from a
``TTSpec``-style ``core_shapes`` signature — the analytic chain cost the
EL-Rec/TT-Rec papers derive — and is unit-tested against the plan cache
itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..shapecheck.domain import Dim, SymDim

__all__ = [
    "Cost",
    "OpCost",
    "ZERO",
    "cost_add",
    "cost_scale",
    "cost_to_json",
    "size_cost",
    "nbytes_cost",
    "alloc_cost",
    "asarray_cost",
    "matmul_cost",
    "einsum_cost",
    "einsum_flops_for_shapes",
    "gather_cost",
    "scatter_cost",
    "elementwise_cost",
    "tt_chain_flops_per_row",
    "itemsize_of",
]

# Shapes in this module follow the shapecheck domain: a tuple of Dim
# (int | SymDim | None) for known rank, or None for unknown rank.
ShapeLike = Optional[Tuple[Dim, ...]]

ITEMSIZE_SYMBOL = "itemsize"


@dataclass(frozen=True)
class Cost:
    """Sum of ``coeff * sym1 * sym2 * ...`` product terms.

    ``terms`` maps a sorted tuple of symbol names to its integer
    coefficient; the empty tuple is the constant term.
    """

    terms: Tuple[Tuple[Tuple[str, ...], int], ...]

    @staticmethod
    def concrete(n: int) -> "Cost":
        if n == 0:
            return ZERO
        return Cost((((), int(n)),))

    @staticmethod
    def product(coeff: int, dims: Sequence[Dim]) -> Optional["Cost"]:
        """``coeff * prod(dims)`` — ``None`` if any dim is unknown."""
        symbols = []
        for dim in dims:
            if dim is None:
                return None
            if isinstance(dim, SymDim):
                symbols.append(dim.name)
            else:
                coeff *= int(dim)
        if coeff == 0:
            return ZERO
        return Cost(((tuple(sorted(symbols)), coeff),))

    @property
    def value(self) -> Optional[int]:
        """Exact integer when no symbols remain, else ``None``."""
        total = 0
        for symbols, coeff in self.terms:
            if symbols:
                return None
            total += coeff
        return total

    @property
    def expr(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for symbols, coeff in sorted(self.terms):
            factors = [str(coeff)] if coeff != 1 or not symbols else []
            factors.extend(symbols)
            parts.append("*".join(factors))
        return " + ".join(parts)


ZERO = Cost(())


def cost_add(*costs: Optional[Cost]) -> Optional[Cost]:
    """Sum costs; unknown (``None``) poisons the sum."""
    merged: Dict[Tuple[str, ...], int] = {}
    for cost in costs:
        if cost is None:
            return None
        for symbols, coeff in cost.terms:
            merged[symbols] = merged.get(symbols, 0) + coeff
    return Cost(tuple(sorted((s, c) for s, c in merged.items() if c != 0)))


def cost_scale(cost: Optional[Cost], factor: int) -> Optional[Cost]:
    if cost is None:
        return None
    if factor == 0:
        return ZERO
    return Cost(tuple((symbols, coeff * factor) for symbols, coeff in cost.terms))


def cost_to_json(cost: Optional[Cost]) -> Dict[str, object]:
    """JSON form used by FusionPlan: ``{"expr": ..., "value": ...}``."""
    if cost is None:
        return {"expr": None, "value": None}
    return {"expr": cost.expr, "value": cost.value}


def itemsize_of(dtype: Optional[str]) -> Dim:
    """Element size in bytes; a symbolic dim when the dtype is unknown."""
    if dtype is None:
        return SymDim(ITEMSIZE_SYMBOL)
    try:
        return int(np.dtype(dtype).itemsize)
    except TypeError:
        return SymDim(ITEMSIZE_SYMBOL)


def size_cost(shape: ShapeLike) -> Optional[Cost]:
    if shape is None:
        return None
    return Cost.product(1, shape)


def nbytes_cost(shape: ShapeLike, dtype: Optional[str]) -> Optional[Cost]:
    if shape is None:
        return None
    return Cost.product(1, tuple(shape) + (itemsize_of(dtype),))


@dataclass(frozen=True)
class OpCost:
    """Static (flops, bytes) estimate for one backend call site."""

    flops: Optional[Cost]
    bytes: Optional[Cost]


def alloc_cost(shape: ShapeLike, dtype: Optional[str]) -> OpCost:
    """zeros/ones/empty/full: no FLOPs, one result written."""
    return OpCost(flops=ZERO, bytes=nbytes_cost(shape, dtype))


def asarray_cost() -> OpCost:
    return OpCost(flops=ZERO, bytes=ZERO)


def matmul_cost(
    a_shape: ShapeLike,
    a_dtype: Optional[str],
    b_shape: ShapeLike,
    b_dtype: Optional[str],
    out_shape: ShapeLike,
    out_dtype: Optional[str],
) -> OpCost:
    """``2 * prod(batch) * m * k * n`` — InstrumentedBackend.matmul."""
    flops: Optional[Cost] = None
    if a_shape is not None and b_shape is not None and out_shape is not None and a_shape:
        m: Dim = a_shape[-2] if len(a_shape) >= 2 else 1
        k: Dim = a_shape[-1]
        n: Dim = b_shape[-1] if len(b_shape) >= 2 else 1
        batch = out_shape[:-2] if len(out_shape) > 2 else ()
        flops = Cost.product(2, (m, k, n) + tuple(batch))
    traffic = cost_add(
        nbytes_cost(a_shape, a_dtype),
        nbytes_cost(b_shape, b_dtype),
        nbytes_cost(out_shape, out_dtype),
    )
    return OpCost(flops=flops, bytes=traffic)


def einsum_flops_for_shapes(
    subscripts: str, shapes: Sequence[ShapeLike]
) -> Optional[int]:
    """Plan-cache FLOP count when every operand shape is concrete."""
    concrete = []
    for shape in shapes:
        if shape is None or not all(isinstance(d, int) for d in shape):
            return None
        concrete.append(tuple(int(d) for d in shape))  # type: ignore[arg-type]
    from ...backend.plan_cache import get_plan_cache

    try:
        plan = get_plan_cache().einsum_plan_for_shapes(subscripts, concrete)
    except ValueError:
        return None
    return plan.flop_count


def einsum_cost(
    subscripts: Optional[str],
    operand_shapes: Sequence[ShapeLike],
    operand_dtypes: Sequence[Optional[str]],
    out_shape: ShapeLike,
    out_dtype: Optional[str],
) -> OpCost:
    """Plan flop_count when derivable; traffic = operands + result."""
    flops: Optional[Cost] = None
    if subscripts is not None:
        count = einsum_flops_for_shapes(subscripts, operand_shapes)
        if count is not None:
            flops = Cost.concrete(count)
    traffic = cost_add(
        *(nbytes_cost(s, d) for s, d in zip(operand_shapes, operand_dtypes)),
        nbytes_cost(out_shape, out_dtype),
    )
    return OpCost(flops=flops, bytes=traffic)


def gather_cost(out_shape: ShapeLike, out_dtype: Optional[str]) -> OpCost:
    """Pure traffic: rows read + rows written."""
    return OpCost(flops=ZERO, bytes=cost_scale(nbytes_cost(out_shape, out_dtype), 2))


def scatter_cost(
    values_shape: ShapeLike,
    values_dtype: Optional[str],
    scale_is_one: Optional[bool],
) -> OpCost:
    """``values.size`` adds (+ ``values.size`` scales when scale != 1)."""
    size = size_cost(values_shape)
    if scale_is_one is None:
        flops = None
    elif scale_is_one:
        flops = size
    else:
        flops = cost_scale(size, 2)
    return OpCost(flops=flops, bytes=cost_scale(nbytes_cost(values_shape, values_dtype), 3))


def elementwise_cost(
    op: str,
    in_shape: ShapeLike,
    in_dtype: Optional[str],
    out_shape: ShapeLike,
    out_dtype: Optional[str],
) -> OpCost:
    """exp / maximum / minimum / where / axpy per-element costs."""
    if op == "exp":
        return OpCost(
            flops=size_cost(out_shape),
            bytes=cost_add(nbytes_cost(in_shape, in_dtype), nbytes_cost(out_shape, out_dtype)),
        )
    if op == "axpy":
        return OpCost(
            flops=cost_scale(size_cost(in_shape), 2),
            bytes=cost_scale(nbytes_cost(in_shape, in_dtype), 3),
        )
    # maximum / minimum / where: one FLOP per output element, two
    # result-sized transfers (InstrumentedBackend's convention).
    return OpCost(
        flops=size_cost(out_shape),
        bytes=cost_scale(nbytes_cost(out_shape, out_dtype), 2),
    )


def tt_chain_flops_per_row(core_shapes: Sequence[Tuple[int, int, int, int]]) -> int:
    """Per-row FLOPs of a left-to-right TT chain sweep.

    Mirrors :class:`~repro.backend.plan_cache.ChainPlan`: stage 0 is the
    gather (zero FLOPs); stage ``k`` is a per-row GEMM of the running
    ``(prefix_width, r_prev)`` product against the ``(r_prev, n_k*r_next)``
    core slice.  Tested against the plan cache for exact agreement.
    """
    total = 0
    prefix_width = 1
    for k, (_m_k, r_prev, n_k, r_next) in enumerate(core_shapes):
        if k > 0:
            total += 2 * prefix_width * r_prev * n_k * r_next
        prefix_width *= n_k
    return total
