"""The perfcheck abstract interpreter and PERF rule catalog.

Subclasses the shapecheck interpreter (same abstract domain, same
soundness posture) but repurposes the walk: instead of shape findings it
records one dataflow :class:`~.graph.OpNode` per ``ArrayBackend``/tensor
call site — with zone, loop context, symbolic output shape and a static
:class:`~.costmodel.OpCost` — and runs one-sided performance rules over
the resulting per-zone graph.  SHP findings are dropped (shapecheck owns
them); perfcheck emits only PERF findings.

Rules (the PERF catalog)
------------------------
``PERF001 hot-loop-alloc``       loop-invariant allocation inside a kernel-zone loop
``PERF002 unfused-contraction``  dead intermediate between two contractions (fusable)
``PERF003 layout-churn``         copy-forcing transpose/reshape chains in kernel files
``PERF004 plan-cache-bypass``    kernel-zone einsum whose subscripts are provably dynamic
``PERF005 batch-python-loop``    Python for-loop over an abstract tensor's leading dim in a zone
``PERF006 redundant-gather``     provably duplicate gather_rows with no intervening write
``PERF007 dtype-churn``          redundant or immediately-overwritten astype in a zone

Liveness accounting
-------------------
Every recorded op's output value is *tracked*: syntactic ``Name`` reads
are counted against *claims* made by recorded consumers (including
metadata reads of ``.shape``/``.dtype``/``.ndim``/``.size``).  A value
whose reads are all claimed and that never escapes (returned, stored
into an attribute/subscript, aliased by ``copy()``, read outside its
binding loop, or read by an opaque construct) is a *dead intermediate* —
the fusable links that PERF002 and the FusionPlan chains are built from.
Everything uncertain escapes, so the analysis stays one-sided.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..findings import Finding, Severity
from ..rules import KERNEL_ZONES, RuleContext
from ..shapecheck.domain import (
    TOP,
    Dim,
    DottedVal,
    SymDim,
    TensorVal,
    TupleVal,
    format_shape,
)
from ..shapecheck.interp import _ZONE_CONSTANTS, _STARRED, _Interpreter
from . import costmodel
from .costmodel import OpCost
from .graph import (
    CONTRACTION_OPS,
    LAYOUT_OPS,
    Chain,
    OpNode,
    ValueRec,
    extract_chains,
)

__all__ = ["PERF_RULES", "PerfRuleInfo", "PerfModuleResult", "interpret_module_perf"]


@dataclass(frozen=True)
class PerfRuleInfo:
    """Catalog entry for one perfcheck rule."""

    id: str
    name: str
    severity: Severity
    description: str


PERF_RULES: Dict[str, PerfRuleInfo] = {
    rule.name: rule
    for rule in (
        PerfRuleInfo(
            "PERF000",
            "syntax-error",
            Severity.ERROR,
            "file could not be parsed; perfcheck analyzed nothing",
        ),
        PerfRuleInfo(
            "PERF001",
            "hot-loop-alloc",
            Severity.ERROR,
            "loop-invariant array allocation inside a kernel-zone loop: "
            "the same buffer is re-allocated every iteration",
        ),
        PerfRuleInfo(
            "PERF002",
            "unfused-contraction",
            Severity.WARNING,
            "a contraction's result is a dead intermediate consumed only "
            "by an adjacent contraction: the pair is fusable",
        ),
        PerfRuleInfo(
            "PERF003",
            "layout-churn",
            Severity.ERROR,
            "chained transpose/reshape in a kernel file forces an "
            "intermediate copy (layout churn)",
        ),
        PerfRuleInfo(
            "PERF004",
            "plan-cache-bypass",
            Severity.ERROR,
            "kernel-zone einsum with provably dynamic subscripts: the "
            "signature can never hit the ContractionPlanCache",
        ),
        PerfRuleInfo(
            "PERF005",
            "batch-python-loop",
            Severity.ERROR,
            "Python for-loop over an array's leading dimension inside a "
            "kernel zone (shape-evidenced row-at-a-time execution)",
        ),
        PerfRuleInfo(
            "PERF006",
            "redundant-gather",
            Severity.ERROR,
            "two identical gather_rows calls in one kernel zone with no "
            "intervening write: the second re-reads the same rows",
        ),
        PerfRuleInfo(
            "PERF007",
            "dtype-churn",
            Severity.ERROR,
            "redundant astype in a kernel zone (cast to the dtype the "
            "array already has, or a cast immediately re-cast)",
        ),
    )
}

_ALLOC_METHODS = ("zeros", "ones", "empty", "full")
_NP_ALLOCS = _ALLOC_METHODS + ("zeros_like", "ones_like", "empty_like", "full_like")
_REDUCTION_METHODS = ("sum", "mean", "max", "min", "prod", "std", "var")
_NDARRAY_ANNOTATIONS = ("np.ndarray", "numpy.ndarray", "ndarray")
_META_ATTRS = ("shape", "dtype", "ndim", "size")
# Opaque constructs whose inner Name reads the base interpreter skips;
# perfcheck scans them so tracked values read inside conservatively
# escape instead of looking dead.
_OPAQUE_EXPRS = (
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.Lambda,
    ast.JoinedStr,
    ast.Dict,
    ast.Set,
)


@dataclass
class _LoopFrame:
    stmt: ast.stmt
    assigned: Set[str]


@dataclass
class _GatherSite:
    node: OpNode
    arg_nodes: Tuple[ast.expr, ...]
    loop_key: Tuple[int, ...]
    loop_assigned: Set[str]


@dataclass
class PerfModuleResult:
    """Findings + dataflow graph of one module's perfcheck run."""

    findings: List[Finding]
    nodes: List[OpNode]
    recs_by_node: Dict[int, ValueRec]
    chains: List[Chain]


class _PerfInterpreter(_Interpreter):
    def __init__(
        self,
        ctx: RuleContext,
        zone_overrides: Optional[Dict[str, str]] = None,
        collect_findings: bool = True,
    ) -> None:
        super().__init__(ctx)
        self.perf_findings: List[Finding] = []
        self._collect = collect_findings
        self._zone_overrides = zone_overrides or {}
        self._nodes: List[OpNode] = []
        self._tracked: Dict[int, ValueRec] = {}
        self._recs_by_node: Dict[int, ValueRec] = {}
        self._loops: List[_LoopFrame] = []
        self._branches: List[int] = []
        self._branch_counter = 0
        self._fn_stack: List[ast.AST] = []
        self._bind_events: List[Tuple[int, str]] = []
        self._gathers: List[_GatherSite] = []
        # name -> sorted Load linenos, cached per enclosing function node.
        self._load_lines: Dict[int, Dict[str, List[int]]] = {}

    # -- findings ------------------------------------------------------
    def _emit(self, rule_name: str, node: ast.AST, message: str, hint: str) -> None:
        # Shape findings belong to shapecheck; perfcheck stays silent on
        # them (same walk, different rule catalog).
        return

    def _emit_perf(
        self, rule_name: str, node: ast.AST, message: str, hint: str
    ) -> None:
        if not self._collect:
            return
        rule = PERF_RULES[rule_name]
        self.perf_findings.append(
            Finding(
                rule=rule.name,
                rule_id=rule.id,
                severity=rule.severity,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                hint=hint,
            )
        )

    def _emit_perf_at(
        self, rule_name: str, line: int, col: int, message: str, hint: str
    ) -> None:
        if not self._collect:
            return
        rule = PERF_RULES[rule_name]
        self.perf_findings.append(
            Finding(
                rule=rule.name,
                rule_id=rule.id,
                severity=rule.severity,
                path=self.ctx.path,
                line=line,
                col=col,
                message=message,
                hint=hint,
            )
        )

    # -- liveness accounting -------------------------------------------
    def _rec_of(self, value: Any) -> Optional[ValueRec]:
        rec = self._tracked.get(id(value))
        if rec is not None and rec.value is value:
            return rec
        return None

    def _escape(self, value: Any) -> None:
        if isinstance(value, TupleVal):
            for item in value.items:
                self._escape(item)
            return
        rec = self._rec_of(value)
        if rec is not None:
            rec.escaped = True

    def _claim(self, value: Any, consumer: Optional[OpNode]) -> None:
        rec = self._rec_of(value)
        if rec is not None:
            rec.claims += 1
            if consumer is not None:
                rec.consumers.append(consumer)

    def _record(
        self,
        node: ast.AST,
        op: str,
        inputs: Sequence[Any],
        out: Any,
        cost: OpCost,
        texts: Tuple[str, ...] = (),
    ) -> OpNode:
        zone = self._zone.name if self._zone is not None else None
        op_node = OpNode(
            index=len(self._nodes),
            op=op,
            rel=self.ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            zone=zone,
            loop_depth=len(self._loops),
            branch=tuple(self._branches),
            out_shape=out.shape if isinstance(out, TensorVal) else None,
            out_dtype=out.dtype if isinstance(out, TensorVal) else None,
            flops=cost.flops,
            bytes=cost.bytes,
            texts=texts,
        )
        self._nodes.append(op_node)
        for value in inputs:
            self._claim(value, op_node)
        if isinstance(out, TensorVal):
            self._tracked[id(out)] = ValueRec(value=out, node=op_node)
            self._recs_by_node[op_node.index] = self._tracked[id(out)]
        return op_node

    # -- loop-positional escape ----------------------------------------
    def _scope_node(self) -> ast.AST:
        return self._fn_stack[-1] if self._fn_stack else self.ctx.tree

    def _name_load_lines(self, name: str) -> List[int]:
        scope = self._scope_node()
        cache = self._load_lines.get(id(scope))
        if cache is None:
            cache = {}
            for child in ast.walk(scope):
                if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                    cache.setdefault(child.id, []).append(child.lineno)
            self._load_lines[id(scope)] = cache
        return cache.get(name, [])

    def _name_read_outside_loops(self, name: str) -> bool:
        outer = self._loops[0].stmt
        start = outer.lineno
        end = getattr(outer, "end_lineno", None) or start
        return any(line < start or line > end for line in self._name_load_lines(name))

    # ==================================================================
    # statements
    # ==================================================================
    def _exec_stmt(self, stmt: ast.stmt, env: Dict[str, Any]) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_val = self._eval(stmt.iter, env)
            self._check_batch_loop(stmt, iter_val, env)
            self._havoc(stmt, env)
            self._bind(stmt.target, TOP, env)
            self._loops.append(_LoopFrame(stmt, self._assigned_names(stmt)))
            try:
                self._exec_block(stmt.body, env)
            finally:
                self._loops.pop()
            self._exec_block(stmt.orelse, env)
            self._havoc(stmt, env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            self._havoc(stmt, env)
            self._loops.append(_LoopFrame(stmt, self._assigned_names(stmt)))
            try:
                self._exec_block(stmt.body, env)
            finally:
                self._loops.pop()
            self._exec_block(stmt.orelse, env)
            self._havoc(stmt, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escape(self._eval(stmt.value, env))
        else:
            super()._exec_stmt(stmt, env)

    def _exec_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, env: Dict[str, Any]
    ) -> None:
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        default_vals: Dict[str, Any] = {}
        if args.defaults:
            for arg, default in zip(positional[-len(args.defaults):], args.defaults):
                default_vals[arg.arg] = self._eval(default, env)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                default_vals[arg.arg] = self._eval(default, env)
        fn_env: Dict[str, Any] = {}
        override_zone = self._zone_overrides.get(node.name)
        for arg in [
            *positional,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            value: Any = TOP
            if override_zone is not None and arg.arg == "zone":
                value = override_zone
            else:
                default = default_vals.get(arg.arg)
                if isinstance(default, DottedVal) and default.tail in _ZONE_CONSTANTS:
                    # zone=ZONE_TT_BACKWARD-style defaults: analyze the
                    # body under the zone it declares.
                    value = default
                elif isinstance(default, str) and default in _ZONE_CONSTANTS.values():
                    value = default
                elif arg.annotation is not None and ast.unparse(
                    arg.annotation
                ) in _NDARRAY_ANNOTATIONS:
                    value = TensorVal(None, None)
            fn_env[arg.arg] = value
        # A nested def's body does not run where it is defined: suspend
        # the loop/zone/branch context for the duration.
        saved = (self._loops, self._zones, self._branches)
        self._loops, self._zones, self._branches = [], [], []
        self._fn_stack.append(node)
        try:
            self._exec_block(node.body, fn_env)
        finally:
            self._fn_stack.pop()
            self._loops, self._zones, self._branches = saved

    def _exec_branches(
        self, env: Dict[str, Any], *branches: Sequence[ast.stmt]
    ) -> None:
        snapshots: List[Dict[str, Any]] = []
        for branch in branches:
            branch_env = dict(env)
            self._branch_counter += 1
            self._branches.append(self._branch_counter)
            try:
                self._exec_block(branch, branch_env)
            finally:
                self._branches.pop()
            snapshots.append(branch_env)
        if not snapshots:
            return
        keys: Set[str] = set()
        for snap in snapshots:
            keys.update(snap)
        for key in keys:
            values = [snap.get(key, TOP) for snap in snapshots]
            first = values[0]
            if all(v == first for v in values[1:]):
                env[key] = first
            else:
                env[key] = TOP

    def _bind(self, target: ast.expr, value: Any, env: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            self._bind_events.append((len(self._nodes), target.id))
            rec = self._rec_of(value)
            if rec is not None and self._loops and self._name_read_outside_loops(
                target.id
            ):
                rec.escaped = True
        elif isinstance(target, ast.Attribute):
            self._escape(value)
            if isinstance(target.value, ast.Name):
                self._bind_events.append((len(self._nodes), target.value.id))
        elif isinstance(target, ast.Subscript):
            self._escape(value)
            if isinstance(target.value, ast.Name):
                self._bind_events.append((len(self._nodes), target.value.id))
        super()._bind(target, value, env)

    # ==================================================================
    # expressions
    # ==================================================================
    def _eval(self, node: ast.expr, env: Dict[str, Any]) -> Any:
        if isinstance(node, _OPAQUE_EXPRS):
            # The base interpreter treats these as opaque without reading
            # their subexpressions; count the reads so tracked values
            # used inside escape rather than looking dead.
            for child in ast.walk(node):
                if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                    rec = self._rec_of(env.get(child.id))
                    if rec is not None:
                        rec.reads += 1
            return TOP
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            if node.value is not None:
                self._escape(self._eval(node.value, env))
            return TOP
        value = super()._eval(node, env)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            rec = self._rec_of(value)
            if rec is not None:
                rec.reads += 1
        return value

    def _attribute_value(self, node: ast.Attribute, base: Any) -> Any:
        if isinstance(base, TensorVal) and node.attr in _META_ATTRS:
            # Metadata reads don't keep the array's data alive.
            self._claim(base, None)
        return super()._attribute_value(node, base)

    # ==================================================================
    # recorded ops
    # ==================================================================
    def _backend_call(
        self,
        node: ast.Call,
        method: str,
        args: List[Any],
        kwargs: Dict[str, Any],
        starred: bool,
    ) -> Any:
        result = super()._backend_call(node, method, args, kwargs, starred)
        return self._after_op_call(
            node, f"backend.{method}", method, args, kwargs, result
        )

    def _numpy_call(
        self,
        node: ast.Call,
        name: str,
        args: List[Any],
        kwargs: Dict[str, Any],
        starred: bool,
    ) -> Any:
        result = super()._numpy_call(node, name, args, kwargs, starred)
        tail = name.rsplit(".", 1)[-1]
        if tail in _NP_ALLOCS:
            self._check_hot_alloc(node, f"np.{tail}")
            if isinstance(result, TensorVal):
                shaped = self._symbolized_alloc(node, tail, result)
                self._record(node, tail.replace("_like", ""), [a for a in args if isinstance(a, TensorVal)], shaped, costmodel.alloc_cost(shaped.shape, shaped.dtype))
                return shaped
            return result
        if tail in ("matmul", "dot", "einsum", "maximum", "minimum", "where"):
            return self._after_op_call(node, f"np.{tail}", tail, args, kwargs, result)
        if tail in ("asarray", "ascontiguousarray", "array"):
            if isinstance(result, TensorVal):
                fresh = TensorVal(result.shape, result.dtype, result.int_values)
                self._record(
                    node,
                    "asarray",
                    [a for a in args if isinstance(a, TensorVal)],
                    fresh,
                    costmodel.asarray_cost(),
                )
                return fresh
            return result
        return result

    def _after_op_call(
        self,
        node: ast.Call,
        display: str,
        method: str,
        args: List[Any],
        kwargs: Dict[str, Any],
        result: Any,
    ) -> Any:
        tensor_args = [a for a in args if isinstance(a, TensorVal)]
        if method in _ALLOC_METHODS:
            self._check_hot_alloc(node, display)
            if isinstance(result, TensorVal):
                shaped = self._symbolized_alloc(node, method, result)
                self._record(
                    node, method, [], shaped, costmodel.alloc_cost(shaped.shape, shaped.dtype)
                )
                return shaped
            return result
        if method == "asarray":
            if isinstance(result, TensorVal):
                fresh = TensorVal(result.shape, result.dtype, result.int_values)
                self._record(node, "asarray", tensor_args, fresh, costmodel.asarray_cost())
                return fresh
            return result
        if method in ("matmul", "dot") and len(args) == 2:
            out = result if isinstance(result, TensorVal) else TensorVal(None, None)
            a, b = args
            cost = costmodel.matmul_cost(
                a.shape if isinstance(a, TensorVal) else None,
                a.dtype if isinstance(a, TensorVal) else None,
                b.shape if isinstance(b, TensorVal) else None,
                b.dtype if isinstance(b, TensorVal) else None,
                out.shape,
                out.dtype,
            )
            self._record(node, "matmul", tensor_args, out, cost)
            return out
        if method == "einsum" and args:
            operands = [a for a in args[1:] if a is not _STARRED]
            out = result if isinstance(result, TensorVal) else TensorVal(None, None)
            subscripts = args[0] if isinstance(args[0], str) else None
            cost = costmodel.einsum_cost(
                subscripts,
                [op.shape if isinstance(op, TensorVal) else None for op in operands],
                [op.dtype if isinstance(op, TensorVal) else None for op in operands],
                out.shape,
                out.dtype,
            )
            self._record(
                node,
                "einsum",
                [op for op in operands if isinstance(op, TensorVal)],
                out,
                cost,
            )
            return out
        if method == "gather_rows" and len(args) == 2:
            out = result if isinstance(result, TensorVal) else TensorVal(None, None)
            op_node = self._record(
                node,
                "gather_rows",
                tensor_args,
                out,
                costmodel.gather_cost(out.shape, out.dtype),
                texts=tuple(ast.unparse(a) for a in node.args[:2]),
            )
            loop_assigned: Set[str] = set()
            for frame in self._loops:
                loop_assigned |= frame.assigned
            self._gathers.append(
                _GatherSite(
                    node=op_node,
                    arg_nodes=tuple(node.args[:2]),
                    loop_key=tuple(id(f.stmt) for f in self._loops),
                    loop_assigned=loop_assigned,
                )
            )
            return out
        if method == "scatter_add_rows" and len(args) >= 3:
            values = args[2]
            scale = kwargs.get("scale", args[3] if len(args) > 3 else None)
            if scale is None:
                scale_is_one: Optional[bool] = True
            elif isinstance(scale, (int, float)):
                scale_is_one = scale == 1.0
            else:
                scale_is_one = None
            cost = costmodel.scatter_cost(
                values.shape if isinstance(values, TensorVal) else None,
                values.dtype if isinstance(values, TensorVal) else None,
                scale_is_one,
            )
            self._record(node, "scatter_add_rows", tensor_args, None, cost)
            return result
        if method == "exp" and args:
            source = args[0]
            out = result if isinstance(result, TensorVal) else TensorVal(None, None)
            cost = costmodel.elementwise_cost(
                "exp",
                source.shape if isinstance(source, TensorVal) else None,
                source.dtype if isinstance(source, TensorVal) else None,
                out.shape,
                out.dtype,
            )
            self._record(node, "exp", tensor_args, out, cost)
            return out
        if method in ("maximum", "minimum") and len(args) == 2:
            out = result if isinstance(result, TensorVal) else TensorVal(None, None)
            cost = costmodel.elementwise_cost(method, None, None, out.shape, out.dtype)
            self._record(node, method, tensor_args, out, cost)
            return out
        if method == "where" and len(args) == 3:
            out = result if isinstance(result, TensorVal) else TensorVal(None, None)
            cost = costmodel.elementwise_cost("where", None, None, out.shape, out.dtype)
            self._record(node, "where", tensor_args, out, cost)
            return out
        if method == "axpy" and len(args) >= 2:
            values = args[1]
            cost = costmodel.elementwise_cost(
                "axpy",
                values.shape if isinstance(values, TensorVal) else None,
                values.dtype if isinstance(values, TensorVal) else None,
                None,
                None,
            )
            self._record(node, "axpy", tensor_args, None, cost)
            return result
        return result

    def _tensor_method(
        self,
        node: ast.Call,
        base: TensorVal,
        method: str,
        args: List[Any],
        kwargs: Dict[str, Any],
    ) -> Any:
        result = super()._tensor_method(node, base, method, args, kwargs)
        if method == "copy":
            # copy() hands the data to an alias we do not track.
            self._escape(base)
            return TensorVal(base.shape, base.dtype, base.int_values)
        if method not in ("reshape", "transpose", "astype") and method not in _REDUCTION_METHODS:
            return result
        if not isinstance(result, TensorVal):
            return result
        if result is base:
            result = TensorVal(base.shape, base.dtype, base.int_values)
        if method == "reshape":
            result = self._symbolized_reshape(node, result)
        if method == "astype" and self._zones:
            target = result.dtype
            if target is not None and base.dtype is not None and target == base.dtype:
                self._emit_perf(
                    "dtype-churn",
                    node,
                    f"astype({target!r}) on an array that already has dtype "
                    f"{base.dtype!r} copies without converting",
                    "drop the redundant cast (or cast once at the zone "
                    "boundary)",
                )
        self._record(node, method, [base], result, OpCost(costmodel.ZERO, costmodel.ZERO))
        return result

    # -- symbolic shape refinement -------------------------------------
    def _dim_symbols_from_ast(
        self, elems: Sequence[ast.expr], shape: Optional[Tuple[Dim, ...]]
    ) -> Optional[Tuple[Dim, ...]]:
        if shape is None or len(elems) != len(shape):
            return shape
        out: List[Dim] = []
        for elem, dim in zip(elems, shape):
            if dim is None:
                text = ast.unparse(elem)
                if text != "-1":
                    dim = SymDim(text)
            out.append(dim)
        return tuple(out)

    def _shape_arg_elems(self, arg: ast.expr) -> Optional[List[ast.expr]]:
        if isinstance(arg, (ast.Tuple, ast.List)):
            return list(arg.elts)
        return [arg]

    def _symbolized_alloc(
        self, node: ast.Call, method: str, result: TensorVal
    ) -> TensorVal:
        if not node.args or method.endswith("_like"):
            return TensorVal(result.shape, result.dtype, result.int_values)
        elems = self._shape_arg_elems(node.args[0])
        shape = result.shape
        if shape is None and elems is not None:
            shape = tuple([None] * len(elems))
        if elems is not None:
            shape = self._dim_symbols_from_ast(elems, shape)
        return TensorVal(shape, result.dtype, result.int_values)

    def _symbolized_reshape(self, node: ast.Call, result: TensorVal) -> TensorVal:
        elems: List[ast.expr] = list(node.args)
        if len(elems) == 1 and isinstance(elems[0], (ast.Tuple, ast.List)):
            elems = list(elems[0].elts)
        shape = result.shape
        if shape is None and elems:
            shape = tuple([None] * len(elems))
        shape = self._dim_symbols_from_ast(elems, shape)
        return TensorVal(shape, result.dtype, result.int_values)

    # ==================================================================
    # rule checks
    # ==================================================================
    def _check_hot_alloc(self, node: ast.Call, display: str) -> None:
        if not self._zones or not self._loops:
            return
        free = {
            child.id
            for child in ast.walk(node)
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
        }
        assigned: Set[str] = set()
        for frame in self._loops:
            assigned |= frame.assigned
        if free & assigned:
            return  # loop-variant: a different buffer each iteration
        zone = self._zone.name if self._zone is not None else "<unknown>"
        self._emit_perf(
            "hot-loop-alloc",
            node,
            f"{display} allocates a loop-invariant buffer on every "
            f"iteration inside kernel zone {zone!r}",
            "hoist the allocation out of the loop and reuse the buffer",
        )

    def _check_batch_loop(
        self, stmt: ast.For | ast.AsyncFor, iter_val: Any, env: Dict[str, Any]
    ) -> None:
        if not self._zones:
            return
        evidence: Optional[str] = None
        if isinstance(iter_val, TensorVal):
            evidence = (
                f"iterates an abstract array of shape {format_shape(iter_val.shape)} "
                "row by row"
            )
        elif (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
            and len(stmt.iter.args) == 1
        ):
            bound = stmt.iter.args[0]
            target: Optional[ast.expr] = None
            if (
                isinstance(bound, ast.Call)
                and isinstance(bound.func, ast.Name)
                and bound.func.id == "len"
                and len(bound.args) == 1
            ):
                target = bound.args[0]
            elif (
                isinstance(bound, ast.Subscript)
                and isinstance(bound.value, ast.Attribute)
                and bound.value.attr == "shape"
                and isinstance(bound.slice, ast.Constant)
                and bound.slice.value == 0
            ):
                target = bound.value.value
            if target is not None and isinstance(self._eval(target, env), TensorVal):
                evidence = f"loops range over {ast.unparse(target)}'s leading dimension"
        if evidence is None:
            return
        zone = self._zone.name if self._zone is not None else "<unknown>"
        self._emit_perf(
            "batch-python-loop",
            stmt,
            f"Python for-loop in kernel zone {zone!r} {evidence}: the "
            "batch dimension is executed one row per interpreter step",
            "replace the loop with a batched backend op "
            "(gather_rows/matmul/einsum over the whole batch)",
        )

    # -- post-run passes -----------------------------------------------
    def _finalize_unfused(self) -> None:
        for node in self._nodes:
            if node.op not in CONTRACTION_OPS or node.zone is None:
                continue
            rec = self._recs_by_node.get(node.index)
            if rec is None or not rec.dead or len(rec.consumers) != 1:
                continue
            cursor = rec.consumers[0]
            hops = [cursor.op]
            while cursor.op in LAYOUT_OPS and cursor.zone == node.zone:
                next_rec = self._recs_by_node.get(cursor.index)
                if next_rec is None or not next_rec.dead or len(next_rec.consumers) != 1:
                    cursor = None  # type: ignore[assignment]
                    break
                cursor = next_rec.consumers[0]
                hops.append(cursor.op)
            if cursor is None or cursor.op not in CONTRACTION_OPS:
                continue
            if cursor.zone != node.zone:
                continue
            via = "directly" if len(hops) == 1 else f"via {'/'.join(hops[:-1])}"
            self._emit_perf_at(
                "unfused-contraction",
                node.line,
                node.col,
                f"{node.op} result in zone {node.zone!r} is a dead "
                f"intermediate feeding the {cursor.op} at line "
                f"{cursor.line} {via}: the pair is fusable",
                "a fused backend can contract the chain without "
                "materializing the intermediate (see the FusionPlan for "
                "this zone)",
            )

    def _finalize_redundant_gathers(self) -> None:
        groups: Dict[Tuple[Any, ...], List[_GatherSite]] = {}
        for site in self._gathers:
            if site.node.zone is None:
                continue
            key = (site.node.zone, site.node.texts, site.loop_key)
            groups.setdefault(key, []).append(site)
        for sites in groups.values():
            if len(sites) < 2:
                continue
            free: Set[str] = set()
            for arg in sites[0].arg_nodes:
                for child in ast.walk(arg):
                    if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                        free.add(child.id)
            if sites[0].loop_key and free & sites[0].loop_assigned:
                continue  # operands change across iterations
            for first, second in zip(sites, sites[1:]):
                a, b = first.node, second.node
                if not (
                    a.branch == b.branch[: len(a.branch)]
                    or b.branch == a.branch[: len(b.branch)]
                ):
                    continue  # mutually exclusive branches
                if any(
                    n.op == "scatter_add_rows" and a.index < n.index < b.index
                    for n in self._nodes
                ):
                    continue
                if any(
                    a.index < seq <= b.index and name in free
                    for seq, name in self._bind_events
                ):
                    continue  # an operand was rebound in between
                self._emit_perf_at(
                    "redundant-gather",
                    b.line,
                    b.col,
                    f"gather_rows({', '.join(a.texts)}) in zone {a.zone!r} "
                    f"repeats the gather at line {a.line} with no "
                    "intervening write to the table or operands",
                    "reuse the first gather's result (the Eff-TT reuse "
                    "path exists for exactly this)",
                )

def _syntactic_findings(ctx: RuleContext) -> List[Finding]:
    """AST-only PERF rules: layout churn, plan-cache bypass, cast chains."""
    findings: List[Finding] = []
    if not ctx.in_zone(KERNEL_ZONES):
        return findings

    def emit(rule_name: str, node: ast.AST, message: str, hint: str) -> None:
        rule = PERF_RULES[rule_name]
        findings.append(
            Finding(
                rule=rule.name,
                rule_id=rule.id,
                severity=rule.severity,
                path=ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                hint=hint,
            )
        )

    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        inner = node.func.value
        inner_attr = (
            inner.func.attr
            if isinstance(inner, ast.Call) and isinstance(inner.func, ast.Attribute)
            else None
        )
        if attr == "reshape" and inner_attr == "transpose":
            emit(
                "layout-churn",
                node,
                "transpose(...).reshape(...) forces a full copy of the "
                "intermediate (non-contiguous view reshaped)",
                "restructure the computation to reshape first, keep a "
                "pre-transposed layout, or suppress with a pragma if the "
                "relayout is the call's contract",
            )
        elif attr == "reshape" and inner_attr == "reshape":
            emit(
                "layout-churn",
                node,
                "reshape(...).reshape(...) — the first reshape is dead "
                "layout churn",
                "collapse the chain into a single reshape",
            )
        elif attr == "transpose" and inner_attr == "transpose":
            emit(
                "layout-churn",
                node,
                "transpose(...).transpose(...) — compose the two "
                "permutations into one",
                "merge the permutations (or drop them if they cancel)",
            )
        elif attr == "transpose" and node.args:
            perm = [
                a.value
                for a in node.args
                if isinstance(a, ast.Constant) and isinstance(a.value, int)
            ]
            if len(perm) == len(node.args) and perm == list(range(len(perm))):
                emit(
                    "layout-churn",
                    node,
                    f"transpose{tuple(perm)} is the identity permutation",
                    "drop the no-op transpose",
                )
        elif attr == "astype" and inner_attr == "astype":
            emit(
                "dtype-churn",
                node,
                "astype(...).astype(...) converts twice; only the last "
                "dtype survives",
                "cast once to the final dtype",
            )
        elif attr == "einsum" and node.args:
            sub = node.args[0]
            dynamic = isinstance(sub, ast.JoinedStr)
            if isinstance(sub, ast.BinOp) and isinstance(
                sub.op, (ast.Add, ast.Mod)
            ):
                for side in (sub.left, sub.right):
                    if isinstance(side, ast.JoinedStr) or (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, str)
                    ):
                        dynamic = True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("format", "join")
            ):
                dynamic = True
            if dynamic:
                emit(
                    "plan-cache-bypass",
                    node,
                    "einsum subscripts are built dynamically at the call "
                    "site: every call computes a fresh signature and the "
                    "ContractionPlanCache key never repeats",
                    "precompute the subscript string once (module "
                    "constant or per-spec cache) so the plan cache can "
                    "hit",
                )
    return findings


def interpret_module_perf(
    ctx: RuleContext,
    zone_overrides: Optional[Dict[str, str]] = None,
    collect_findings: bool = True,
) -> PerfModuleResult:
    """Run the perf interpreter + syntactic rules over one module."""
    interp = _PerfInterpreter(
        ctx, zone_overrides=zone_overrides, collect_findings=collect_findings
    )
    interp.run()
    interp._finalize_unfused()
    interp._finalize_redundant_gathers()
    findings = list(interp.perf_findings)
    if collect_findings:
        findings.extend(_syntactic_findings(ctx))
    # Branch re-execution (Try bodies run once per handler) can duplicate
    # findings at identical positions; keep one.
    seen: Set[Tuple[str, int, int, str]] = set()
    unique: List[Finding] = []
    for finding in findings:
        key = (finding.rule_id, finding.line, finding.col, finding.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    unique.sort(key=lambda f: f.sort_key)
    chains = extract_chains(interp._nodes, interp._recs_by_node)
    return PerfModuleResult(
        findings=unique,
        nodes=interp._nodes,
        recs_by_node=interp._recs_by_node,
        chains=chains,
    )
