"""perfcheck: static kernel-zone cost & fusion analyzer.

Reconstructs the per-zone dataflow graph of ``ArrayBackend`` call sites,
prices each node with the same formulas ``InstrumentedBackend`` uses at
runtime, reports one-sided PERF findings, and emits the FusionPlan
contract consumed by the fused backend.  See DESIGN.md §14.
"""

from .calibrate import (
    CalibrationBackend,
    CalibrationReport,
    ZoneComparison,
    run_calibration,
)
from .checker import build_fusion_plan, perfcheck_paths, perfcheck_source
from .interp import PERF_RULES, PerfRuleInfo

__all__ = [
    "PERF_RULES",
    "PerfRuleInfo",
    "perfcheck_paths",
    "perfcheck_source",
    "build_fusion_plan",
    "CalibrationBackend",
    "CalibrationReport",
    "ZoneComparison",
    "run_calibration",
]
