"""Kernel-zone dataflow graph and FusionPlan extraction.

The perfcheck interpreter records one :class:`OpNode` per ``ArrayBackend``
call site (plus the layout/tensor-method sites between them) while it
abstractly executes a module.  Each node carries its zone, loop depth,
symbolic output shape and a static :class:`~.costmodel.OpCost`.  Dead
single-consumer producer→consumer edges — an intermediate array that is
provably consumed exactly once and never escapes — are the *fusable
links*; maximal paths through them are the FusionPlan chains the future
fused backend consumes.

FusionPlan schema (version 1, documented in DESIGN.md §14)::

    {
      "version": 1,
      "zones": {
        "<zone>": {
          "nodes": <int>,
          "chains": [
            {
              "path": "repro/embeddings/tt_embedding.py",
              "in_loop": true,
              "ops": [
                {"op": "matmul", "line": 158,
                 "out_shape": "(batch, r_prev * n_k, suffix_cols)",
                 "out_dtype": "float32" | null,
                 "flops": {"expr": ..., "value": ...},
                 "bytes": {"expr": ..., "value": ...}},
                ...
              ],
              "flops": {"expr": ..., "value": ...},
              "bytes": {"expr": ..., "value": ...},
              "intermediate_bytes": [
                {"line": 158, "size": {"expr": ..., "value": ...}}
              ]
            }
          ]
        }
      }
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..shapecheck.domain import Dim, format_shape
from .costmodel import Cost, cost_add, cost_to_json, nbytes_cost

__all__ = ["OpNode", "ValueRec", "Chain", "extract_chains", "fusion_plan_json"]

# Ops that may participate in a fused chain.  Allocations and in-place
# scatter/axpy sinks are excluded: the former are buffer creation, the
# latter have no output value to chain through.
CHAINABLE_OPS = frozenset(
    {
        "matmul",
        "einsum",
        "dot",
        "gather_rows",
        "reshape",
        "transpose",
        "astype",
        "asarray",
        "exp",
        "maximum",
        "minimum",
        "where",
        "sum",
        "mean",
        "max",
        "min",
        "prod",
        "sqrt",
    }
)

CONTRACTION_OPS = frozenset({"matmul", "einsum", "dot"})
LAYOUT_OPS = frozenset({"reshape", "transpose", "astype", "asarray"})
ALLOC_OPS = frozenset({"zeros", "ones", "empty", "full", "zeros_like", "ones_like", "empty_like", "full_like"})


@dataclass
class OpNode:
    """One recorded backend/tensor-method call site."""

    index: int
    op: str
    rel: str
    line: int
    col: int
    zone: Optional[str]
    loop_depth: int
    branch: Tuple[int, ...]
    out_shape: Optional[Tuple[Dim, ...]]
    out_dtype: Optional[str]
    flops: Optional[Cost]
    bytes: Optional[Cost]
    # Free-form per-op annotations (e.g. gather operand texts for PERF006).
    texts: Tuple[str, ...] = ()


@dataclass
class ValueRec:
    """Liveness accounting for one tracked abstract array value."""

    value: Any  # strong ref: keeps id() stable for the module run
    node: OpNode
    reads: int = 0
    claims: int = 0
    escaped: bool = False
    consumers: List[OpNode] = field(default_factory=list)

    @property
    def dead(self) -> bool:
        """Provably consumed only by recorded ops: fusable intermediate."""
        return not self.escaped and self.reads <= self.claims


@dataclass
class Chain:
    """Maximal fusable producer→consumer path within one zone."""

    zone: str
    rel: str
    nodes: Tuple[OpNode, ...]

    @property
    def in_loop(self) -> bool:
        return any(node.loop_depth > 0 for node in self.nodes)

    def signature(self) -> Tuple[Any, ...]:
        return (self.zone, self.rel, tuple((n.op, n.line, n.col) for n in self.nodes))


def extract_chains(
    nodes: List[OpNode], recs_by_node: Dict[int, ValueRec]
) -> List[Chain]:
    """Maximal paths through dead single-consumer links between chainable ops.

    ``recs_by_node`` maps node index -> the ValueRec of that node's
    output (absent for sink ops).  A link p→c exists when p's output is
    dead, has exactly one recorded consumer c, and both ends are
    chainable ops in the same named zone.
    """
    links: Dict[int, int] = {}
    for node in nodes:
        if node.zone is None or node.op not in CHAINABLE_OPS:
            continue
        rec = recs_by_node.get(node.index)
        if rec is None or not rec.dead or len(rec.consumers) != 1:
            continue
        consumer = rec.consumers[0]
        if consumer.zone != node.zone or consumer.op not in CHAINABLE_OPS:
            continue
        links[node.index] = consumer.index

    by_index = {node.index: node for node in nodes}
    targets = set(links.values())
    chains: List[Chain] = []
    for start in sorted(links):
        if start in targets:
            continue
        path = [start]
        cursor = start
        while cursor in links:
            cursor = links[cursor]
            path.append(cursor)
        if len(path) < 2:
            continue
        chain_nodes = tuple(by_index[i] for i in path)
        zone = chain_nodes[0].zone
        assert zone is not None
        chains.append(Chain(zone=zone, rel=chain_nodes[0].rel, nodes=chain_nodes))
    return chains


def _node_json(node: OpNode) -> Dict[str, Any]:
    return {
        "op": node.op,
        "line": node.line,
        "out_shape": format_shape(node.out_shape),
        "out_dtype": node.out_dtype,
        "flops": cost_to_json(node.flops),
        "bytes": cost_to_json(node.bytes),
    }


def _chain_json(chain: Chain) -> Dict[str, Any]:
    intermediates = []
    for node in chain.nodes[:-1]:
        intermediates.append(
            {
                "line": node.line,
                "size": cost_to_json(nbytes_cost(node.out_shape, node.out_dtype)),
            }
        )
    return {
        "path": chain.rel,
        "in_loop": chain.in_loop,
        "ops": [_node_json(node) for node in chain.nodes],
        "flops": cost_to_json(cost_add(*(n.flops for n in chain.nodes))),
        "bytes": cost_to_json(cost_add(*(n.bytes for n in chain.nodes))),
        "intermediate_bytes": intermediates,
    }


def fusion_plan_json(nodes: List[OpNode], chains: List[Chain]) -> Dict[str, Any]:
    """Assemble the FusionPlan document from all modules' graphs."""
    zones: Dict[str, Dict[str, Any]] = {}
    for node in nodes:
        if node.zone is None or node.zone == "<unknown>":
            continue
        zones.setdefault(node.zone, {"nodes": 0, "chains": []})["nodes"] += 1
    seen = set()
    for chain in sorted(chains, key=lambda c: (c.zone, c.rel, c.nodes[0].line)):
        if chain.zone == "<unknown>":
            continue
        sig = chain.signature()
        if sig in seen:
            continue
        seen.add(sig)
        zones.setdefault(chain.zone, {"nodes": 0, "chains": []})["chains"].append(
            _chain_json(chain)
        )
    return {"version": 1, "zones": dict(sorted(zones.items()))}
