"""Calibration gate: static cost formulas vs. measured zone counters.

Perfcheck's FusionPlan numbers are only trustworthy if the *formulas*
behind them match what :class:`~repro.backend.instrumented.InstrumentedBackend`
actually measures.  :class:`CalibrationBackend` closes that loop: it is a
bitwise-transparent wrapper (forwards every op to the reference numpy
backend) that prices each call with the perfcheck cost model applied to
the *runtime* shapes — the same code path the static analyzer uses, with
every dimension concrete.  :func:`run_calibration` then trains a
quickcheck-sized Eff-TT DLRM under both wrappers and compares the
per-zone FLOP/byte totals; any relative error beyond the tolerance means
the static model has drifted from the measured truth.

Because both sides resolve einsum costs through the shared
:class:`~repro.backend.plan_cache.ContractionPlanCache` (the calibration
side via :meth:`einsum_plan_for_shapes`, keyed identically), agreement
is expected to be exact; the 5% tolerance in the gate is slack for
future backends whose counters are sampled rather than computed.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ...backend.instrumented import InstrumentedBackend, KernelStats
from ...backend.numpy_backend import NumpyBackend
from ...backend.plan_cache import EinsumPlan, get_plan_cache
from ...backend.protocol import ArrayBackend, DTypeLike, Shape
from . import costmodel

__all__ = ["CalibrationBackend", "ZoneComparison", "CalibrationReport", "run_calibration"]

UNZONED = "unzoned"


def _shape(arr: np.ndarray) -> Tuple[int, ...]:
    return tuple(int(d) for d in arr.shape)


def _dtype(arr: np.ndarray) -> str:
    return str(arr.dtype)


def _value(cost: Optional[costmodel.Cost]) -> int:
    # Runtime shapes are fully concrete, so a symbolic or unknown cost
    # here is a bug in the model, not missing information.
    assert cost is not None, "calibration saw an unknown cost for concrete shapes"
    value = cost.value
    assert value is not None, "calibration cost did not collapse to an integer"
    return value


class CalibrationBackend:
    """Counting wrapper priced by the static perfcheck cost model.

    Satisfies :class:`~repro.backend.protocol.ArrayBackend`; results are
    bitwise-identical to the wrapped backend (the reference numpy
    backend by default).
    """

    def __init__(self, inner: Optional[ArrayBackend] = None) -> None:
        self.inner: ArrayBackend = inner if inner is not None else NumpyBackend()
        self.name = f"calibration[{self.inner.name}]"
        self.zone_stats: Dict[str, KernelStats] = {}
        self._zone_stack: List[str] = []

    @property
    def current_zone(self) -> str:
        return self._zone_stack[-1] if self._zone_stack else UNZONED

    def reset(self) -> None:
        self.zone_stats.clear()

    @contextlib.contextmanager
    def zone(self, name: str) -> Iterator[None]:
        self._zone_stack.append(name)
        try:
            yield
        finally:
            self._zone_stack.pop()

    def _record(self, cost: costmodel.OpCost) -> None:
        stats = self.zone_stats.setdefault(self.current_zone, KernelStats())
        stats.add(_value(cost.flops), _value(cost.bytes))

    # -- allocation ----------------------------------------------------
    def zeros(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        out = self.inner.zeros(shape, dtype)
        self._record(costmodel.alloc_cost(_shape(out), _dtype(out)))
        return out

    def ones(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        out = self.inner.ones(shape, dtype)
        self._record(costmodel.alloc_cost(_shape(out), _dtype(out)))
        return out

    def empty(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        out = self.inner.empty(shape, dtype)
        self._record(costmodel.alloc_cost(_shape(out), _dtype(out)))
        return out

    def full(self, shape: Shape, fill_value: float, dtype: DTypeLike) -> np.ndarray:
        out = self.inner.full(shape, fill_value, dtype)
        self._record(costmodel.alloc_cost(_shape(out), _dtype(out)))
        return out

    def asarray(self, a: Any, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        out = self.inner.asarray(a, dtype=dtype)
        self._record(costmodel.asarray_cost())
        return out

    # -- contraction ---------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = self.inner.matmul(a, b)
        self._record(
            costmodel.matmul_cost(
                _shape(a), _dtype(a), _shape(b), _dtype(b), _shape(out), _dtype(out)
            )
        )
        return out

    def einsum(
        self, subscripts: str, *operands: np.ndarray, plan: Optional[EinsumPlan] = None
    ) -> np.ndarray:
        out = self.inner.einsum(subscripts, *operands, plan=plan)
        if plan is None:
            plan = get_plan_cache().einsum_plan_for_shapes(
                subscripts, [_shape(op) for op in operands]
            )
        traffic = costmodel.cost_add(
            *(costmodel.nbytes_cost(_shape(op), _dtype(op)) for op in operands),
            costmodel.nbytes_cost(_shape(out), _dtype(out)),
        )
        self._record(
            costmodel.OpCost(
                flops=costmodel.Cost.concrete(plan.flop_count), bytes=traffic
            )
        )
        return out

    # -- sparse movement -----------------------------------------------
    def gather_rows(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        out = self.inner.gather_rows(table, indices)
        self._record(costmodel.gather_cost(_shape(out), _dtype(out)))
        return out

    def scatter_add_rows(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        scale: float = 1.0,
    ) -> None:
        self.inner.scatter_add_rows(target, indices, values, scale=scale)
        self._record(
            costmodel.scatter_cost(_shape(values), _dtype(values), scale == 1.0)
        )

    # -- elementwise ---------------------------------------------------
    def exp(self, a: np.ndarray) -> np.ndarray:
        out = self.inner.exp(a)
        self._record(
            costmodel.elementwise_cost(
                "exp", _shape(a), _dtype(a), _shape(out), _dtype(out)
            )
        )
        return out

    def maximum(self, a: Any, b: Any) -> np.ndarray:
        out = self.inner.maximum(a, b)
        self._record(
            costmodel.elementwise_cost("maximum", None, None, _shape(out), _dtype(out))
        )
        return out

    def where(self, cond: np.ndarray, a: Any, b: Any) -> np.ndarray:
        out = self.inner.where(cond, a, b)
        self._record(
            costmodel.elementwise_cost("where", None, None, _shape(out), _dtype(out))
        )
        return out

    def axpy(self, target: np.ndarray, values: np.ndarray, scale: float) -> None:
        self.inner.axpy(target, values, scale)
        self._record(
            costmodel.elementwise_cost("axpy", _shape(values), _dtype(values), None, None)
        )


@dataclass(frozen=True)
class ZoneComparison:
    """Static vs. measured totals for one kernel zone."""

    zone: str
    static_flops: int
    measured_flops: int
    static_bytes: int
    measured_bytes: int

    @property
    def flops_rel_err(self) -> float:
        if self.measured_flops == 0:
            return 0.0 if self.static_flops == 0 else float("inf")
        return abs(self.static_flops - self.measured_flops) / self.measured_flops

    @property
    def bytes_rel_err(self) -> float:
        if self.measured_bytes == 0:
            return 0.0 if self.static_bytes == 0 else float("inf")
        return abs(self.static_bytes - self.measured_bytes) / self.measured_bytes


@dataclass
class CalibrationReport:
    """Per-zone agreement between the cost model and measurement."""

    zones: List[ZoneComparison] = field(default_factory=list)
    tolerance: float = 0.05
    losses_match: bool = True

    @property
    def ok(self) -> bool:
        return (
            self.losses_match
            and bool(self.zones)
            and all(
                z.flops_rel_err <= self.tolerance
                and z.bytes_rel_err <= self.tolerance
                for z in self.zones
            )
        )

    @property
    def max_rel_err(self) -> float:
        if not self.zones:
            return float("inf")
        return max(max(z.flops_rel_err, z.bytes_rel_err) for z in self.zones)


def run_calibration(steps: int = 3, tolerance: float = 0.05) -> CalibrationReport:
    """Train a quickcheck-sized Eff-TT DLRM under both counting wrappers.

    The workload mirrors the quickcheck backend-equivalence gate: a
    small synthetic Criteo-like click log through the Eff-TT DLRM.  The
    two runs must produce identical loss trajectories (both wrappers are
    bitwise-transparent) and per-zone FLOP/byte totals within
    ``tolerance`` for every zone either side observed.
    """
    from ...backend import use_backend
    from ...data.dataloader import SyntheticClickLog
    from ...data.datasets import criteo_kaggle_like
    from ...models.config import DLRMConfig, EmbeddingBackend
    from ...models.dlrm import DLRM

    spec = criteo_kaggle_like(scale=3e-5)
    log = SyntheticClickLog(spec, batch_size=128, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec,
        embedding_dim=8,
        backend=EmbeddingBackend.EFF_TT,
        tt_rank=8,
        bottom_mlp=(16,),
        top_mlp=(16,),
    )

    def _losses_under(backend: ArrayBackend) -> List[float]:
        with use_backend(backend):
            model = DLRM(cfg, seed=0)
            return [model.train_step(log.batch(i), lr=0.1).loss for i in range(steps)]

    measured = InstrumentedBackend()
    static = CalibrationBackend()
    measured_losses = _losses_under(measured)
    static_losses = _losses_under(static)

    report = CalibrationReport(
        tolerance=tolerance, losses_match=measured_losses == static_losses
    )
    for zone in sorted(set(measured.zone_stats) | set(static.zone_stats)):
        m = measured.zone_stats.get(zone, KernelStats())
        s = static.zone_stats.get(zone, KernelStats())
        report.zones.append(
            ZoneComparison(
                zone=zone,
                static_flops=s.flops,
                measured_flops=m.flops,
                static_bytes=s.bytes,
                measured_bytes=m.bytes,
            )
        )
    return report
