"""Structured lint findings.

``reprolint`` rules emit :class:`Finding` records rather than printing:
the CLI formats them for humans, the pytest self-check asserts on them,
and the JSON output mode serializes them for CI annotation.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple

__all__ = ["Severity", "Finding"]


class Severity(enum.IntEnum):
    """Finding severity.  ERROR findings fail the lint run (exit 1);
    WARNING findings are advisory (perf lints, style)."""

    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic anchored to a source location.

    Attributes
    ----------
    rule:
        Symbolic rule name (``unseeded-rng``), used in
        ``# reprolint: disable=`` pragmas.
    rule_id:
        Stable short id (``REP001``).
    severity:
        :class:`Severity` of the diagnostic.
    path:
        Path of the offending file as scanned.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        What is wrong.
    hint:
        How to fix it (one line, actionable).
    """

    rule: str
    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        """``path:line:col: SEVERITY rule message  [hint]`` one-liner."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.label} [{self.rule_id}/{self.rule}] {self.message}"
        )
        if self.hint:
            text += f"  (fix: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["severity"] = self.severity.label
        return data

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)
