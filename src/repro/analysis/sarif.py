"""SARIF 2.1.0 serialization for lint/shapecheck results.

Emits the minimal static-analysis-results interchange format that CI
systems (GitHub code scanning, Azure DevOps) ingest: one ``run`` with a
tool descriptor, a rule catalog, and one ``result`` per finding.
:func:`results_to_sarif_bundle` merges several tools into a single
document with one run per tool — the ``repro analyze --format sarif``
output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Protocol, Sequence, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import LintResult

__all__ = ["result_to_sarif", "results_to_sarif_bundle"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


class _RuleMeta(Protocol):
    """What we need from a rule to describe it in the SARIF catalog
    (satisfied by both lint ``Rule`` objects and ``ShapeRuleInfo``)."""

    id: str
    name: str
    severity: Severity
    description: str


def _sarif_level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_descriptor(rule: _RuleMeta) -> Dict[str, Any]:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": _sarif_level(rule.severity)},
    }


def _result(finding: Finding, rule_ids: List[str]) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _sarif_level(finding.severity),
        "message": {
            "text": finding.message
            + (f" (fix: {finding.hint})" if finding.hint else "")
        },
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.rule_id in rule_ids:
        entry["ruleIndex"] = rule_ids.index(finding.rule_id)
    return entry


def _run(
    result: LintResult,
    tool_name: str,
    rules: Iterable[_RuleMeta],
) -> Dict[str, Any]:
    descriptors = [_rule_descriptor(rule) for rule in rules]
    rule_ids = [desc["id"] for desc in descriptors]
    return {
        "tool": {
            "driver": {
                "name": tool_name,
                "informationUri": "https://example.invalid/repro",
                "rules": descriptors,
            }
        },
        "results": [_result(finding, rule_ids) for finding in result.findings],
    }


def result_to_sarif(
    result: LintResult,
    tool_name: str,
    rules: Iterable[_RuleMeta],
) -> str:
    """Serialize one :class:`LintResult` as a SARIF 2.1.0 document."""
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [_run(result, tool_name, rules)],
    }
    return json.dumps(document, indent=2)


def results_to_sarif_bundle(
    runs: Sequence[Tuple[LintResult, str, Iterable[_RuleMeta]]],
) -> str:
    """Serialize several tools' results as one SARIF document.

    Each ``(result, tool_name, rules)`` triple becomes its own ``run``
    with its own tool descriptor and rule catalog, so a CI viewer can
    attribute every finding to the analyzer that produced it while
    ingesting a single artifact.
    """
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [_run(result, name, rules) for result, name, rules in runs],
    }
    return json.dumps(document, indent=2)
