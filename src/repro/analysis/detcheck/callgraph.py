"""Whole-program index and call graph for detcheck.

The program is the set of modules handed to one ``detcheck`` run.  Each
module is parsed once through reprolint's :func:`build_context` (so the
import-alias map — ``np`` → ``numpy``, ``from repro.utils.rng import
ensure_rng`` → ``repro.utils.rng.ensure_rng`` — is shared with the
linter), then indexed three ways:

* **by qualname** — ``repro.sharding.server.ShardedParameterServer.
  state_arrays``;
* **by module-local name** — for resolving bare calls and ``self.m()``;
* **by bare method name** — the fallback for ``x.m(...)`` receiver
  calls, which merges the summaries of *every* program function named
  ``m``.  This is deliberately CHA-style imprecise in the sound
  direction: merged summaries can only add taints/flows, never drop a
  finding.

:func:`Program.scc_order` returns Tarjan SCCs callee-first so the
summary pass can run bottom-up, iterating each cycle to a fixpoint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.rules import RuleContext, build_context
from repro.analysis.detcheck.taint import Value, annotation_value

__all__ = ["FunctionInfo", "ModuleInfo", "Program", "build_program"]

#: Receiver-call attribute names never resolved against program
#: functions: ubiquitous builtin/container protocol names that would
#: otherwise merge unrelated summaries (``d.get`` vs ``Queue.get`` is
#: disambiguated by the receiver's container shape instead).
_NO_MERGE_ATTRS = frozenset(
    {
        "append", "extend", "add", "update", "pop", "remove", "clear",
        "items", "keys", "values", "copy", "join", "split", "strip",
        "format", "encode", "decode", "sort", "reverse", "index",
        "count", "startswith", "endswith", "read", "write", "close",
    }
)


@dataclass
class FunctionInfo:
    """One program function (or method)."""

    qualname: str
    name: str
    module: str
    class_name: Optional[str]
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Explicit parameter names, ``self``/``cls`` stripped for methods.
    params: Tuple[str, ...] = ()
    #: Abstract values implied by the parameter annotations, aligned
    #: with :attr:`params`.
    param_values: Tuple[Value, ...] = ()
    #: Abstract value implied by the return annotation.
    return_value: Value = field(default_factory=Value)


@dataclass
class ModuleInfo:
    """One parsed module plus its detcheck-specific indexes."""

    modname: str
    ctx: RuleContext
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class name -> attribute name -> annotation-derived value
    #: (``self.components`` resolving to ``Dict[str, float]``).
    class_attrs: Dict[str, Dict[str, Value]] = field(default_factory=dict)


def _module_name(rel: str) -> str:
    stem = rel[:-3] if rel.endswith(".py") else rel
    return stem.replace("/", ".")


def _function_info(
    node: ast.AST, modname: str, class_name: Optional[str]
) -> FunctionInfo:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    arg_nodes = list(node.args.posonlyargs) + list(node.args.args)
    if class_name and arg_nodes and arg_nodes[0].arg in ("self", "cls"):
        arg_nodes = arg_nodes[1:]
    params = tuple(a.arg for a in arg_nodes)
    param_values = tuple(annotation_value(a.annotation) for a in arg_nodes)
    prefix = f"{modname}.{class_name}." if class_name else f"{modname}."
    return FunctionInfo(
        qualname=f"{prefix}{node.name}",
        name=node.name,
        module=modname,
        class_name=class_name,
        node=node,
        params=params,
        param_values=param_values,
        return_value=annotation_value(node.returns),
    )


def _index_module(ctx: RuleContext) -> ModuleInfo:
    info = ModuleInfo(modname=_module_name(ctx.rel), ctx=ctx)
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _function_info(node, info.modname, None)
            info.functions[fn.qualname] = fn
        elif isinstance(node, ast.ClassDef):
            attrs: Dict[str, Value] = {}
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    attrs[item.target.id] = annotation_value(item.annotation)
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = _function_info(item, info.modname, node.name)
                    info.functions[fn.qualname] = fn
                    if item.name == "__init__":
                        for stmt in ast.walk(item):
                            if (
                                isinstance(stmt, ast.AnnAssign)
                                and isinstance(stmt.target, ast.Attribute)
                                and isinstance(stmt.target.value, ast.Name)
                                and stmt.target.value.id == "self"
                            ):
                                attrs.setdefault(
                                    stmt.target.attr,
                                    annotation_value(stmt.annotation),
                                )
            info.class_attrs[node.name] = attrs
    return info


@dataclass
class Program:
    """All modules of one detcheck run plus the call graph."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    by_name: Dict[str, List[str]] = field(default_factory=dict)

    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.modname] = info
        for qualname, fn in info.functions.items():
            self.functions[qualname] = fn
            self.by_name.setdefault(fn.name, []).append(qualname)

    # -- call resolution ---------------------------------------------

    def resolve_callees(
        self, fn: FunctionInfo, call: ast.Call
    ) -> List[FunctionInfo]:
        """Program functions a call may dispatch to (possibly empty)."""
        module = self.modules[fn.module]
        resolved = module.ctx.resolve_call(call.func)
        if resolved is not None:
            if resolved in self.functions:
                return [self.functions[resolved]]
            local = f"{fn.module}.{resolved}"
            if local in self.functions:
                return [self.functions[local]]
        func = call.func
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and fn.class_name is not None
            ):
                own = f"{fn.module}.{fn.class_name}.{func.attr}"
                if own in self.functions:
                    return [self.functions[own]]
            if func.attr in _NO_MERGE_ATTRS or func.attr.startswith("__"):
                return []
            return [
                self.functions[q] for q in self.by_name.get(func.attr, ())
            ]
        return []

    # -- bottom-up order ---------------------------------------------

    def scc_order(self) -> List[List[str]]:
        """Tarjan SCCs, emitted callees-first (iterative)."""
        edges: Dict[str, List[str]] = {}
        for qualname, fn in self.functions.items():
            targets: List[str] = []
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    targets.extend(
                        c.qualname for c in self.resolve_callees(fn, node)
                    )
            edges[qualname] = targets

        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        for root in self.functions:
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_idx = work[-1]
                if edge_idx == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                targets = edges[node]
                while edge_idx < len(targets):
                    succ = targets[edge_idx]
                    edge_idx += 1
                    if succ not in index:
                        work[-1] = (node, edge_idx)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if on_stack.get(succ):
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work[-1] = (node, edge_idx)
                if edge_idx >= len(targets):
                    work.pop()
                    if lowlink[node] == index[node]:
                        component: List[str] = []
                        while True:
                            member = stack.pop()
                            on_stack[member] = False
                            component.append(member)
                            if member == node:
                                break
                        sccs.append(component)
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[node])
        return sccs


def build_program(
    files: List[Tuple[Path, str, str]],
) -> Program:
    """Parse ``(path, rel, source)`` triples into a :class:`Program`.

    Raises ``SyntaxError`` for unparsable sources — callers handle the
    per-file DET000 bookkeeping.
    """
    program = Program()
    for path, rel, source in files:
        ctx = build_context(path, rel, source)
        program.add_module(_index_module(ctx))
    return program
