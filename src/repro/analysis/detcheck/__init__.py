"""detcheck — interprocedural determinism-taint analysis.

Statically proves the bitwise-reproducibility invariants the dynamic
gates (quickcheck, chaos, numsan) only sample: nondeterministic sources
(entropy RNG, wall clock, environment, address identity, unordered
container iteration) must never reach checkpointed state, the PS apply
path, placement plans, or SimClock-zone decisions.  See DESIGN.md §12.
"""

from repro.analysis.detcheck.catalog import (
    DET_RULES,
    DetRuleInfo,
    SinkKind,
    SourceKind,
)
from repro.analysis.detcheck.checker import detcheck_paths, detcheck_source
from repro.analysis.detcheck.taint import FunctionSummary, Taint, Value

__all__ = [
    "DET_RULES",
    "DetRuleInfo",
    "SourceKind",
    "SinkKind",
    "FunctionSummary",
    "Taint",
    "Value",
    "detcheck_paths",
    "detcheck_source",
]
