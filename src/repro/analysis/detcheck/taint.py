"""The determinism-taint lattice and function summaries.

The abstract value tracked for every expression is deliberately small —
detcheck follows shapecheck's one-sided soundness posture (findings
only): an *unknown* value is untainted and unordered facts never arise
from unknowns, so the analyzer can only under-report, never invent a
finding from ignorance.

:class:`Value` carries four independent fact families:

* **source taints** — a set of :class:`~.catalog.SourceKind` tags with
  the line/detail of the originating expression (entropy RNG, wall
  clock, environment, address identity);
* **container shape** — ``'dict' | 'set' | 'list' | 'sorted' |
  'queue' | None``; enough to decide whether iterating the value has a
  canonical order;
* **float provability** — ``is_float`` (the value itself) and
  ``value_is_float`` (a dict's values), used to gate DET002 so integer
  counters summed over dicts stay clean;
* **seam facts** — ``unordered`` (the value was produced by iterating
  an unordered container; intraprocedural only, never summarized) and
  ``from_queue`` / ``queue_shared`` (the DET006 ownership markers).

:class:`FunctionSummary` is what crosses function boundaries: which
source kinds the return value carries, which parameter positions flow
to the return, the return's container shape, and which parameter
positions land in a written checkpoint payload.  Summaries are frozen
and compared for equality by the fixpoint driver.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Set, Tuple

from repro.analysis.detcheck.catalog import SourceKind

__all__ = [
    "Taint",
    "Value",
    "FunctionSummary",
    "EMPTY_SUMMARY",
    "annotation_value",
]


@dataclass(frozen=True)
class Taint:
    """One source fact: what kind, where it entered, what it was."""

    kind: SourceKind
    line: int
    detail: str


@dataclass
class Value:
    """Abstract value for one expression / variable binding."""

    taints: Set[Taint] = field(default_factory=set)
    container: Optional[str] = None
    is_float: bool = False
    value_is_float: bool = False
    unordered: bool = False
    from_queue: bool = False
    queue_shared: bool = False
    param_deps: Set[int] = field(default_factory=set)

    @property
    def kinds(self) -> Set[SourceKind]:
        return {t.kind for t in self.taints}

    def clone(self) -> "Value":
        return Value(
            taints=set(self.taints),
            container=self.container,
            is_float=self.is_float,
            value_is_float=self.value_is_float,
            unordered=self.unordered,
            from_queue=self.from_queue,
            queue_shared=self.queue_shared,
            param_deps=set(self.param_deps),
        )

    def merge(self, other: "Value") -> "Value":
        """Join two values (used at control-flow merges)."""
        return Value(
            taints=self.taints | other.taints,
            container=self.container
            if self.container == other.container
            else None,
            is_float=self.is_float or other.is_float,
            value_is_float=self.value_is_float or other.value_is_float,
            unordered=self.unordered or other.unordered,
            from_queue=self.from_queue or other.from_queue,
            queue_shared=self.queue_shared or other.queue_shared,
            param_deps=self.param_deps | other.param_deps,
        )

    @staticmethod
    def combine(values: "Tuple[Value, ...]") -> "Value":
        """Dataflow-combine operands of an expression.

        Taints, float-ness, unorderedness and parameter dependencies
        union; container shape does not survive combination (``a + b``
        of two dicts is not usefully a dict for ordering purposes).
        """
        out = Value()
        for value in values:
            out.taints |= value.taints
            out.is_float = out.is_float or value.is_float
            out.unordered = out.unordered or value.unordered
            out.param_deps |= value.param_deps
        return out


@dataclass(frozen=True)
class FunctionSummary:
    """Flow facts for one function, as seen from a call site.

    Parameter positions are caller-side: ``self`` is stripped for
    methods, so position 0 is the first explicit argument.
    """

    returns: FrozenSet[SourceKind] = frozenset()
    param_flow: FrozenSet[int] = frozenset()
    returns_container: Optional[str] = None
    returns_float: bool = False
    checkpoint_sink_params: FrozenSet[int] = frozenset()

    def merge(self, other: "FunctionSummary") -> "FunctionSummary":
        return FunctionSummary(
            returns=self.returns | other.returns,
            param_flow=self.param_flow | other.param_flow,
            returns_container=self.returns_container
            if self.returns_container == other.returns_container
            else None,
            returns_float=self.returns_float or other.returns_float,
            checkpoint_sink_params=self.checkpoint_sink_params
            | other.checkpoint_sink_params,
        )


EMPTY_SUMMARY = FunctionSummary()


def _annotation_text(node: ast.expr) -> str:
    """Flatten an annotation AST to a best-effort dotted string."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return ""


def annotation_value(node: Optional[ast.expr]) -> Value:
    """Abstract value implied by a type annotation.

    ``Dict[str, float]`` / ``Mapping[...]`` give a dict container (with
    ``value_is_float`` when the value type mentions ``float``);
    ``Set``/``FrozenSet`` give a set; ``List``/``Sequence``/``Tuple``
    give a list; anything whose head ends in ``Queue`` is a queue
    endpoint; a bare ``float`` marks the value float.  Unknown
    annotations yield the untainted unknown value.
    """
    value = Value()
    if node is None:
        return value
    text = _annotation_text(node)
    if not text:
        return value
    head = text.split("[", 1)[0].strip()
    tail = text.split("[", 1)[1] if "[" in text else ""
    short = head.rsplit(".", 1)[-1]
    if short in ("Dict", "dict", "Mapping", "MutableMapping", "OrderedDict"):
        value.container = "dict"
        parts = tail.rsplit("]", 1)[0].split(",", 1)
        if len(parts) == 2 and "float" in parts[1]:
            value.value_is_float = True
    elif short in ("Set", "set", "FrozenSet", "frozenset", "AbstractSet"):
        value.container = "set"
    elif short in ("List", "list", "Sequence", "Tuple", "tuple", "Iterable"):
        value.container = "list"
    elif short.endswith("Queue"):
        value.container = "queue"
    elif short == "float":
        value.is_float = True
    return value
