"""The detcheck catalogs: sources, sinks, zones, and the DET rule table.

Everything the taint engine treats as special is declared here, in one
place, so the analysis itself stays mechanism and the policy stays
data.  Three catalogs:

* **Sources** — expressions whose value is not a pure function of the
  program's seeded inputs: entropy-seeded RNG constructors, wall-clock
  reads, environment lookups, and address/hash identity.  Iteration
  order over ``dict``/``set`` is the fourth source family, but it is
  positional (a property of a loop, not a call) and handled by the
  interpreter directly.
* **Sinks** — places where a nondeterministic value stops being a
  local curiosity and becomes a broken invariant: checkpoint payloads
  (``state_arrays`` returns, ``CheckpointStore.save`` /
  ``np.savez*`` arguments), the parameter-server apply path, and
  placement-plan construction.
* **Zones** — module prefixes (shared with :mod:`repro.analysis.rules`)
  where the escape rules DET004/DET005 apply.

The DET rule table mirrors shapecheck's ``ShapeRuleInfo`` so the SARIF
emitter and the CLI treat all three analyzers uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.analysis.findings import Severity
from repro.analysis.rules import (
    EXCEPTION_ZONES,
    SIMCLOCK_ZONES,
)

__all__ = [
    "SourceKind",
    "SinkKind",
    "DetRuleInfo",
    "DET_RULES",
    "ENTROPY_RNG_CALLS",
    "WALL_CLOCK_CALLS",
    "ENV_CALLS",
    "ADDRESS_CALLS",
    "PAYLOAD_FUNCTION_NAMES",
    "PAYLOAD_WRITER_CALLS",
    "STATE_SINK_METHODS",
    "PLACEMENT_CONSTRUCTORS",
    "ORDER_INSENSITIVE_REDUCERS",
    "ORDER_SENSITIVE_COMBINERS",
    "QUEUE_TYPE_MARKERS",
    "COPY_CALLS",
    "RNG_COERCERS",
    "DETERMINISM_ZONES",
    "SIMCLOCK_DECISION_ZONES",
    "SOURCE_LABEL",
]


class SourceKind(enum.Enum):
    """Families of nondeterminism a value can carry."""

    ENTROPY_RNG = "entropy-rng"
    WALL_CLOCK = "wall-clock"
    ENV = "environment"
    ADDRESS = "address"


#: Human label used in finding messages, keyed by source kind.
SOURCE_LABEL: Dict[SourceKind, str] = {
    SourceKind.ENTROPY_RNG: "entropy-seeded RNG",
    SourceKind.WALL_CLOCK: "wall-clock read",
    SourceKind.ENV: "environment lookup",
    SourceKind.ADDRESS: "address/hash identity",
}


class SinkKind(enum.Enum):
    """Where tainted data breaks a bitwise invariant."""

    CHECKPOINT = "checkpoint payload"
    PS_STATE = "parameter-server state"
    PLACEMENT = "placement plan"


# ---------------------------------------------------------------------------
# source catalogs (resolved dotted call names)
# ---------------------------------------------------------------------------

#: Legacy global numpy samplers (mirror of reprolint REP001's list).
_LEGACY_SAMPLERS: Tuple[str, ...] = (
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "binomial", "poisson", "exponential",
)

ENTROPY_RNG_CALLS: FrozenSet[str] = frozenset(
    {f"numpy.random.{name}" for name in _LEGACY_SAMPLERS}
    | {
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.shuffle",
        "random.uniform",
        "random.gauss",
    }
)
# ``numpy.random.default_rng`` is entropy-seeded only when called with
# no arguments; the interpreter checks the argument list itself.

WALL_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

ENV_CALLS: FrozenSet[str] = frozenset({"os.getenv", "os.environ.get"})
#: Attribute reads treated as environment sources.
ENV_ATTRS: FrozenSet[str] = frozenset({"os.environ", "os.environb"})

ADDRESS_CALLS: FrozenSet[str] = frozenset({"id", "hash", "object.__hash__"})

#: The sanctioned RNG coercers (repro.utils.rng): their return value is
#: entropy-tainted exactly when the *seed argument* is the literal
#: ``"entropy"`` (or itself tainted); any other seed is deterministic.
#: Generic summaries would have to say "maybe", so they are special-
#: cased at the call site instead.
RNG_COERCERS: FrozenSet[str] = frozenset(
    {
        "repro.utils.rng.ensure_rng",
        "repro.utils.rng.spawn_rngs",
        "ensure_rng",
        "spawn_rngs",
    }
)

# ---------------------------------------------------------------------------
# sink catalogs
# ---------------------------------------------------------------------------

#: Functions whose *return value* is a checkpoint payload: whatever
#: flows into the returned mapping will be serialized and compared
#: bitwise by the recovery invariants.
PAYLOAD_FUNCTION_NAMES: FrozenSet[str] = frozenset(
    {"state_arrays", "capture_trainer_arrays"}
)

#: Calls that write a payload to disk.  Any function calling one of
#: these is itself treated as a payload-constructing context, and every
#: argument position is a CHECKPOINT sink.
PAYLOAD_WRITER_CALLS: FrozenSet[str] = frozenset(
    {"numpy.savez", "numpy.savez_compressed", "numpy.save"}
)

#: Method names whose arguments land in parameter-server state (the
#: apply path) — name-matched because the PS tier is duck-typed.
STATE_SINK_METHODS: FrozenSet[str] = frozenset(
    {"apply_gradients", "step_rows", "load_state_arrays"}
)

#: Constructors assembling placement plans; tainted arguments mean the
#: table placement itself becomes seed/host dependent.
PLACEMENT_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "repro.sharding.placement.PlacementDecision",
        "repro.sharding.placement.PlacementPlan",
        "PlacementDecision",
        "PlacementPlan",
    }
)

# ---------------------------------------------------------------------------
# ordering catalogs
# ---------------------------------------------------------------------------

#: Reducers that are insensitive to operand order (exact, not just
#: approximately): summing through these launders an unordered
#: iteration.  ``math.fsum`` is correctly rounded; ``len``/``min``/
#: ``max``/``any``/``all`` are order-free by construction.
ORDER_INSENSITIVE_REDUCERS: FrozenSet[str] = frozenset(
    {"math.fsum", "len", "min", "max", "any", "all", "frozenset", "set",
     "sorted", "numpy.bincount"}
)

#: Array combiners whose output layout follows operand order — feeding
#: them an unordered-iteration product is DET003.
ORDER_SENSITIVE_COMBINERS: FrozenSet[str] = frozenset(
    {
        "numpy.concatenate",
        "numpy.stack",
        "numpy.vstack",
        "numpy.hstack",
        "numpy.column_stack",
    }
)

#: A constructor call whose resolved name ends with one of these marks
#: the value as a queue endpoint for DET006 (``.get()`` hands over
#: ownership; mutation without a copy races the producer).
QUEUE_TYPE_MARKERS: Tuple[str, ...] = ("Queue",)

#: Calls that produce an owned copy (clear the DET006 seam marker).
COPY_CALLS: FrozenSet[str] = frozenset(
    {"numpy.copy", "numpy.array", "numpy.asarray", "copy.copy",
     "copy.deepcopy"}
)

# ---------------------------------------------------------------------------
# zones
# ---------------------------------------------------------------------------

#: Where DET004 applies: an entropy RNG escaping a helper into any of
#: the kernel/system modules breaks the bitwise story of that zone.
DETERMINISM_ZONES: Tuple[str, ...] = EXCEPTION_ZONES

#: Where DET005 applies: SimClock-only zones must not branch on wall
#: time, even when the read happens in a helper module elsewhere.
SIMCLOCK_DECISION_ZONES: Tuple[str, ...] = SIMCLOCK_ZONES


# ---------------------------------------------------------------------------
# the DET rule table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DetRuleInfo:
    """Catalog entry for one detcheck rule (mirrors ShapeRuleInfo)."""

    id: str
    name: str
    severity: Severity
    description: str


DET_RULES: Dict[str, DetRuleInfo] = {
    rule.name: rule
    for rule in (
        DetRuleInfo(
            "DET001",
            "tainted-state",
            Severity.ERROR,
            "a nondeterministic source (entropy RNG, wall clock, "
            "environment, address identity) flows into checkpointed "
            "state, the PS apply path, or a placement plan",
        ),
        DetRuleInfo(
            "DET002",
            "unordered-float-accum",
            Severity.ERROR,
            "iteration over a dict/set feeds a float accumulation, so "
            "the sum depends on insertion/hash order; iterate "
            "sorted(...) or reduce with math.fsum",
        ),
        DetRuleInfo(
            "DET003",
            "unordered-reduction",
            Severity.ERROR,
            "a checkpoint payload or array combination is assembled "
            "from unordered dict/set iteration; canonicalize with "
            "sorted(...) so shard/table reductions are byte-stable",
        ),
        DetRuleInfo(
            "DET004",
            "entropy-rng-escape",
            Severity.ERROR,
            "an entropy-seeded RNG constructed in a helper escapes "
            "through its return value into a kernel/system zone",
        ),
        DetRuleInfo(
            "DET005",
            "wall-clock-decision",
            Severity.ERROR,
            "a wall-clock reading (possibly via a helper) influences a "
            "branch decision inside a SimClock-only zone",
        ),
        DetRuleInfo(
            "DET006",
            "queue-seam-mutation",
            Severity.ERROR,
            "an array received from (or handed to) a bounded queue is "
            "mutated in place without a copy, racing the other side "
            "of the ownership seam",
        ),
    )
}
