"""The determinism-taint interpreter.

One :class:`FunctionInterpreter` abstractly executes one function body
over the :class:`~.taint.Value` lattice.  The same pass serves two
masters:

* **summary mode** (``report=False``) — runs during the bottom-up
  fixpoint to produce a :class:`~.taint.FunctionSummary`;
* **report mode** (``report=True``) — runs once per function after
  summaries converge, emitting :class:`Finding` records for DET001–
  DET006.

Loops are havoc-widened lightly: the body is interpreted twice with the
environment joined against the pre-loop state between passes, which is
enough for the accumulate-then-store patterns this codebase uses while
keeping the pass linear.  Branches interpret both arms on cloned
environments and join.  Everything unknown stays untainted and ordered
(one-sided soundness: detcheck never reports from ignorance).

Interprocedural glue: call sites resolve through
:meth:`Program.resolve_callees`; callee summaries inject source taints
into return values, forward argument taints along ``param_flow``, and
flag DET001 when a tainted argument lands in a callee's checkpoint sink
position.  DET004 is the showpiece: a call inside a determinism zone to
a helper whose summary returns ``ENTROPY_RNG`` fires at the *call
site*, which is where the invariant breaks.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.detcheck.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Program,
)
from repro.analysis.detcheck.catalog import (
    ADDRESS_CALLS,
    COPY_CALLS,
    DET_RULES,
    DETERMINISM_ZONES,
    ENTROPY_RNG_CALLS,
    ENV_ATTRS,
    ENV_CALLS,
    ORDER_INSENSITIVE_REDUCERS,
    ORDER_SENSITIVE_COMBINERS,
    PAYLOAD_FUNCTION_NAMES,
    PAYLOAD_WRITER_CALLS,
    PLACEMENT_CONSTRUCTORS,
    RNG_COERCERS,
    SIMCLOCK_DECISION_ZONES,
    SOURCE_LABEL,
    STATE_SINK_METHODS,
    SourceKind,
    WALL_CLOCK_CALLS,
)
from repro.analysis.detcheck.taint import (
    FunctionSummary,
    Taint,
    Value,
    annotation_value,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import RNG_EXEMPT_FILES

__all__ = [
    "FunctionInterpreter",
    "compute_summaries",
    "module_findings",
]

#: Loop context: is the innermost loop's iteration order canonical,
#: and which names did it bind?
_LoopCtx = Tuple[bool, Set[str]]

_DICT_VIEWS = ("items", "keys", "values")
_INPLACE_METHODS = frozenset({"fill", "sort", "partial_fill"})
_FLOAT_OPS = (ast.Add, ast.Sub)


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class FunctionInterpreter:
    """Abstractly execute one function body (see module docstring)."""

    def __init__(
        self,
        program: Program,
        fn: FunctionInfo,
        summaries: Dict[str, FunctionSummary],
        module_env: Dict[str, Value],
        report: bool,
    ) -> None:
        self.program = program
        self.fn = fn
        self.module: ModuleInfo = program.modules[fn.module]
        self.ctx = self.module.ctx
        self.summaries = summaries
        self.module_env = module_env
        self.report = report
        self.env: Dict[str, Value] = {}
        self.self_attrs: Dict[str, Value] = {}
        self.findings: List[Finding] = []
        self._emitted: Set[Tuple[str, int, int]] = set()
        self.loop_stack: List[_LoopCtx] = []
        self.returned: List[Value] = []
        self.sink_params: Set[int] = set()
        self.is_payload = self._detect_payload()

    # -- setup --------------------------------------------------------

    def _detect_payload(self) -> bool:
        if self.fn.name in PAYLOAD_FUNCTION_NAMES:
            return True
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Call):
                if self.ctx.resolve_call(node.func) in PAYLOAD_WRITER_CALLS:
                    return True
        return False

    def run(self) -> FunctionSummary:
        for idx, name in enumerate(self.fn.params):
            value = self.fn.param_values[idx].clone()
            value.param_deps = {idx}
            self.env[name] = value
        if self.fn.class_name is not None:
            for attr, value in self.module.class_attrs.get(
                self.fn.class_name, {}
            ).items():
                self.self_attrs[attr] = value.clone()
        body = getattr(self.fn.node, "body", [])
        self.exec_block(body)
        return self._summary()

    def _summary(self) -> FunctionSummary:
        kinds: Set[SourceKind] = set()
        param_flow: Set[int] = set()
        containers: Set[Optional[str]] = set()
        returns_float = self.fn.return_value.is_float
        for value in self.returned:
            kinds |= value.kinds
            param_flow |= value.param_deps
            containers.add(value.container)
            returns_float = returns_float or value.is_float
        container = self.fn.return_value.container
        if len(containers) == 1:
            inferred = next(iter(containers))
            container = inferred if inferred is not None else container
        return FunctionSummary(
            returns=frozenset(kinds),
            param_flow=frozenset(param_flow),
            returns_container=container,
            returns_float=returns_float,
            checkpoint_sink_params=frozenset(self.sink_params),
        )

    # -- findings -----------------------------------------------------

    def _emit(
        self, rule_name: str, node: ast.AST, message: str, hint: str
    ) -> None:
        if not self.report:
            return
        rule = DET_RULES[rule_name]
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (rule.id, line, col)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.findings.append(
            Finding(
                rule=rule.name,
                rule_id=rule.id,
                severity=rule.severity,
                path=self.ctx.path,
                line=line,
                col=col,
                message=message,
                hint=hint,
            )
        )

    def _taint_detail(self, value: Value) -> str:
        details = sorted(
            f"{t.detail} (line {t.line})" for t in value.taints
        )
        return "; ".join(details)

    def _check_tainted_sink(
        self, node: ast.AST, value: Value, sink: str
    ) -> None:
        if value.taints:
            labels = sorted(SOURCE_LABEL[k] for k in value.kinds)
            self._emit(
                "tainted-state",
                node,
                f"{' + '.join(labels)} from {self._taint_detail(value)} "
                f"flows into {sink}",
                "derive the value from the seeded configuration (or drop "
                "it from the persisted/applied state)",
            )

    # -- environment helpers ------------------------------------------

    def _join_env(
        self, left: Dict[str, Value], right: Dict[str, Value]
    ) -> Dict[str, Value]:
        out: Dict[str, Value] = {}
        for key in set(left) | set(right):
            if key in left and key in right:
                out[key] = left[key].merge(right[key])
            else:
                out[key] = (left.get(key) or right[key]).clone()
        return out

    def _copy_env(self) -> Dict[str, Value]:
        return {name: value.clone() for name, value in self.env.items()}

    def _in_unordered_loop(self) -> bool:
        return any(unordered for unordered, _ in self.loop_stack)

    def _loop_vars(self) -> Set[str]:
        names: Set[str] = set()
        for _, bound in self.loop_stack:
            names |= bound
        return names

    # -- statements ---------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            value = (
                self.eval(stmt.value) if stmt.value is not None else Value()
            )
            ann = annotation_value(stmt.annotation)
            if ann.container is not None and value.container is None:
                value.container = ann.container
            value.is_float = value.is_float or ann.is_float
            value.value_is_float = value.value_is_float or ann.value_is_float
            self._assign(stmt.target, value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._exec_augassign(stmt)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self._check_decision(stmt.test, stmt)
            self.eval(stmt.test)
            pre = self._copy_env()
            self.exec_block(stmt.body)
            self.env = self._join_env(self.env, pre)
            self.exec_block(stmt.body)
            self.env = self._join_env(self.env, pre)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._check_decision(stmt.test, stmt)
            self.eval(stmt.test)
            pre = self._copy_env()
            self.exec_block(stmt.body)
            taken = self.env
            self.env = pre
            self.exec_block(stmt.orelse)
            self.env = self._join_env(taken, self.env)
        elif isinstance(stmt, ast.Return):
            value = (
                self.eval(stmt.value) if stmt.value is not None else Value()
            )
            self.returned.append(value)
            if self.is_payload and value.taints:
                self._check_tainted_sink(
                    stmt, value, "the returned checkpoint payload"
                )
            if self.is_payload:
                self.sink_params |= value.param_deps
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, stmt)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            pre = self._copy_env()
            for handler in stmt.handlers:
                saved = self._copy_env()
                self.exec_block(handler.body)
                self.env = self._join_env(self.env, saved)
            self.env = self._join_env(self.env, pre)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        # Nested defs/classes and pass/import/global are not descended.

    def _exec_for(self, stmt: ast.For) -> None:
        iter_value = self.eval(stmt.iter)
        unordered = iter_value.unordered or iter_value.container in (
            "dict",
            "set",
        )
        element = Value(
            taints=set(iter_value.taints),
            is_float=iter_value.is_float or iter_value.value_is_float,
            value_is_float=iter_value.value_is_float,
            unordered=unordered,
            param_deps=set(iter_value.param_deps),
        )
        bound = _names_in(stmt.target)
        pre = self._copy_env()
        self._assign(stmt.target, element, stmt)
        self.loop_stack.append((unordered, bound))
        self.exec_block(stmt.body)
        self.env = self._join_env(self.env, pre)
        self._assign(stmt.target, element, stmt)
        self.exec_block(stmt.body)
        self.loop_stack.pop()
        self.env = self._join_env(self.env, pre)
        self.exec_block(stmt.orelse)

    def _exec_augassign(self, stmt: ast.AugAssign) -> None:
        rhs = self.eval(stmt.value)
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            current = self.env.get(name, Value())
            if (
                self._in_unordered_loop()
                and current.is_float
                and isinstance(stmt.op, _FLOAT_OPS)
                and (_names_in(stmt.value) & self._loop_vars())
            ):
                self._emit(
                    "unordered-float-accum",
                    stmt,
                    f"float accumulation into {name!r} iterates a "
                    "dict/set, so the rounding depends on insertion/"
                    "hash order",
                    "iterate sorted(...) (canonical order) or collect "
                    "terms and reduce with math.fsum",
                )
            if current.from_queue or current.queue_shared:
                self._emit(
                    "queue-seam-mutation",
                    stmt,
                    f"in-place update of {name!r}, which is shared "
                    "across a queue seam",
                    "operate on an owned .copy() of the dequeued/"
                    "enqueued array",
                )
            merged = current.merge(rhs)
            merged.is_float = current.is_float or rhs.is_float
            self.env[name] = merged
        elif isinstance(stmt.target, ast.Subscript):
            self._store_subscript(stmt.target, rhs, stmt)

    def _assign(
        self, target: ast.expr, value: Value, stmt: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value.clone()
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, value, stmt)
        elif isinstance(target, ast.Subscript):
            self._store_subscript(target, value, stmt)
        elif isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.self_attrs[target.attr] = value.clone()
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value, stmt)

    def _store_subscript(
        self, target: ast.Subscript, value: Value, stmt: ast.stmt
    ) -> None:
        base = self.eval(target.value)
        if base.from_queue or base.queue_shared:
            seam = "dequeued from" if base.from_queue else "handed to"
            self._emit(
                "queue-seam-mutation",
                stmt,
                f"in-place element store into an array {seam} a queue",
                "mutate an owned .copy(); the other side of the queue "
                "seam still references this buffer",
            )
        if base.container == "dict":
            if self.is_payload and self._in_unordered_loop():
                self._emit(
                    "unordered-reduction",
                    stmt,
                    "checkpoint payload entries are stored while "
                    "iterating a dict/set, so the payload's key order "
                    "is not canonical",
                    "iterate sorted(...items()) so the serialized "
                    "payload is byte-stable across construction orders",
                )
            if self.is_payload:
                self._check_tainted_sink(
                    stmt, value, "a checkpoint payload entry"
                )
                self.sink_params |= value.param_deps
            # Track what flowed into the dict through the named base.
            if isinstance(target.value, ast.Name):
                entry = self.env.get(target.value.id)
                if entry is not None:
                    entry.taints |= value.taints
                    entry.value_is_float = (
                        entry.value_is_float or value.is_float
                    )
                    entry.param_deps |= value.param_deps

    def _check_decision(self, test: ast.expr, stmt: ast.stmt) -> None:
        if not self.ctx.in_zone(SIMCLOCK_DECISION_ZONES):
            return
        value = self.eval(test)
        if SourceKind.WALL_CLOCK in value.kinds:
            self._emit(
                "wall-clock-decision",
                stmt,
                "branch condition derives from "
                f"{self._taint_detail(value)} inside a SimClock-only "
                "zone",
                "decide from SimClock/event-loop time; wall-clock may "
                "only be *measured*, never acted on, in this zone",
            )

    # -- expressions --------------------------------------------------

    def eval(self, node: Optional[ast.expr]) -> Value:
        if node is None:
            return Value()
        if isinstance(node, ast.Constant):
            return Value(is_float=isinstance(node.value, float))
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id].clone()
            if node.id in self.module_env:
                return self.module_env[node.id].clone()
            return Value()
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            self.eval(node.slice)
            return Value(
                taints=set(base.taints),
                is_float=base.is_float or base.value_is_float,
                param_deps=set(base.param_deps),
            )
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return Value.combine(
                (self.eval(node.left), self.eval(node.right))
            )
        if isinstance(node, ast.BoolOp):
            return Value.combine(tuple(self.eval(v) for v in node.values))
        if isinstance(node, ast.Compare):
            return Value.combine(
                (self.eval(node.left),)
                + tuple(self.eval(c) for c in node.comparators)
            )
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.IfExp):
            self._check_decision(node.test, node)
            test = self.eval(node.test)
            merged = self.eval(node.body).merge(self.eval(node.orelse))
            merged.taints |= test.taints
            merged.param_deps |= test.param_deps
            return merged
        if isinstance(node, ast.Dict):
            out = Value(container="dict")
            for value_node in node.values:
                if value_node is None:
                    continue
                value = self.eval(value_node)
                out.taints |= value.taints
                out.value_is_float = out.value_is_float or value.is_float
                out.param_deps |= value.param_deps
                out.unordered = out.unordered or value.unordered
            return out
        if isinstance(node, ast.Set):
            out = Value(container="set")
            for element in node.elts:
                value = self.eval(element)
                out.taints |= value.taints
                out.param_deps |= value.param_deps
            return out
        if isinstance(node, (ast.List, ast.Tuple)):
            out = Value(container="list")
            for element in node.elts:
                value = self.eval(element)
                out.taints |= value.taints
                out.param_deps |= value.param_deps
                out.unordered = out.unordered or value.unordered
                out.is_float = out.is_float or value.is_float
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comp(node, node.elt, "list")
        if isinstance(node, ast.SetComp):
            return self._eval_comp(node, node.elt, "set")
        if isinstance(node, ast.DictComp):
            out = self._eval_comp(node, node.value, "dict")
            return out
        if isinstance(node, ast.JoinedStr):
            return Value.combine(
                tuple(
                    self.eval(v.value)
                    for v in node.values
                    if isinstance(v, ast.FormattedValue)
                )
            )
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            self._assign(node.target, value, ast.Pass())
            return value
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = self.eval(node.value) if node.value is not None else Value()
            self.returned.append(value)
            return Value()
        if isinstance(node, ast.Lambda):
            return Value()
        return Value()

    def _eval_comp(
        self,
        node: ast.expr,
        elt: ast.expr,
        container: str,
    ) -> Value:
        pre = self._copy_env()
        unordered = False
        taints: Set[Taint] = set()
        deps: Set[int] = set()
        generators = getattr(node, "generators", [])
        for gen in generators:
            iter_value = self.eval(gen.iter)
            gen_unordered = iter_value.unordered or iter_value.container in (
                "dict",
                "set",
            )
            unordered = unordered or gen_unordered
            taints |= iter_value.taints
            deps |= iter_value.param_deps
            element = Value(
                taints=set(iter_value.taints),
                is_float=iter_value.is_float or iter_value.value_is_float,
                value_is_float=iter_value.value_is_float,
                unordered=gen_unordered,
                param_deps=set(iter_value.param_deps),
            )
            self._assign(gen.target, element, ast.Pass())
            for cond in gen.ifs:
                self.eval(cond)
        elt_value = self.eval(elt)
        if isinstance(node, ast.DictComp):
            self.eval(node.key)
        self.env = pre
        out = Value(
            taints=taints | elt_value.taints,
            container=container,
            is_float=elt_value.is_float if container != "dict" else False,
            value_is_float=elt_value.is_float if container == "dict" else False,
            unordered=unordered if container not in ("set",) else False,
            param_deps=deps | elt_value.param_deps,
        )
        if (
            container == "dict"
            and unordered
            and self.is_payload
        ):
            self._emit(
                "unordered-reduction",
                node,
                "a payload/manifest mapping is comprehended from "
                "unordered dict/set iteration, so its key order is not "
                "canonical",
                "build it from sorted(...items()) so manifests and "
                "payloads serialize byte-identically",
            )
        return out

    def _eval_attribute(self, node: ast.Attribute) -> Value:
        resolved = self.ctx.resolve_call(node)
        if resolved in ENV_ATTRS:
            return Value(
                taints={
                    Taint(SourceKind.ENV, node.lineno, resolved or "os.environ")
                }
            )
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            if node.attr in self.self_attrs:
                return self.self_attrs[node.attr].clone()
            return Value()
        base = self.eval(node.value)
        return Value(
            taints=set(base.taints),
            is_float=base.is_float,
            from_queue=base.from_queue,
            queue_shared=base.queue_shared,
            param_deps=set(base.param_deps),
        )

    # -- calls --------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> Value:
        resolved = self.ctx.resolve_call(node.func)
        pos_vals = [self.eval(arg) for arg in node.args]
        kw_pairs: List[Tuple[Optional[str], Value]] = [
            (kw.arg, self.eval(kw.value)) for kw in node.keywords
        ]
        all_vals = pos_vals + [v for _, v in kw_pairs]
        line = node.lineno
        receiver: Optional[Value] = None
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value)

        # --- receiver-shape method semantics -------------------------
        if isinstance(node.func, ast.Attribute) and receiver is not None:
            attr = node.func.attr
            if attr in _DICT_VIEWS and receiver.container in (
                "dict",
                "sorted",
            ):
                return Value(
                    taints=set(receiver.taints),
                    is_float=(
                        receiver.value_is_float if attr != "keys" else False
                    ),
                    value_is_float=receiver.value_is_float,
                    unordered=receiver.container == "dict"
                    or receiver.unordered,
                    param_deps=set(receiver.param_deps),
                )
            if attr == "get" and receiver.container == "queue":
                return Value(from_queue=True)
            if attr == "get" and receiver.container == "dict":
                return Value(
                    taints=set(receiver.taints),
                    is_float=receiver.value_is_float,
                    param_deps=set(receiver.param_deps),
                )
            if attr == "put" and receiver.container == "queue":
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in self.env:
                        self.env[arg.id].queue_shared = True
                return Value()
            if attr == "copy":
                owned = receiver.clone()
                owned.from_queue = False
                owned.queue_shared = False
                return owned
            if attr in _INPLACE_METHODS and (
                receiver.from_queue or receiver.queue_shared
            ):
                self._emit(
                    "queue-seam-mutation",
                    node,
                    f".{attr}() mutates an array shared across a queue "
                    "seam in place",
                    "call it on an owned .copy() of the buffer",
                )
                return Value()
            if attr in STATE_SINK_METHODS:
                for value in all_vals:
                    self._check_tainted_sink(
                        node, value, f"the {attr}() apply path"
                    )

        # --- source catalog ------------------------------------------
        if resolved is not None:
            if resolved in ENTROPY_RNG_CALLS:
                return Value(
                    taints={Taint(SourceKind.ENTROPY_RNG, line, resolved)}
                )
            if resolved == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    return Value(
                        taints={
                            Taint(
                                SourceKind.ENTROPY_RNG,
                                line,
                                "default_rng()",
                            )
                        }
                    )
                return Value.combine(tuple(all_vals))
            if resolved in WALL_CLOCK_CALLS:
                return Value(
                    taints={Taint(SourceKind.WALL_CLOCK, line, resolved)}
                )
            if resolved in ENV_CALLS:
                return Value(taints={Taint(SourceKind.ENV, line, resolved)})
            if resolved in ADDRESS_CALLS:
                return Value(
                    taints={Taint(SourceKind.ADDRESS, line, resolved)}
                )
            if resolved in RNG_COERCERS:
                out = Value.combine(tuple(all_vals))
                if any(
                    isinstance(arg, ast.Constant) and arg.value == "entropy"
                    for arg in node.args
                ) or any(
                    kw.arg == "seed"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value == "entropy"
                    for kw in node.keywords
                ):
                    out.taints.add(
                        Taint(
                            SourceKind.ENTROPY_RNG,
                            line,
                            f'{resolved.rsplit(".", 1)[-1]}("entropy")',
                        )
                    )
                return out

            # --- ordering catalog ------------------------------------
            if resolved == "sorted":
                out = Value.combine(tuple(all_vals))
                out.container = "sorted"
                out.unordered = False
                if pos_vals:
                    out.value_is_float = pos_vals[0].value_is_float
                return out
            if resolved in ORDER_INSENSITIVE_REDUCERS:
                out = Value.combine(tuple(all_vals))
                out.unordered = False
                if resolved in ("set", "frozenset"):
                    out.container = "set"
                if resolved == "math.fsum":
                    out.is_float = True
                return out
            if resolved == "sum" and pos_vals:
                arg = pos_vals[0]
                if arg.unordered and arg.is_float:
                    self._emit(
                        "unordered-float-accum",
                        node,
                        "sum() over a dict/set-ordered float iterable "
                        "depends on insertion/hash order",
                        "use math.fsum (order-insensitive, correctly "
                        "rounded) or sum over sorted(...) keys",
                    )
                out = Value.combine(tuple(all_vals))
                out.is_float = arg.is_float
                return out
            if resolved == "dict":
                out = Value.combine(tuple(all_vals))
                out.container = "dict"
                if pos_vals:
                    out.unordered = pos_vals[0].unordered
                    out.value_is_float = pos_vals[0].value_is_float
                return out
            if resolved in ("list", "tuple"):
                out = Value.combine(tuple(all_vals))
                out.container = "list"
                if pos_vals:
                    out.unordered = pos_vals[0].unordered or pos_vals[
                        0
                    ].container in ("dict", "set")
                return out
            if resolved in COPY_CALLS:
                out = Value.combine(tuple(all_vals))
                out.from_queue = False
                out.queue_shared = False
                return out
            if resolved in ORDER_SENSITIVE_COMBINERS:
                for value in all_vals:
                    if value.unordered:
                        short = resolved.rsplit(".", 1)[-1]
                        self._emit(
                            "unordered-reduction",
                            node,
                            f"np.{short}() combines operands collected "
                            "from unordered dict/set iteration; the "
                            "result layout is not canonical",
                            "collect the operands in sorted(...) key "
                            "order before combining",
                        )
                return Value.combine(tuple(all_vals))
            if resolved in PAYLOAD_WRITER_CALLS:
                short = resolved.rsplit(".", 1)[-1]
                for value in all_vals:
                    self._check_tainted_sink(
                        node, value, f"np.{short}() checkpoint output"
                    )
                    if value.unordered:
                        self._emit(
                            "unordered-reduction",
                            node,
                            f"np.{short}() serializes a payload built "
                            "from unordered dict/set iteration",
                            "canonicalize the payload with "
                            "sorted(...items()) before writing",
                        )
                    self.sink_params |= value.param_deps
                return Value()
            if resolved.rsplit(".", 1)[-1] in PLACEMENT_CONSTRUCTORS or (
                resolved in PLACEMENT_CONSTRUCTORS
            ):
                for value in all_vals:
                    self._check_tainted_sink(
                        node, value, "a placement-plan record"
                    )
                return Value.combine(tuple(all_vals))
            if resolved.rsplit(".", 1)[-1].endswith("Queue"):
                return Value(container="queue")

        # --- program callees (interprocedural) -----------------------
        callees = self.program.resolve_callees(self.fn, node)
        if callees:
            out = self._apply_summaries(
                node, callees, pos_vals, kw_pairs, resolved
            )
            if receiver is not None:
                out.taints |= receiver.taints
                out.param_deps |= receiver.param_deps
            return out

        # --- unknown call: propagate source taints only --------------
        out = Value()
        for value in all_vals:
            out.taints |= value.taints
            out.param_deps |= value.param_deps
        if receiver is not None:
            out.taints |= receiver.taints
            out.param_deps |= receiver.param_deps
        return out

    def _apply_summaries(
        self,
        node: ast.Call,
        callees: List[FunctionInfo],
        pos_vals: List[Value],
        kw_pairs: List[Tuple[Optional[str], Value]],
        resolved: Optional[str],
    ) -> Value:
        merged: Optional[FunctionSummary] = None
        for callee in callees:
            summary = self.summaries.get(callee.qualname)
            if summary is None:
                summary = FunctionSummary(
                    returns_container=callee.return_value.container,
                    returns_float=callee.return_value.is_float,
                )
            merged = summary if merged is None else merged.merge(summary)
        assert merged is not None
        display = resolved or callees[0].name

        # Map caller arguments onto callee parameter positions.
        indexed: Dict[int, Value] = dict(enumerate(pos_vals))
        params = callees[0].params
        for kw_name, value in kw_pairs:
            if kw_name is not None and kw_name in params:
                indexed[params.index(kw_name)] = value

        if (
            SourceKind.ENTROPY_RNG in merged.returns
            and self.ctx.in_zone(DETERMINISM_ZONES)
            and (resolved not in RNG_COERCERS)
        ):
            self._emit(
                "entropy-rng-escape",
                node,
                f"{display}() returns an entropy-seeded RNG (per its "
                "summary) into a determinism zone",
                "thread an explicit int seed through the helper "
                "(repro.utils.rng.ensure_rng) instead of minting "
                "entropy inside it",
            )

        for idx in merged.checkpoint_sink_params:
            value = indexed.get(idx)
            if value is not None and value.taints:
                self._check_tainted_sink(
                    node,
                    value,
                    f"a checkpoint payload via {display}()",
                )

        out = Value(
            taints={
                Taint(kind, node.lineno, f"call to {display}")
                for kind in merged.returns
            },
            container=merged.returns_container,
            is_float=merged.returns_float,
        )
        for idx in merged.param_flow:
            value = indexed.get(idx)
            if value is not None:
                out.taints |= value.taints
                out.param_deps |= value.param_deps
        return out


# ---------------------------------------------------------------------------
# program drivers
# ---------------------------------------------------------------------------

_SCC_ITERATION_CAP = 8


def _module_level_env(
    program: Program,
    module: ModuleInfo,
    summaries: Dict[str, FunctionSummary],
) -> Dict[str, Value]:
    """Abstract values of module-level constants (Assign/AnnAssign)."""
    dummy = FunctionInfo(
        qualname=f"{module.modname}.<module>",
        name="<module>",
        module=module.modname,
        class_name=None,
        node=module.ctx.tree,
    )
    interp = FunctionInterpreter(program, dummy, summaries, {}, report=False)
    for stmt in module.ctx.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            interp.exec_stmt(stmt)
    return interp.env


def compute_summaries(
    program: Program,
) -> Tuple[Dict[str, FunctionSummary], Dict[str, Dict[str, Value]]]:
    """Bottom-up fixpoint over Tarjan SCCs (callees first)."""
    summaries: Dict[str, FunctionSummary] = {}
    module_envs: Dict[str, Dict[str, Value]] = {}
    for modname, module in program.modules.items():
        module_envs[modname] = _module_level_env(program, module, summaries)
    for component in program.scc_order():
        rounds = 1 if len(component) == 1 else _SCC_ITERATION_CAP
        for _ in range(rounds):
            changed = False
            for qualname in component:
                fn = program.functions[qualname]
                module = program.modules[fn.module]
                if module.ctx.rel in RNG_EXEMPT_FILES:
                    new = FunctionSummary(
                        returns_container=fn.return_value.container,
                        returns_float=fn.return_value.is_float,
                    )
                else:
                    interp = FunctionInterpreter(
                        program,
                        fn,
                        summaries,
                        module_envs.get(fn.module, {}),
                        report=False,
                    )
                    new = interp.run()
                if summaries.get(qualname) != new:
                    summaries[qualname] = new
                    changed = True
            if not changed:
                break
    return summaries, module_envs


def module_findings(
    program: Program,
    modname: str,
    summaries: Dict[str, FunctionSummary],
    module_envs: Dict[str, Dict[str, Value]],
) -> List[Finding]:
    """Report pass for one module (summaries already converged)."""
    module = program.modules[modname]
    if module.ctx.rel in RNG_EXEMPT_FILES:
        return []
    findings: List[Finding] = []
    for fn in module.functions.values():
        interp = FunctionInterpreter(
            program,
            fn,
            summaries,
            module_envs.get(modname, {}),
            report=True,
        )
        interp.run()
        findings.extend(interp.findings)
    findings.sort(key=lambda f: f.sort_key)
    return findings
