"""The ``detcheck`` runner.

Mirrors the :mod:`repro.analysis.linter` / shapecheck surface — same
:class:`Finding`/:class:`LintResult` records, same ``# reprolint:
disable=`` pragmas, same file discovery — but the analysis underneath
is *whole-program*: every file handed to one run is parsed into a
single :class:`~.callgraph.Program`, function summaries are computed
bottom-up over the call graph, and only then are per-file findings
reported.  That is what lets DET004 fire at a call site in
``system/`` when the entropy RNG is minted three calls away in a
helper module.

Usage surfaces:

* CLI — ``python -m repro detcheck [paths...]`` (exit 1 on errors);
* pytest — ``tests/analysis/test_detcheck_self.py`` proves
  ``src/repro`` ships clean while the seeded-mutation corpus is caught;
* library — :func:`detcheck_paths` / :func:`detcheck_source`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.detcheck.callgraph import Program, build_program
from repro.analysis.detcheck.catalog import DET_RULES, DetRuleInfo
from repro.analysis.detcheck.interp import compute_summaries, module_findings
from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import (
    LintResult,
    is_suppressed,
    iter_python_files,
    package_rel,
    parse_pragmas,
)

__all__ = ["detcheck_paths", "detcheck_source", "DET_RULES"]


def _select_rules(select: Optional[Sequence[str]]) -> List[DetRuleInfo]:
    if select is None:
        return list(DET_RULES.values())
    rules: List[DetRuleInfo] = []
    for name in select:
        matches = [
            rule
            for rule in DET_RULES.values()
            if name in (rule.name, rule.id)
        ]
        if not matches:
            raise KeyError(
                f"unknown detcheck rule {name!r}; known: "
                f"{sorted(DET_RULES)}"
            )
        rules.extend(matches)
    return rules


def _analyze(
    files: List[Tuple[Path, str, str]],
    select: Optional[Sequence[str]],
    result: LintResult,
) -> None:
    """Whole-program pass over pre-parsed files, appending to result."""
    if not files:
        return
    program: Program = build_program(files)
    summaries, module_envs = compute_summaries(program)
    selected = {rule.name for rule in _select_rules(select)}
    sources = {str(path): source for path, _, source in files}
    for modname, module in program.modules.items():
        source = sources.get(module.ctx.path, "")
        per_line, file_wide = parse_pragmas(source)
        for finding in module_findings(program, modname, summaries, module_envs):
            if finding.rule not in selected:
                continue
            line_names = per_line.get(finding.line, set())
            if is_suppressed(finding, line_names | file_wide):
                result.suppressed += 1
                continue
            result.findings.append(finding)


def detcheck_source(
    source: str,
    path: str = "<string>",
    rel: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Detcheck one in-memory module (unit-test entry point).

    The program is just this module, so interprocedural facts resolve
    against its own helpers only.
    """
    result = LintResult(files_scanned=1)
    resolved_rel = rel if rel is not None else package_rel(Path(path))
    _analyze([(Path(path), resolved_rel, source)], select, result)
    result.findings.sort(key=lambda f: f.sort_key)
    return result


def detcheck_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Detcheck every ``.py`` file under ``paths`` as one program."""
    result = LintResult()
    files: List[Tuple[Path, str, str]] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        result.files_scanned += 1
        try:
            compile(source, str(file_path), "exec", dont_inherit=True)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    rule="syntax-error",
                    rule_id="DET000",
                    severity=Severity.ERROR,
                    path=str(file_path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        files.append((file_path, package_rel(file_path), source))
    _analyze(files, select, result)
    result.findings.sort(key=lambda f: f.sort_key)
    return result
