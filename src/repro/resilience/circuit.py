"""Circuit breaker over the serving primary path.

Standard three-state machine, driven by the deterministic event loop
(times are Simulator seconds, never wall clock):

* **CLOSED** — traffic flows; ``failure_threshold`` *consecutive*
  SLO breaches trip it OPEN.
* **OPEN** — the primary is presumed unhealthy; all traffic is routed
  away (fallback or shed).  After ``cooldown`` seconds the next
  ``allow`` transitions to HALF_OPEN.
* **HALF_OPEN** — exactly one probe batch may be outstanding at a
  time.  ``half_open_successes`` consecutive probe successes close the
  breaker; any probe failure re-opens it (and restarts the cooldown).

Every transition is appended to :attr:`CircuitBreaker.transitions`
with its timestamp and reason, so tests assert the exact trajectory
(e.g. CLOSED→OPEN→HALF_OPEN→CLOSED under a slowdown window that ends).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

__all__ = [
    "BreakerState",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
]


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery thresholds, all in consecutive events or seconds."""

    failure_threshold: int = 3
    cooldown: float = 0.05
    half_open_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {self.cooldown}")
        if self.half_open_successes < 1:
            raise ValueError(
                "half_open_successes must be >= 1, got "
                f"{self.half_open_successes}"
            )


@dataclass(frozen=True)
class BreakerTransition:
    time: float
    src: BreakerState
    dst: BreakerState
    reason: str


class CircuitBreaker:
    """Deterministic breaker; the caller supplies every timestamp."""

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self.transitions: List[BreakerTransition] = []
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self._probe_successes = 0

    def _move(self, now: float, dst: BreakerState, reason: str) -> None:
        if self.transitions and now < self.transitions[-1].time:
            raise ValueError(
                f"breaker time went backwards: {now} after "
                f"{self.transitions[-1].time} (transitions must be fed "
                "in event-loop order)"
            )
        self.transitions.append(
            BreakerTransition(time=now, src=self.state, dst=dst, reason=reason)
        )
        self.state = dst

    # -- routing decision ----------------------------------------------
    def allow(self, now: float) -> bool:
        """May the primary path take a batch dispatched at ``now``?

        In HALF_OPEN this *claims* the single probe slot when granted,
        so callers must follow every ``True`` with exactly one
        ``record_success``/``record_failure`` for that batch.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.config.cooldown:
                self._move(now, BreakerState.HALF_OPEN, "cooldown elapsed")
                self._probe_successes = 0
                self._probe_outstanding = True
                return True
            return False
        # HALF_OPEN: one outstanding probe at a time.
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    # -- outcome signals ------------------------------------------------
    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            if not self._probe_outstanding:
                # Stale completion: a batch dispatched before the trip
                # (or before this HALF_OPEN entry) is reporting back.
                # It says nothing about the probe path's health, so it
                # must not count toward closing the breaker.
                return
            self._probe_outstanding = False
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_successes:
                self._move(
                    now, BreakerState.CLOSED,
                    f"{self._probe_successes} probe successes",
                )
                self._consecutive_failures = 0
            return
        self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            # The *first* failure re-trips, probe or stale: a breach
            # observed while half-open means the path is still sick,
            # and leaving the probe slot claimed after re-open would
            # wedge the next HALF_OPEN entry shut.
            reason = (
                "probe failed" if self._probe_outstanding
                else "stale breach in half-open"
            )
            self._probe_outstanding = False
            self._probe_successes = 0
            self._move(now, BreakerState.OPEN, reason)
            self._opened_at = now
            return
        if self.state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.config.failure_threshold:
                self._move(
                    now, BreakerState.OPEN,
                    f"{self._consecutive_failures} consecutive SLO breaches",
                )
                self._opened_at = now
        # OPEN: failures while open carry no extra information.

    # -- reporting ------------------------------------------------------
    @property
    def probe_outstanding(self) -> bool:
        """Whether the single HALF_OPEN probe slot is claimed."""
        return self._probe_outstanding

    def describe(self) -> str:
        lines = [f"breaker state: {self.state.value}"]
        lines += [
            f"  t={tr.time:.4f}  {tr.src.value} -> {tr.dst.value}  "
            f"({tr.reason})"
            for tr in self.transitions
        ]
        return "\n".join(lines)
