"""Chaos harness: run train/serve under a fault plan, check invariants.

``run_chaos`` is the engine behind the ``repro chaos`` CLI subcommand.
Given a named :class:`~repro.resilience.faults.FaultPlan` it:

1. trains an uninterrupted **reference** run (no faults, single
   ``train`` call) on the standard small PS-pipeline harness;
2. runs the same workload under the plan through
   :class:`~repro.resilience.supervisor.PipelineSupervisor` with a
   fault-injecting probe and a sabotaged checkpoint store;
3. serves a request stream through
   :class:`~repro.resilience.degradation.ResilientInferenceServer`
   twice — clean baseline and under the plan's slowdown windows —
   with the reference model as primary and an earlier snapshot as the
   stale fallback;
4. evaluates the **invariant checklist**: bitwise-identical loss
   trajectory, no lost steps, no duplicate host applies, every
   scheduled fault fired, recovery within the restart budget, a
   deterministic backoff schedule, bounded fallback staleness, full
   request accounting, and bounded p99 degradation.

Every check lands in the outcome as ``(name, ok, detail)`` so both the
CLI and the test suite render/assert the same list.  The whole run is
deterministic — two invocations of the same plan produce identical
outcomes, including the failure story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.circuit import BreakerConfig, BreakerState
from repro.resilience.degradation import (
    DegradationOutcome,
    DegradationPolicy,
    ResilientInferenceServer,
)
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    FaultProbe,
    FaultSite,
    FaultSpec,
)
from repro.resilience.supervisor import (
    PipelineSupervisor,
    RecoveryReport,
    RetryPolicy,
)
from repro.serving.batcher import BatchingPolicy
from repro.serving.requests import RequestGenerator
from repro.serving.server import ServiceTimeModel, ServingModel
from repro.serving.snapshot import ModelSnapshot
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import PipelinedPSTrainer

__all__ = [
    "FAULT_PLANS",
    "ChaosCheck",
    "ChaosOutcome",
    "ChaosHarnessConfig",
    "run_chaos",
    "resume_determinism_check",
]


#: Named plans for the CLI and quickcheck.  Trainer faults are keyed on
#: the 18-step harness below (snapshots every 4 steps); serving
#: slowdowns on its ~0.5 s simulated request stream.
FAULT_PLANS: Dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "smoke": FaultPlan(
        name="smoke",
        specs=(
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=5),
            FaultSpec(FaultKind.CORRUPT, FaultSite.CHECKPOINT, step=8),
            FaultSpec(FaultKind.H2D_FAIL, FaultSite.PREFETCH_QUEUE, step=9),
            FaultSpec(FaultKind.DROP, FaultSite.GRAD_QUEUE, step=12),
            FaultSpec(
                FaultKind.SLOWDOWN, FaultSite.SERVE,
                time=0.05, duration=0.1, factor=40.0,
            ),
        ),
        seed=11,
    ),
    "stage-sweep": FaultPlan(
        name="stage-sweep",
        specs=(
            FaultSpec(FaultKind.CRASH, FaultSite.GATHER, step=3),
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=7),
            FaultSpec(FaultKind.CRASH, FaultSite.APPLY, step=11),
            FaultSpec(FaultKind.STALL, FaultSite.PREFETCH_QUEUE, step=14),
        ),
        seed=12,
    ),
    "torn-checkpoint": FaultPlan(
        name="torn-checkpoint",
        specs=(
            FaultSpec(FaultKind.TORN, FaultSite.CHECKPOINT, step=8),
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=10),
            FaultSpec(FaultKind.CORRUPT, FaultSite.CHECKPOINT, step=12),
            FaultSpec(FaultKind.CRASH, FaultSite.APPLY, step=14),
        ),
        seed=13,
    ),
    "serve-degrade": FaultPlan(
        name="serve-degrade",
        specs=(
            FaultSpec(
                FaultKind.SLOWDOWN, FaultSite.SERVE,
                time=0.05, duration=0.1, factor=40.0,
            ),
        ),
        seed=14,
    ),
}


@dataclass(frozen=True)
class ChaosCheck:
    """One verified invariant."""

    name: str
    ok: bool
    detail: str = ""


@dataclass(frozen=True)
class ChaosHarnessConfig:
    """Workload knobs for a chaos run (defaults sized for CI)."""

    num_batches: int = 18
    checkpoint_interval: int = 4
    batch_size: int = 32
    scale: float = 2e-5
    num_requests: int = 600
    request_rate: float = 1500.0
    hot_coverage: float = 0.3
    #: Degraded p99 may exceed the clean baseline's by at most this
    #: factor (the "bounded degradation" SLO under injected slowdowns).
    #: The breaker trips only after ``failure_threshold`` slow batches,
    #: so a handful of breach-window requests always land in the tail;
    #: without the ladder a 40x slowdown window blows p99 far past
    #: this.
    p99_budget_factor: float = 10.0
    max_restarts: int = 8
    #: 0 = legacy single-table :class:`HostParameterServer`; >= 1 puts
    #: the host tables behind a
    #: :class:`~repro.sharding.server.ShardedParameterServer` with that
    #: many shards (bitwise-identical trajectories, compression off).
    num_shards: int = 0


@dataclass
class ChaosOutcome:
    """Everything one chaos run produced."""

    plan: FaultPlan
    checks: List[ChaosCheck] = field(default_factory=list)
    recovery: Optional[RecoveryReport] = None
    serving_baseline: Optional[DegradationOutcome] = None
    serving_degraded: Optional[DegradationOutcome] = None

    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)

    def format(self) -> str:
        lines = [self.plan.describe(), ""]
        if self.recovery is not None:
            rec = self.recovery
            lines.append(
                f"training: {len(rec.losses)} steps committed, "
                f"{rec.restarts} restarts, {rec.rollbacks} rollbacks, "
                f"{rec.replayed_batches} batches replayed, "
                f"{rec.total_backoff:.4f}s backoff"
            )
            for event in rec.events:
                lines.append(f"  {event}")
        if self.serving_degraded is not None:
            deg = self.serving_degraded
            lines.append(
                f"serving: {deg.primary_batches} primary / "
                f"{deg.fallback_batches} fallback batches, "
                f"{len(deg.shed_ids)} shed, breaker "
                f"{deg.final_breaker_state.value}"
            )
        lines.append("")
        for check in self.checks:
            status = "ok" if check.ok else "FAIL"
            suffix = f"  ({check.detail})" if check.detail else ""
            lines.append(f"  {check.name:34s} [{status}]{suffix}")
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(f"chaos plan {self.plan.name!r}: {verdict}")
        return "\n".join(lines)


def _build_harness(config: ChaosHarnessConfig):
    """The standard small PS-pipeline workload (mirrors the test suite)."""
    spec = criteo_kaggle_like(scale=config.scale)
    log = SyntheticClickLog(spec, batch_size=config.batch_size, seed=0)
    model_cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    rows = list(model_cfg.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    host_map = {p: i for i, p in enumerate(host_positions)}
    server_rows = [rows[p] for p in host_positions]

    def factory(probe) -> PipelinedPSTrainer:
        bags = []
        for t, r in enumerate(model_cfg.table_rows):
            if t in host_map:
                bags.append(HostBackedEmbeddingBag(r, model_cfg.embedding_dim))
            else:
                bags.append(
                    build_embedding_bag(
                        model_cfg.backend_for_table(t), r,
                        model_cfg.embedding_dim, model_cfg.tt_rank,
                        seed=(200 + t),
                    )
                )
        model = DLRM(model_cfg, seed=7, embedding_bags=bags)
        if config.num_shards >= 1:
            from repro.sharding.server import ShardedParameterServer

            server = ShardedParameterServer(
                server_rows, model_cfg.embedding_dim, lr=0.05,
                num_shards=config.num_shards, seed=3,
            )
        else:
            server = HostParameterServer(
                server_rows, model_cfg.embedding_dim, lr=0.05, seed=3
            )
        return PipelinedPSTrainer(
            model, server, host_map, lr=0.05,
            prefetch_depth=3, grad_queue_depth=2, use_cache=True,
            probe=probe,
        )

    return spec, log, factory


def _check_training(
    plan: FaultPlan,
    config: ChaosHarnessConfig,
    checkpoint_dir: str,
    outcome: ChaosOutcome,
) -> Optional[PipelinedPSTrainer]:
    spec, log, factory = _build_harness(config)

    reference = factory(None)
    ref_losses = [
        float(x) for x in reference.train(log, config.num_batches).losses
    ]

    injector = plan.injector()
    probe = FaultProbe(injector)
    store = CheckpointStore(
        checkpoint_dir, keep_last=max(4, config.max_restarts),
        injector=injector,
    )
    policy = RetryPolicy(max_restarts=config.max_restarts, seed=plan.seed)
    supervisor = PipelineSupervisor(factory, store, probe, policy)
    report = supervisor.run(
        log, config.num_batches, config.checkpoint_interval
    )
    outcome.recovery = report

    checks = outcome.checks
    checks.append(ChaosCheck(
        "bitwise loss trajectory",
        report.losses == ref_losses,
        f"{len(report.losses)} committed vs {len(ref_losses)} reference",
    ))
    checks.append(ChaosCheck(
        "no lost steps",
        len(report.losses) == config.num_batches,
        f"{len(report.losses)}/{config.num_batches}",
    ))
    checks.append(ChaosCheck(
        "no duplicate applies",
        not report.duplicate_applies,
        f"{len(report.duplicate_applies)} duplicates",
    ))
    train_pending = [
        s for s in injector.pending if s.kind is not FaultKind.SLOWDOWN
    ]
    checks.append(ChaosCheck(
        "all trainer faults fired",
        not train_pending,
        f"{len(train_pending)} never fired",
    ))
    recoveries = report.restarts + report.rollbacks
    checks.append(ChaosCheck(
        "recovery within budget",
        recoveries <= config.max_restarts,
        f"{recoveries} recoveries, budget {config.max_restarts}",
    ))
    expected_backoff = sum(policy.schedule(report.restarts))
    checks.append(ChaosCheck(
        "deterministic backoff schedule",
        abs(report.total_backoff - expected_backoff) < 1e-12,
        f"waited {report.total_backoff:.4f}s",
    ))
    return reference


#: Degradation policy every chaos serving run uses (shared so checks
#: and server agree on the staleness bound).
_SERVE_POLICY = DegradationPolicy(
    slo_target=5e-3,
    max_staleness=10.0,
    breaker=BreakerConfig(
        failure_threshold=3, cooldown=0.02, half_open_successes=2,
    ),
)


def _serve(
    model: DLRM,
    fallback: ModelSnapshot,
    spec,
    config: ChaosHarnessConfig,
    injector,
) -> DegradationOutcome:
    generator = RequestGenerator(spec, rate=config.request_rate, seed=5)
    requests = generator.generate(config.num_requests)
    hot_rows = {
        t: generator.hot_rows(t, config.hot_coverage)
        for t in range(spec.num_sparse)
    }
    server = ResilientInferenceServer(
        ServingModel(model, hot_rows=hot_rows, version=1),
        batching=BatchingPolicy(max_batch_size=16, max_wait=1e-3),
        degradation=_SERVE_POLICY,
        service_time=ServiceTimeModel(),
        injector=injector,
    )
    server.set_fallback(fallback, hot_rows=hot_rows, time=0.0)
    return server.run(requests)


def _check_serving(
    plan: FaultPlan,
    config: ChaosHarnessConfig,
    reference: PipelinedPSTrainer,
    spec,
    outcome: ChaosOutcome,
) -> None:
    primary_model = ModelSnapshot.from_trainer(
        reference, version=1
    ).materialize()
    fallback = ModelSnapshot.from_trainer(reference, version=0)

    baseline = _serve(primary_model, fallback, spec, config, injector=None)
    degraded = _serve(
        primary_model, fallback, spec, config, injector=plan.injector()
    )
    outcome.serving_baseline = baseline
    outcome.serving_degraded = degraded

    checks = outcome.checks
    offered = degraded.report.offered
    accounted = (
        degraded.report.completed
        + len(degraded.rejected_ids)
        + len(degraded.shed_ids)
    )
    checks.append(ChaosCheck(
        "all requests accounted",
        offered == accounted and offered == config.num_requests,
        f"{accounted}/{offered} (completed {degraded.report.completed})",
    ))
    checks.append(ChaosCheck(
        "bounded fallback staleness",
        degraded.max_fallback_age <= _SERVE_POLICY.max_staleness,
        f"max age {degraded.max_fallback_age:.4f}s "
        f"(bound {_SERVE_POLICY.max_staleness:g}s)",
    ))
    p99_bound = baseline.report.latency_p99 * config.p99_budget_factor
    checks.append(ChaosCheck(
        "p99 degradation bounded",
        degraded.report.latency_p99 <= p99_bound,
        f"p99 {degraded.report.latency_p99 * 1e3:.3f}ms vs bound "
        f"{p99_bound * 1e3:.3f}ms",
    ))
    if plan.serve_specs:
        opened = any(
            tr.dst is BreakerState.OPEN for tr in degraded.breaker_transitions
        )
        checks.append(ChaosCheck(
            "breaker opened under slowdown",
            opened,
            f"{len(degraded.breaker_transitions)} transitions",
        ))
        checks.append(ChaosCheck(
            "breaker recovered after window",
            degraded.final_breaker_state is BreakerState.CLOSED,
            f"final state {degraded.final_breaker_state.value}",
        ))
        checks.append(ChaosCheck(
            "fallback actually served",
            degraded.fallback_batches > 0,
            f"{degraded.fallback_batches} stale batches",
        ))
    else:
        checks.append(ChaosCheck(
            "breaker stayed closed (no serve faults)",
            degraded.final_breaker_state is BreakerState.CLOSED
            and not degraded.breaker_transitions,
            f"{len(degraded.breaker_transitions)} transitions",
        ))


def run_chaos(
    plan: FaultPlan,
    checkpoint_dir: str,
    config: Optional[ChaosHarnessConfig] = None,
) -> ChaosOutcome:
    """Run the full chaos scenario for ``plan``; see the module docs."""
    config = config or ChaosHarnessConfig()
    outcome = ChaosOutcome(plan=plan)
    reference = _check_training(plan, config, checkpoint_dir, outcome)
    spec, _, _ = _build_harness(config)
    if reference is not None:
        _check_serving(plan, config, reference, spec, outcome)
    return outcome


def resume_determinism_check(
    checkpoint_dir: str,
    config: Optional[ChaosHarnessConfig] = None,
    split: Optional[int] = None,
) -> bool:
    """Kill-free snapshot/restore must reproduce the bitwise trajectory.

    Trains ``num_batches`` uninterrupted, then again as two chunks
    joined through a :class:`~repro.resilience.checkpoint.CheckpointStore`
    round-trip (snapshot at ``split``, fresh trainer, restore, resume).
    Returns whether losses *and* final host tables match bit for bit —
    the foundation invariant of every crash recovery in this package.
    """
    import numpy as np

    from repro.resilience.checkpoint import (
        capture_trainer_arrays,
        restore_trainer_arrays,
    )

    config = config or ChaosHarnessConfig()
    split = split if split is not None else config.num_batches // 2
    if not 0 < split < config.num_batches:
        raise ValueError(
            f"split must be in (0, {config.num_batches}), got {split}"
        )
    _, log, factory = _build_harness(config)

    reference = factory(None)
    ref_losses = [
        float(x) for x in reference.train(log, config.num_batches).losses
    ]

    store = CheckpointStore(checkpoint_dir, keep_last=2)
    first = factory(None)
    losses = [float(x) for x in first.train(log, split).losses]
    store.save(split, capture_trainer_arrays(first))

    state, skipped = store.load_latest()
    if skipped or state.step != split:
        return False
    second = factory(None)
    restore_trainer_arrays(second, state.arrays)
    losses += [
        float(x)
        for x in second.train(
            log, config.num_batches - split, start=split
        ).losses
    ]

    ref_state = reference.server.state_arrays()
    second_state = second.server.state_arrays()
    tables_equal = sorted(ref_state) == sorted(second_state) and all(
        np.array_equal(ref_state[k], second_state[k]) for k in ref_state
    )
    return losses == ref_losses and tables_equal
