"""Chaos harness: run train/serve under a fault plan, check invariants.

``run_chaos`` is the engine behind the ``repro chaos`` CLI subcommand.
Given a named :class:`~repro.resilience.faults.FaultPlan` it:

1. trains an uninterrupted **reference** run (no faults, single
   ``train`` call) on the standard small PS-pipeline harness;
2. runs the same workload under the plan through
   :class:`~repro.resilience.supervisor.PipelineSupervisor` with a
   fault-injecting probe and a sabotaged checkpoint store;
3. serves a request stream through
   :class:`~repro.resilience.degradation.ResilientInferenceServer`
   twice — clean baseline and under the plan's slowdown windows —
   with the reference model as primary and an earlier snapshot as the
   stale fallback;
4. evaluates the **invariant checklist**: bitwise-identical loss
   trajectory, no lost steps, no duplicate host applies, every
   scheduled fault fired, recovery within the restart budget, a
   deterministic backoff schedule, bounded fallback staleness, full
   request accounting, and bounded p99 degradation.

Every check lands in the outcome as ``(name, ok, detail)`` so both the
CLI and the test suite render/assert the same list.  The whole run is
deterministic — two invocations of the same plan produce identical
outcomes, including the failure story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.circuit import BreakerConfig, BreakerState
from repro.resilience.degradation import (
    DegradationOutcome,
    DegradationPolicy,
    ResilientInferenceServer,
)
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    FaultProbe,
    FaultSite,
    FaultSpec,
)
from repro.resilience.supervisor import (
    PipelineSupervisor,
    RecoveryReport,
    RetryPolicy,
)
from repro.serving.batcher import BatchingPolicy
from repro.serving.requests import RequestGenerator
from repro.serving.server import ServiceTimeModel, ServingModel
from repro.serving.snapshot import ModelSnapshot
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import PipelinedPSTrainer

__all__ = [
    "FAULT_PLANS",
    "FLEET_CHAOS_PLANS",
    "ChaosCheck",
    "ChaosOutcome",
    "ChaosHarnessConfig",
    "FleetChaosConfig",
    "run_chaos",
    "run_fleet_chaos",
    "resume_determinism_check",
]


#: Named plans for the CLI and quickcheck.  Trainer faults are keyed on
#: the 18-step harness below (snapshots every 4 steps); serving
#: slowdowns on its ~0.5 s simulated request stream.
FAULT_PLANS: Dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "smoke": FaultPlan(
        name="smoke",
        specs=(
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=5),
            FaultSpec(FaultKind.CORRUPT, FaultSite.CHECKPOINT, step=8),
            FaultSpec(FaultKind.H2D_FAIL, FaultSite.PREFETCH_QUEUE, step=9),
            FaultSpec(FaultKind.DROP, FaultSite.GRAD_QUEUE, step=12),
            FaultSpec(
                FaultKind.SLOWDOWN, FaultSite.SERVE,
                time=0.05, duration=0.1, factor=40.0,
            ),
        ),
        seed=11,
    ),
    "stage-sweep": FaultPlan(
        name="stage-sweep",
        specs=(
            FaultSpec(FaultKind.CRASH, FaultSite.GATHER, step=3),
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=7),
            FaultSpec(FaultKind.CRASH, FaultSite.APPLY, step=11),
            FaultSpec(FaultKind.STALL, FaultSite.PREFETCH_QUEUE, step=14),
        ),
        seed=12,
    ),
    "torn-checkpoint": FaultPlan(
        name="torn-checkpoint",
        specs=(
            FaultSpec(FaultKind.TORN, FaultSite.CHECKPOINT, step=8),
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=10),
            FaultSpec(FaultKind.CORRUPT, FaultSite.CHECKPOINT, step=12),
            FaultSpec(FaultKind.CRASH, FaultSite.APPLY, step=14),
        ),
        seed=13,
    ),
    "serve-degrade": FaultPlan(
        name="serve-degrade",
        specs=(
            FaultSpec(
                FaultKind.SLOWDOWN, FaultSite.SERVE,
                time=0.05, duration=0.1, factor=40.0,
            ),
        ),
        seed=14,
    ),
}


@dataclass(frozen=True)
class ChaosCheck:
    """One verified invariant."""

    name: str
    ok: bool
    detail: str = ""


@dataclass(frozen=True)
class ChaosHarnessConfig:
    """Workload knobs for a chaos run (defaults sized for CI)."""

    num_batches: int = 18
    checkpoint_interval: int = 4
    batch_size: int = 32
    scale: float = 2e-5
    num_requests: int = 600
    request_rate: float = 1500.0
    hot_coverage: float = 0.3
    #: Degraded p99 may exceed the clean baseline's by at most this
    #: factor (the "bounded degradation" SLO under injected slowdowns).
    #: The breaker trips only after ``failure_threshold`` slow batches,
    #: so a handful of breach-window requests always land in the tail;
    #: without the ladder a 40x slowdown window blows p99 far past
    #: this.
    p99_budget_factor: float = 10.0
    max_restarts: int = 8
    #: 0 = legacy single-table :class:`HostParameterServer`; >= 1 puts
    #: the host tables behind a
    #: :class:`~repro.sharding.server.ShardedParameterServer` with that
    #: many shards (bitwise-identical trajectories, compression off).
    num_shards: int = 0


@dataclass
class ChaosOutcome:
    """Everything one chaos run produced."""

    plan: FaultPlan
    checks: List[ChaosCheck] = field(default_factory=list)
    recovery: Optional[RecoveryReport] = None
    serving_baseline: Optional[DegradationOutcome] = None
    serving_degraded: Optional[DegradationOutcome] = None

    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)

    def format(self) -> str:
        lines = [self.plan.describe(), ""]
        if self.recovery is not None:
            rec = self.recovery
            lines.append(
                f"training: {len(rec.losses)} steps committed, "
                f"{rec.restarts} restarts, {rec.rollbacks} rollbacks, "
                f"{rec.replayed_batches} batches replayed, "
                f"{rec.total_backoff:.4f}s backoff"
            )
            for event in rec.events:
                lines.append(f"  {event}")
        if self.serving_degraded is not None:
            deg = self.serving_degraded
            lines.append(
                f"serving: {deg.primary_batches} primary / "
                f"{deg.fallback_batches} fallback batches, "
                f"{len(deg.shed_ids)} shed, breaker "
                f"{deg.final_breaker_state.value}"
            )
        lines.append("")
        for check in self.checks:
            status = "ok" if check.ok else "FAIL"
            suffix = f"  ({check.detail})" if check.detail else ""
            lines.append(f"  {check.name:34s} [{status}]{suffix}")
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(f"chaos plan {self.plan.name!r}: {verdict}")
        return "\n".join(lines)


def _build_harness(config: ChaosHarnessConfig):
    """The standard small PS-pipeline workload (mirrors the test suite)."""
    spec = criteo_kaggle_like(scale=config.scale)
    log = SyntheticClickLog(spec, batch_size=config.batch_size, seed=0)
    model_cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    rows = list(model_cfg.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    host_map = {p: i for i, p in enumerate(host_positions)}
    server_rows = [rows[p] for p in host_positions]

    def factory(probe) -> PipelinedPSTrainer:
        bags = []
        for t, r in enumerate(model_cfg.table_rows):
            if t in host_map:
                bags.append(HostBackedEmbeddingBag(r, model_cfg.embedding_dim))
            else:
                bags.append(
                    build_embedding_bag(
                        model_cfg.backend_for_table(t), r,
                        model_cfg.embedding_dim, model_cfg.tt_rank,
                        seed=(200 + t),
                    )
                )
        model = DLRM(model_cfg, seed=7, embedding_bags=bags)
        if config.num_shards >= 1:
            from repro.sharding.server import ShardedParameterServer

            server = ShardedParameterServer(
                server_rows, model_cfg.embedding_dim, lr=0.05,
                num_shards=config.num_shards, seed=3,
            )
        else:
            server = HostParameterServer(
                server_rows, model_cfg.embedding_dim, lr=0.05, seed=3
            )
        return PipelinedPSTrainer(
            model, server, host_map, lr=0.05,
            prefetch_depth=3, grad_queue_depth=2, use_cache=True,
            probe=probe,
        )

    return spec, log, factory


def _check_training(
    plan: FaultPlan,
    config: ChaosHarnessConfig,
    checkpoint_dir: str,
    outcome: ChaosOutcome,
) -> Optional[PipelinedPSTrainer]:
    spec, log, factory = _build_harness(config)

    reference = factory(None)
    ref_losses = [
        float(x) for x in reference.train(log, config.num_batches).losses
    ]

    injector = plan.injector()
    probe = FaultProbe(injector)
    store = CheckpointStore(
        checkpoint_dir, keep_last=max(4, config.max_restarts),
        injector=injector,
    )
    policy = RetryPolicy(max_restarts=config.max_restarts, seed=plan.seed)
    supervisor = PipelineSupervisor(factory, store, probe, policy)
    report = supervisor.run(
        log, config.num_batches, config.checkpoint_interval
    )
    outcome.recovery = report

    checks = outcome.checks
    checks.append(ChaosCheck(
        "bitwise loss trajectory",
        report.losses == ref_losses,
        f"{len(report.losses)} committed vs {len(ref_losses)} reference",
    ))
    checks.append(ChaosCheck(
        "no lost steps",
        len(report.losses) == config.num_batches,
        f"{len(report.losses)}/{config.num_batches}",
    ))
    checks.append(ChaosCheck(
        "no duplicate applies",
        not report.duplicate_applies,
        f"{len(report.duplicate_applies)} duplicates",
    ))
    train_pending = [
        s for s in injector.pending if s.kind is not FaultKind.SLOWDOWN
    ]
    checks.append(ChaosCheck(
        "all trainer faults fired",
        not train_pending,
        f"{len(train_pending)} never fired",
    ))
    recoveries = report.restarts + report.rollbacks
    checks.append(ChaosCheck(
        "recovery within budget",
        recoveries <= config.max_restarts,
        f"{recoveries} recoveries, budget {config.max_restarts}",
    ))
    expected_backoff = sum(policy.schedule(report.restarts))
    checks.append(ChaosCheck(
        "deterministic backoff schedule",
        abs(report.total_backoff - expected_backoff) < 1e-12,
        f"waited {report.total_backoff:.4f}s",
    ))
    return reference


#: Degradation policy every chaos serving run uses (shared so checks
#: and server agree on the staleness bound).
_SERVE_POLICY = DegradationPolicy(
    slo_target=5e-3,
    max_staleness=10.0,
    breaker=BreakerConfig(
        failure_threshold=3, cooldown=0.02, half_open_successes=2,
    ),
)


def _serve(
    model: DLRM,
    fallback: ModelSnapshot,
    spec,
    config: ChaosHarnessConfig,
    injector,
) -> DegradationOutcome:
    generator = RequestGenerator(spec, rate=config.request_rate, seed=5)
    requests = generator.generate(config.num_requests)
    hot_rows = {
        t: generator.hot_rows(t, config.hot_coverage)
        for t in range(spec.num_sparse)
    }
    server = ResilientInferenceServer(
        ServingModel(model, hot_rows=hot_rows, version=1),
        batching=BatchingPolicy(max_batch_size=16, max_wait=1e-3),
        degradation=_SERVE_POLICY,
        service_time=ServiceTimeModel(),
        injector=injector,
    )
    server.set_fallback(fallback, hot_rows=hot_rows, time=0.0)
    return server.run(requests)


def _check_serving(
    plan: FaultPlan,
    config: ChaosHarnessConfig,
    reference: PipelinedPSTrainer,
    spec,
    outcome: ChaosOutcome,
) -> None:
    primary_model = ModelSnapshot.from_trainer(
        reference, version=1
    ).materialize()
    fallback = ModelSnapshot.from_trainer(reference, version=0)

    baseline = _serve(primary_model, fallback, spec, config, injector=None)
    degraded = _serve(
        primary_model, fallback, spec, config, injector=plan.injector()
    )
    outcome.serving_baseline = baseline
    outcome.serving_degraded = degraded

    checks = outcome.checks
    offered = degraded.report.offered
    accounted = (
        degraded.report.completed
        + len(degraded.rejected_ids)
        + len(degraded.shed_ids)
    )
    checks.append(ChaosCheck(
        "all requests accounted",
        offered == accounted and offered == config.num_requests,
        f"{accounted}/{offered} (completed {degraded.report.completed})",
    ))
    checks.append(ChaosCheck(
        "bounded fallback staleness",
        degraded.max_fallback_age <= _SERVE_POLICY.max_staleness,
        f"max age {degraded.max_fallback_age:.4f}s "
        f"(bound {_SERVE_POLICY.max_staleness:g}s)",
    ))
    p99_bound = baseline.report.latency_p99 * config.p99_budget_factor
    checks.append(ChaosCheck(
        "p99 degradation bounded",
        degraded.report.latency_p99 <= p99_bound,
        f"p99 {degraded.report.latency_p99 * 1e3:.3f}ms vs bound "
        f"{p99_bound * 1e3:.3f}ms",
    ))
    if plan.serve_specs:
        opened = any(
            tr.dst is BreakerState.OPEN for tr in degraded.breaker_transitions
        )
        checks.append(ChaosCheck(
            "breaker opened under slowdown",
            opened,
            f"{len(degraded.breaker_transitions)} transitions",
        ))
        checks.append(ChaosCheck(
            "breaker recovered after window",
            degraded.final_breaker_state is BreakerState.CLOSED,
            f"final state {degraded.final_breaker_state.value}",
        ))
        checks.append(ChaosCheck(
            "fallback actually served",
            degraded.fallback_batches > 0,
            f"{degraded.fallback_batches} stale batches",
        ))
    else:
        checks.append(ChaosCheck(
            "breaker stayed closed (no serve faults)",
            degraded.final_breaker_state is BreakerState.CLOSED
            and not degraded.breaker_transitions,
            f"{len(degraded.breaker_transitions)} transitions",
        ))


def run_chaos(
    plan: FaultPlan,
    checkpoint_dir: str,
    config: Optional[ChaosHarnessConfig] = None,
) -> ChaosOutcome:
    """Run the full chaos scenario for ``plan``; see the module docs."""
    config = config or ChaosHarnessConfig()
    outcome = ChaosOutcome(plan=plan)
    reference = _check_training(plan, config, checkpoint_dir, outcome)
    spec, _, _ = _build_harness(config)
    if reference is not None:
        _check_serving(plan, config, reference, spec, outcome)
    return outcome


def resume_determinism_check(
    checkpoint_dir: str,
    config: Optional[ChaosHarnessConfig] = None,
    split: Optional[int] = None,
) -> bool:
    """Kill-free snapshot/restore must reproduce the bitwise trajectory.

    Trains ``num_batches`` uninterrupted, then again as two chunks
    joined through a :class:`~repro.resilience.checkpoint.CheckpointStore`
    round-trip (snapshot at ``split``, fresh trainer, restore, resume).
    Returns whether losses *and* final host tables match bit for bit —
    the foundation invariant of every crash recovery in this package.
    """
    import numpy as np

    from repro.resilience.checkpoint import (
        capture_trainer_arrays,
        restore_trainer_arrays,
    )

    config = config or ChaosHarnessConfig()
    split = split if split is not None else config.num_batches // 2
    if not 0 < split < config.num_batches:
        raise ValueError(
            f"split must be in (0, {config.num_batches}), got {split}"
        )
    _, log, factory = _build_harness(config)

    reference = factory(None)
    ref_losses = [
        float(x) for x in reference.train(log, config.num_batches).losses
    ]

    store = CheckpointStore(checkpoint_dir, keep_last=2)
    first = factory(None)
    losses = [float(x) for x in first.train(log, split).losses]
    store.save(split, capture_trainer_arrays(first))

    state, skipped = store.load_latest()
    if skipped or state.step != split:
        return False
    second = factory(None)
    restore_trainer_arrays(second, state.arrays)
    losses += [
        float(x)
        for x in second.train(
            log, config.num_batches - split, start=split
        ).losses
    ]

    ref_state = reference.server.state_arrays()
    second_state = second.server.state_arrays()
    tables_equal = sorted(ref_state) == sorted(second_state) and all(
        np.array_equal(ref_state[k], second_state[k]) for k in ref_state
    )
    return losses == ref_losses and tables_equal


# ---------------------------------------------------------------------------
# Serving-fleet chaos
# ---------------------------------------------------------------------------

#: Fleet-side plan names the ``repro chaos`` CLI dispatches to
#: :func:`run_fleet_chaos` instead of :func:`run_chaos`.  They are
#: *meta*-plans: the harness derives the concrete
#: :class:`~repro.resilience.faults.FaultSpec` schedule (which replica,
#: which injection time) from the request stream at run time.
FLEET_CHAOS_PLANS: Tuple[str, ...] = ("fleet-smoke", "fleet-replica-sweep")


@dataclass(frozen=True)
class FleetChaosConfig:
    """Workload knobs for a serving-fleet chaos run (sized for CI).

    The config is deliberately generous on queue capacity and SLO
    target: front-door rejections and breaker trips are *load*
    responses, and the bitwise invariant is about *faults*, so the
    gate keeps the two concerns apart (load-shaping behaviour has its
    own tests).
    """

    num_replicas: int = 2
    num_requests: int = 400
    request_rate: float = 2500.0
    scale: float = 2e-5
    max_batch_size: int = 8
    max_wait: float = 1e-3
    hot_coverage: float = 0.3
    slo_target: float = 0.05
    queue_capacity: int = 512
    #: Fractions of the request stream at which the sweep injects a
    #: crash (each fraction x each replica is one run).
    injection_fractions: Tuple[float, ...] = (0.25, 0.5, 0.75)


def _build_fleet_world(config: FleetChaosConfig):
    """(spec, snapshot_v1, snapshot_v2, hot_rows, requests) for one gate."""
    spec = criteo_kaggle_like(scale=config.scale)
    model_cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    snapshot_v1 = ModelSnapshot.from_model(DLRM(model_cfg, seed=7), version=1)
    snapshot_v2 = ModelSnapshot.from_model(DLRM(model_cfg, seed=9), version=2)
    generator = RequestGenerator(spec, rate=config.request_rate, seed=5)
    requests = generator.generate(config.num_requests)
    hot_rows = {
        t: generator.hot_rows(t, config.hot_coverage)
        for t in range(spec.num_sparse)
    }
    return spec, snapshot_v1, snapshot_v2, hot_rows, requests


def _fleet_config(config: FleetChaosConfig):
    from repro.serving.fleet import FleetConfig

    return FleetConfig(
        num_replicas=config.num_replicas,
        batching=BatchingPolicy(
            max_batch_size=config.max_batch_size,
            max_wait=config.max_wait,
            queue_capacity=config.queue_capacity,
        ),
        degradation=DegradationPolicy(slo_target=config.slo_target),
        queue_capacity=config.queue_capacity,
    )


def _injection_time(requests, fraction: float) -> float:
    index = min(
        int(fraction * (len(requests) - 1)), len(requests) - 1
    )
    return requests[index].arrival_time


def _delivered_bitwise(reference, faulted) -> Tuple[bool, str]:
    """Are all delivered predictions bitwise-equal to the reference's?

    Delivered = completed in the faulted run (everything the fleet
    actually answered).  Also insists batch compositions agree for all
    batch ids both runs formed — the stronger structural property the
    prediction equality rests on.
    """
    ref_preds = reference.predictions_by_request()
    got_preds = faulted.predictions_by_request()
    mismatched = [
        rid for rid in sorted(got_preds)
        if rid not in ref_preds or ref_preds[rid] != got_preds[rid]
    ]
    ref_comp = reference.batch_compositions()
    got_comp = faulted.batch_compositions()
    comp_diff = sorted(
        bid for bid in set(ref_comp) & set(got_comp)
        if ref_comp[bid] != got_comp[bid]
    )
    ok = not mismatched and not comp_diff
    detail = (
        f"{len(got_preds)} delivered, {len(mismatched)} prediction "
        f"mismatches, {len(comp_diff)} composition diffs"
    )
    return ok, detail


def run_fleet_chaos(
    plan_name: str,
    config: Optional[FleetChaosConfig] = None,
) -> ChaosOutcome:
    """Run a serving-fleet chaos plan and check its invariant list.

    ``fleet-smoke`` is the quickcheck gate: one crash of replica 0 at
    the midpoint of a 2-replica run must deliver bitwise-identical
    predictions for every answered request versus the fault-free run.

    ``fleet-replica-sweep`` is the full acceptance sweep: a crash of
    *every* replica at *every* injection fraction (each its own run,
    each bitwise vs the shared reference), plus a stuck-replica run
    (watchdog redirect, still bitwise), a slow-replica run (fault
    isolation: sibling breakers never open, still bitwise), and a
    rolling hot-swap under load (zero dropped in-flight batches, the
    ⌈N/2⌉ live floor held, versions monotonic, a stale follow-up swap
    rejected).
    """
    from repro.serving.fleet import ReplicaState, ServingFleet

    if plan_name not in FLEET_CHAOS_PLANS:
        raise KeyError(
            f"unknown fleet chaos plan {plan_name!r}; "
            f"expected one of {FLEET_CHAOS_PLANS}"
        )
    config = config or FleetChaosConfig()
    outcome = ChaosOutcome(plan=FaultPlan(name=plan_name))
    checks = outcome.checks
    _, snapshot_v1, snapshot_v2, hot_rows, requests = _build_fleet_world(
        config
    )
    fleet_cfg = _fleet_config(config)

    def fleet(injector=None) -> "ServingFleet":
        return ServingFleet(
            snapshot_v1, hot_rows=hot_rows, config=fleet_cfg,
            injector=injector,
        )

    reference = fleet().run(requests)
    checks.append(ChaosCheck(
        "reference fleet run clean",
        not reference.rejected_ids
        and not reference.shed_ids
        and reference.unaccounted == 0
        and len(reference.results) == config.num_requests,
        f"{len(reference.results)}/{config.num_requests} completed",
    ))

    def crash_run(replica: int, fraction: float) -> Tuple[bool, str]:
        time = _injection_time(requests, fraction)
        plan = FaultPlan(
            name=f"crash-r{replica}@{fraction:g}",
            specs=(FaultSpec(
                FaultKind.CRASH, FaultSite.REPLICA,
                replica=replica, time=time,
            ),),
        )
        injector = plan.injector()
        run = fleet(injector).run(requests)
        ok, detail = _delivered_bitwise(reference, run)
        report = run.replicas[replica]
        fired = not injector.fleet_pending
        dead = report.final_state is ReplicaState.DEAD
        accounted = run.unaccounted == 0 and (
            len(run.results) + len(run.rejected_ids) + len(run.shed_ids)
            == config.num_requests
        )
        ok = ok and fired and dead and accounted
        return ok, (
            f"r{replica}@{fraction:g}: {detail}, "
            f"{len(run.redirects)} redirects"
        )

    if plan_name == "fleet-smoke":
        ok, detail = crash_run(0, 0.5)
        checks.append(ChaosCheck("kill-one-replica bitwise", ok, detail))
        return outcome

    # fleet-replica-sweep -------------------------------------------------
    failures = []
    runs = 0
    for replica in range(config.num_replicas):
        for fraction in config.injection_fractions:
            runs += 1
            ok, detail = crash_run(replica, fraction)
            if not ok:
                failures.append(detail)
    checks.append(ChaosCheck(
        "kill-any-replica bitwise at every injection point",
        not failures,
        f"{runs - len(failures)}/{runs} runs bitwise"
        + (f"; first failure: {failures[0]}" if failures else ""),
    ))

    # Stuck replica: the watchdog must declare it dead and the fleet
    # must re-serve its swallowed batches bitwise.
    stuck_time = _injection_time(requests, 0.4)
    stuck_plan = FaultPlan(
        name="stuck-r0",
        specs=(FaultSpec(
            FaultKind.STUCK, FaultSite.REPLICA, replica=0,
            time=stuck_time, duration=0.02,
        ),),
    )
    stuck_run = fleet(stuck_plan.injector()).run(requests)
    stuck_report = stuck_run.replicas[0]
    stuck_bitwise, stuck_detail = _delivered_bitwise(reference, stuck_run)
    checks.append(ChaosCheck(
        "stuck replica declared dead, work re-served bitwise",
        stuck_bitwise
        and stuck_report.stuck_declared
        and stuck_report.final_state is ReplicaState.DEAD
        and stuck_run.unaccounted == 0,
        f"{stuck_detail}; watchdog fired: {stuck_report.stuck_declared}",
    ))

    # Slow replica: latency faults stay inside their fault domain —
    # sibling breakers never open — and predictions stay bitwise.
    slow_time = _injection_time(requests, 0.3)
    slow_plan = FaultPlan(
        name="slow-r0",
        specs=(FaultSpec(
            FaultKind.SLOWDOWN, FaultSite.REPLICA, replica=0,
            time=slow_time, duration=0.05, factor=30.0,
        ),),
    )
    slow_run = fleet(slow_plan.injector()).run(requests)
    sibling_opened = any(
        any(tr.dst is BreakerState.OPEN for tr in rep.breaker_transitions)
        for rep in slow_run.replicas if rep.replica_id != 0
    )
    slow_bitwise, slow_detail = _delivered_bitwise(reference, slow_run)
    checks.append(ChaosCheck(
        "slow replica isolated (siblings stay closed, bitwise)",
        slow_bitwise and not sibling_opened
        and slow_run.unaccounted == 0,
        f"{slow_detail}; sibling breaker opened: {sibling_opened}",
    ))

    # Rolling hot-swap under load: zero dropped in-flight batches, the
    # ⌈N/2⌉ live floor held, versions monotonic per acknowledgment,
    # and a stale follow-up swap rejected.
    swap_time = _injection_time(requests, 0.5)
    swap_fleet = fleet()
    swap_fleet.schedule_swap(swap_time, snapshot_v2)
    # Re-offering the v1 snapshot after v2 was acknowledged is the
    # stale-swap case: it must be rejected, not installed.
    swap_fleet.schedule_swap(swap_time * 1.2, snapshot_v1)
    swap_run = swap_fleet.run(requests)
    swap_ok = (
        len(swap_run.swaps) == 1
        and swap_run.swaps[0].completed
        and swap_run.swaps[0].dropped_in_flight == 0
        and swap_run.swaps[0].min_live_observed
        >= swap_run.swaps[0].min_live_floor
        and swap_run.final_version == 2
        and swap_run.stale_swaps_rejected == 1
        and swap_run.unaccounted == 0
        and not swap_run.shed_ids
    )
    completed_at = (
        swap_run.swaps[0].completed_at if swap_run.swaps else None
    )
    monotonic = completed_at is not None and all(
        batch.model_version == 2
        for batch in swap_run.served_batches
        if batch.start_time > completed_at
    )
    versions = sorted(swap_run.report.requests_per_version)
    checks.append(ChaosCheck(
        "rolling swap: zero drops, live floor held, stale rejected",
        swap_ok and monotonic,
        f"served versions {versions}, "
        f"min live {swap_run.swaps[0].min_live_observed if swap_run.swaps else '-'}"
        f"/floor {swap_run.swaps[0].min_live_floor if swap_run.swaps else '-'}, "
        f"{swap_run.stale_swaps_rejected} stale rejected",
    ))
    return outcome
