"""Resilience layer: deterministic chaos, crash recovery, degradation.

Answers the production question the rest of the repo leaves open: what
happens when a pipeline stage crashes, a queue stalls, a checkpoint is
torn mid-write, or the serving path breaches its SLO?  Every failure
here is *injected deterministically* (seeded
:class:`~repro.resilience.faults.FaultPlan` over the existing
TraceProbe/queue/SimClock seams) and every recovery is *provable*
(bitwise-identical loss trajectories after rollback-and-replay,
bounded-staleness degraded serving).  See DESIGN.md §10.
"""

from repro.resilience.chaos import (
    FAULT_PLANS,
    FLEET_CHAOS_PLANS,
    ChaosCheck,
    ChaosHarnessConfig,
    ChaosOutcome,
    FleetChaosConfig,
    resume_determinism_check,
    run_chaos,
    run_fleet_chaos,
)
from repro.resilience.checkpoint import (
    CheckpointStore,
    NoCheckpointError,
    TrainerState,
    capture_trainer_arrays,
    restore_trainer_arrays,
)
from repro.resilience.circuit import (
    BreakerConfig,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.resilience.degradation import (
    DegradationOutcome,
    DegradationPolicy,
    ResilientInferenceServer,
)
from repro.resilience.faults import (
    FaultError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultProbe,
    FaultRecord,
    FaultSite,
    FaultSpec,
    FaultyQueue,
    H2DCopyError,
    InjectedCrash,
    QueueStallTimeout,
)
from repro.resilience.supervisor import (
    PipelineSupervisor,
    RecoveryBudgetExceeded,
    RecoveryReport,
    RetryPolicy,
)

__all__ = [
    "FAULT_PLANS",
    "FLEET_CHAOS_PLANS",
    "ChaosCheck",
    "ChaosHarnessConfig",
    "ChaosOutcome",
    "FleetChaosConfig",
    "run_chaos",
    "run_fleet_chaos",
    "resume_determinism_check",
    "CheckpointStore",
    "NoCheckpointError",
    "TrainerState",
    "capture_trainer_arrays",
    "restore_trainer_arrays",
    "BreakerConfig",
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
    "DegradationOutcome",
    "DegradationPolicy",
    "ResilientInferenceServer",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultProbe",
    "FaultRecord",
    "FaultSite",
    "FaultSpec",
    "FaultyQueue",
    "H2DCopyError",
    "InjectedCrash",
    "QueueStallTimeout",
    "PipelineSupervisor",
    "RecoveryBudgetExceeded",
    "RecoveryReport",
    "RetryPolicy",
]
