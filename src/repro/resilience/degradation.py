"""Graceful serving degradation: breaker, shedding, stale fallback.

A :class:`ResilientInferenceServer` is the
:class:`~repro.serving.server.InferenceServer` event loop with a
degradation ladder wrapped around dispatch:

1. **healthy** — batches run on the primary model; each completion
   feeds the :class:`~repro.resilience.circuit.CircuitBreaker` a
   success or an SLO-breach failure (worst per-request latency in the
   batch vs ``slo_target``);
2. **degraded** — with the breaker OPEN, batches are answered by a
   registered *stale* :class:`~repro.serving.snapshot.ModelSnapshot`
   fallback, provided its age at serve time is within
   ``max_staleness`` (the bounded-staleness guarantee: a degraded
   answer is always stamped with the stale version, and never comes
   from a snapshot older than the bound);
3. **shed** — no fallback, or fallback too stale: the batch's
   requests are rejected outright.  Better an explicit error than an
   unbounded queue — the same admission-control philosophy as the
   micro-batcher's bounded pending queue.

Injected slowdown windows (:class:`~repro.resilience.faults.FaultKind`
``SLOWDOWN``) inflate *primary* service times only — the fallback
models a local, already-materialized table that the failing dependency
cannot touch.  Everything runs on the deterministic Simulator, so a
degradation trajectory (trip time, probe times, recovery time) is a
pure function of (requests, plan, policy).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.circuit import (
    BreakerConfig,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.resilience.faults import FaultInjector
from repro.serving.batcher import BatchingPolicy, MicroBatch, MicroBatcher
from repro.serving.metrics import (
    RequestResult,
    ServedBatch,
    ServingMetrics,
    SLOReport,
)
from repro.serving.requests import InferenceRequest, coalesce_requests
from repro.serving.server import HotRowMap, ServiceTimeModel, ServingModel
from repro.serving.snapshot import ModelSnapshot
from repro.system.simclock import Simulator
from repro.utils.validation import check_positive

__all__ = [
    "DegradationPolicy",
    "DegradationOutcome",
    "ResilientInferenceServer",
]


@dataclass(frozen=True)
class DegradationPolicy:
    """SLO and staleness knobs for the degradation ladder."""

    #: Per-request latency bound (seconds); a batch whose worst request
    #: exceeds it counts as one breaker failure.
    slo_target: float = 5e-3
    #: Maximum simulated age of the fallback snapshot at serve time.
    max_staleness: float = 10.0
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        check_positive(self.slo_target, "slo_target")
        if self.max_staleness < 0:
            raise ValueError(
                f"max_staleness must be >= 0, got {self.max_staleness}"
            )


@dataclass(frozen=True)
class DegradationOutcome:
    """A resilient serving run's results plus its degradation story."""

    report: SLOReport
    results: Tuple[RequestResult, ...]
    served_batches: Tuple[ServedBatch, ...]
    #: Rejected at admission (bounded pending queue full).
    rejected_ids: Tuple[int, ...]
    #: Shed by the breaker with no eligible fallback.
    shed_ids: Tuple[int, ...]
    breaker_transitions: Tuple[BreakerTransition, ...]
    final_breaker_state: BreakerState
    primary_batches: int
    fallback_batches: int
    #: Worst fallback age actually served (<= max_staleness always).
    max_fallback_age: float
    final_model_version: int

    def predictions_by_request(self) -> Dict[int, float]:
        return {r.request_id: r.prediction for r in self.results}


class ResilientInferenceServer:
    """Micro-batching server with a breaker-gated degradation ladder.

    Parameters
    ----------
    serving_model:
        The primary model view.
    batching:
        Micro-batching knobs (shared with the plain server).
    degradation:
        SLO target, staleness bound, breaker thresholds.
    service_time:
        Deterministic per-batch latency model.
    injector:
        Optional fault injector supplying slowdown windows.
    """

    def __init__(
        self,
        serving_model: ServingModel,
        batching: Optional[BatchingPolicy] = None,
        degradation: Optional[DegradationPolicy] = None,
        num_workers: int = 1,
        service_time: Optional[ServiceTimeModel] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        check_positive(num_workers, "num_workers")
        self.serving_model = serving_model
        self.batching = batching or BatchingPolicy()
        self.degradation = degradation or DegradationPolicy()
        self.num_workers = int(num_workers)
        self.service_time = service_time or ServiceTimeModel()
        self.injector = injector
        self.breaker = CircuitBreaker(self.degradation.breaker)
        self._fallback: Optional[ServingModel] = None
        self._fallback_time = 0.0

    def set_fallback(
        self,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap] = None,
        time: float = 0.0,
    ) -> None:
        """Register the stale snapshot served when the breaker is open.

        ``time`` is the simulated instant the snapshot was taken; the
        staleness bound is measured from it.
        """
        if time < 0:
            raise ValueError(f"fallback time must be >= 0, got {time}")
        self._fallback = ServingModel(
            snapshot.materialize(),
            hot_rows=hot_rows if hot_rows is not None else {},
            version=snapshot.version,
        )
        self._fallback_time = float(time)

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[InferenceRequest]) -> DegradationOutcome:
        """Serve a request stream through the degradation ladder."""
        sim = Simulator()
        batcher = MicroBatcher(self.batching)
        metrics = ServingMetrics()
        free_workers = list(range(self.num_workers))
        rejected_ids: List[int] = []
        shed_ids: List[int] = []
        counters = {
            "batch": 0, "primary": 0, "fallback": 0, "max_age": 0.0,
        }
        first_arrival = requests[0].arrival_time if requests else 0.0
        slo = self.degradation.slo_target

        def try_dispatch() -> None:
            while free_workers and batcher.ready(sim.now):
                micro = batcher.pop_batch(sim.now)
                if micro is not None:
                    dispatch(micro)

        def route(now: float) -> Tuple[Optional[ServingModel], bool]:
            """(model, is_primary); (None, False) means shed."""
            if self.breaker.allow(now):
                return self.serving_model, True
            fallback = self._fallback
            if fallback is None:
                return None, False
            age = now - self._fallback_time
            if age > self.degradation.max_staleness:
                return None, False
            counters["max_age"] = max(counters["max_age"], age)
            return fallback, False

        def dispatch(micro: MicroBatch) -> None:
            model, is_primary = route(sim.now)
            if model is None:
                for request in micro.requests:
                    shed_ids.append(request.request_id)
                    metrics.record_rejection()
                return
            counters["primary" if is_primary else "fallback"] += 1
            worker_id = free_workers.pop(0)
            coalesced = coalesce_requests(micro.requests)
            hot0, cold0 = model.hot_lookups, model.cold_lookups
            predictions = model.predict_proba(coalesced)
            hot = model.hot_lookups - hot0
            cold = model.cold_lookups - cold0
            duration = self.service_time.duration(micro.size, hot, cold)
            if is_primary and self.injector is not None:
                duration *= self.injector.slowdown_factor(sim.now)
            start = sim.now
            batch_id = counters["batch"]
            counters["batch"] += 1

            def complete() -> None:
                metrics.record_batch(
                    ServedBatch(
                        batch_id=batch_id,
                        request_ids=tuple(
                            r.request_id for r in micro.requests
                        ),
                        batch=coalesced,
                        model_version=model.version,
                        worker_id=worker_id,
                        start_time=start,
                        finish_time=sim.now,
                        predictions=predictions,
                        hot_lookups=hot,
                        cold_lookups=cold,
                    )
                )
                worst = 0.0
                for request, prob in zip(micro.requests, predictions):
                    latency = sim.now - request.arrival_time
                    worst = max(worst, latency)
                    metrics.record_result(
                        RequestResult(
                            request_id=request.request_id,
                            arrival_time=request.arrival_time,
                            finish_time=sim.now,
                            model_version=model.version,
                            prediction=float(prob),
                        )
                    )
                if is_primary:
                    if worst > slo:
                        self.breaker.record_failure(sim.now)
                    else:
                        self.breaker.record_success(sim.now)
                bisect.insort(free_workers, worker_id)
                try_dispatch()

            sim.schedule(duration, complete)

        def arrive(request: InferenceRequest) -> None:
            if not batcher.offer(request, sim.now):
                rejected_ids.append(request.request_id)
                metrics.record_rejection()
                return
            sim.schedule(self.batching.max_wait, try_dispatch)
            try_dispatch()

        for request in requests:
            sim.schedule(request.arrival_time, lambda r=request: arrive(r))
        end_time = sim.run()

        hot = sum(b.hot_lookups for b in metrics.served_batches)
        cold = sum(b.cold_lookups for b in metrics.served_batches)
        report = metrics.build_report(
            duration=max(end_time - first_arrival, 0.0),
            max_queue_depth=batcher.max_depth,
            cache_hit_rate=hot / (hot + cold) if hot + cold else 0.0,
            num_hot_rows=self.serving_model.num_hot_rows,
        )
        return DegradationOutcome(
            report=report,
            results=tuple(sorted(metrics.results, key=lambda r: r.request_id)),
            served_batches=tuple(metrics.served_batches),
            rejected_ids=tuple(rejected_ids),
            shed_ids=tuple(shed_ids),
            breaker_transitions=tuple(self.breaker.transitions),
            final_breaker_state=self.breaker.state,
            primary_batches=counters["primary"],
            fallback_batches=counters["fallback"],
            max_fallback_age=counters["max_age"],
            final_model_version=self.serving_model.version,
        )
