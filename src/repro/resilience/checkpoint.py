"""Crash-consistent trainer snapshots: atomic, checksummed, replayable.

The recovery contract (DESIGN.md §10) rests on one observation: the PS
trainers are Markov in their array state.  The worker's SGD carries no
momentum, the default EffTT optimizer is plain SGD, and
``SyntheticClickLog.batch(i)`` is deterministic random access — so a
trainer rebuilt from ``(model params, TT cores, dense bag weights,
server tables)`` at step *k* and trained on batches ``[k, n)`` produces
the **bitwise-identical** loss trajectory of an uninterrupted run.
This module captures exactly that array set.

Crash consistency comes from write-then-rename: a snapshot is staged to
``ckpt-<step>.npz.tmp`` and published with :func:`os.replace`, which is
atomic on POSIX.  A crash mid-write leaves a ``.tmp`` orphan that the
store never reads; a crash *after* publish leaves a complete archive.
Corruption that slips past the filesystem (flipped bytes at rest) is
caught at load time by the per-array CRC32 manifest embedded in the
archive, and :meth:`CheckpointStore.load_latest` falls back to the
newest snapshot that still verifies.

Torn and corrupted writes can also be *injected* on a
:class:`~repro.resilience.faults.FaultInjector`'s cue, which is how the
chaos suite proves the fallback path actually works.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.models.serialization import CheckpointCorruptError, entry_crc32
from repro.resilience.faults import FaultInjector, FaultKind
from repro.system.parameter_server import HostBackedEmbeddingBag
from repro.system.pipeline import _PSTrainerBase

__all__ = [
    "TrainerState",
    "CheckpointStore",
    "NoCheckpointError",
    "capture_trainer_arrays",
    "restore_trainer_arrays",
]

_STATE_VERSION = 1
_MANIFEST_KEY = "__manifest__"


class NoCheckpointError(RuntimeError):
    """The store holds no loadable snapshot (none written, or all bad)."""


@dataclass(frozen=True)
class TrainerState:
    """One verified snapshot: the step it was taken at plus its arrays."""

    step: int
    arrays: Dict[str, np.ndarray]


def capture_trainer_arrays(trainer: _PSTrainerBase) -> Dict[str, np.ndarray]:
    """Copy every array that determines the trainer's future.

    Covers dense MLP parameters (``param/<name>``), local embedding
    bags (each bag's ``state_arrays()`` under ``bag<t>/<name>`` — the
    :class:`~repro.embeddings.protocol.CompressedEmbedding` surface:
    ``bag<t>/weight`` for dense/hash, ``bag<t>/core<k>`` plus optional
    ``bag<t>/adagrad<k>`` for TT, codebooks + codes for PQ), and the
    parameter server's state under a ``server/`` prefix, as named by
    the server's own ``state_arrays()`` — ``server/table<s>`` for the
    host server, ``server/table<t>/shard<s>`` (plus error-feedback
    residuals) for the sharded one.  Host-backed bags own nothing
    local — their rows are a view into the server — so they are
    skipped.
    """
    arrays: Dict[str, np.ndarray] = {}
    for name, param in trainer.model.named_parameters():
        arrays[f"param/{name}"] = np.array(param.data, copy=True)
    for t, bag in enumerate(trainer.model.embedding_bags):
        if isinstance(bag, HostBackedEmbeddingBag):
            continue
        for name, value in sorted(bag.state_arrays().items()):
            arrays[f"bag{t}/{name}"] = np.array(value, copy=True)
    for name, array in sorted(trainer.server.state_arrays().items()):
        arrays[f"server/{name}"] = np.array(array, copy=True)
    return arrays


def restore_trainer_arrays(
    trainer: _PSTrainerBase, arrays: Dict[str, np.ndarray]
) -> None:
    """Load a captured array set into a freshly built trainer, in place.

    The trainer must be structurally identical to the one captured
    (same config, same host-table placement); every array is shape-
    checked before anything is written so a mismatch cannot leave the
    trainer half-restored.
    """
    writes: List[Tuple[np.ndarray, np.ndarray]] = []

    def stage(key: str, target: np.ndarray) -> None:
        if key not in arrays:
            raise KeyError(f"snapshot missing array {key!r}")
        stored = arrays[key]
        if stored.shape != target.shape:
            raise ValueError(
                f"snapshot array {key!r} shape mismatch: "
                f"{stored.shape} vs {target.shape}"
            )
        writes.append((target, np.asarray(stored, dtype=target.dtype)))

    for name, param in trainer.model.named_parameters():
        stage(f"param/{name}", param.data)
    for t, bag in enumerate(trainer.model.embedding_bags):
        if isinstance(bag, HostBackedEmbeddingBag):
            continue
        # state_arrays() returns the live arrays, so staging them
        # writes the restored state in place.
        for name, value in sorted(bag.state_arrays().items()):
            stage(f"bag{t}/{name}", value)
    # The server validates its own arrays (shape-check before any
    # write), so staging model/bag arrays first then handing the
    # ``server/`` subset over keeps the all-or-nothing property.
    server_arrays = {}
    for name in trainer.server.state_arrays():
        key = f"server/{name}"
        if key not in arrays:
            raise KeyError(f"snapshot missing array {key!r}")
        server_arrays[name] = arrays[key]
    trainer.server.load_state_arrays(server_arrays)

    for target, stored in writes:
        target[...] = stored


class CheckpointStore:
    """Directory of atomic, CRC-checked ``ckpt-<step>.npz`` snapshots.

    Parameters
    ----------
    root:
        Directory for the snapshots (created if absent).
    keep_last:
        Retain at most this many *committed* snapshots; older ones are
        pruned after each successful save.  Keeping several is what
        makes corrupt-fallback possible.
    injector:
        Optional fault injector; when the plan schedules a TORN or
        CORRUPT checkpoint fault at the step being saved, the write is
        sabotaged accordingly.
    """

    def __init__(
        self,
        root: str,
        keep_last: int = 3,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.root = root
        self.keep_last = int(keep_last)
        self.injector = injector
        os.makedirs(root, exist_ok=True)

    # -- paths ----------------------------------------------------------
    def _path(self, step: int) -> str:
        return os.path.join(self.root, f"ckpt-{step:08d}.npz")

    def steps(self) -> List[int]:
        """Steps of every *committed* snapshot, ascending."""
        out = []
        for name in os.listdir(self.root):
            if name.startswith("ckpt-") and name.endswith(".npz"):
                out.append(int(name[len("ckpt-"):-len(".npz")]))
        return sorted(out)

    # -- write ----------------------------------------------------------
    def save(self, step: int, arrays: Dict[str, np.ndarray]) -> bool:
        """Atomically publish a snapshot for ``step``.

        Returns ``True`` when a complete snapshot was committed, and
        ``False`` when an injected TORN fault left only a truncated
        ``.tmp`` behind (the crash-mid-write scenario).  An injected
        CORRUPT fault commits the rename and *then* flips a payload
        byte — the at-rest bit-rot scenario the CRC manifest exists to
        catch.
        """
        fault = None
        if self.injector is not None:
            fault = self.injector.checkpoint_fault(step)

        path = self._path(step)
        tmp = path + ".tmp"
        manifest = {
            "version": _STATE_VERSION,
            "step": int(step),
            "crc": {
                name: entry_crc32(arr)
                for name, arr in sorted(arrays.items())
            },
        }
        payload = dict(sorted(arrays.items()))
        payload[_MANIFEST_KEY] = np.array([json.dumps(manifest)], dtype=object)
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)

        if fault is not None and fault.kind is FaultKind.TORN:
            # Crash mid-write: truncate the staged file and never
            # rename.  The committed store is untouched.
            with open(tmp, "r+b") as fh:
                fh.truncate(max(1, os.path.getsize(tmp) // 2))
            return False

        os.replace(tmp, path)

        if fault is not None and fault.kind is FaultKind.CORRUPT:
            # Bit-rot after commit: flip one byte inside the payload
            # region (past the zip local-file headers) so the archive
            # still opens but an entry fails its CRC.
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.seek(size // 2)
                byte = fh.read(1)
                fh.seek(size // 2)
                fh.write(bytes([byte[0] ^ 0xFF]))

        self.prune()
        return True

    def prune(self) -> None:
        """Drop committed snapshots beyond ``keep_last`` (oldest first)."""
        steps = self.steps()
        for step in steps[: max(0, len(steps) - self.keep_last)]:
            os.remove(self._path(step))

    # -- read -----------------------------------------------------------
    def load(self, step: int) -> TrainerState:
        """Load and CRC-verify the snapshot committed at ``step``.

        Raises :class:`CheckpointCorruptError` on any integrity
        failure and :class:`NoCheckpointError` when no snapshot for
        ``step`` exists.
        """
        path = self._path(step)
        if not os.path.exists(path):
            raise NoCheckpointError(f"no snapshot for step {step} in {self.root}")
        try:
            archive = np.load(path, allow_pickle=True)
        except Exception as exc:
            raise CheckpointCorruptError(
                f"snapshot {path!r} unreadable "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        with archive as npz:
            try:
                manifest = json.loads(str(npz[_MANIFEST_KEY][0]))
            except Exception as exc:
                raise CheckpointCorruptError(
                    f"snapshot {path!r} has a damaged manifest"
                ) from exc
            if manifest.get("version") != _STATE_VERSION:
                raise CheckpointCorruptError(
                    f"snapshot {path!r} has unsupported version "
                    f"{manifest.get('version')!r}"
                )
            crc_map = manifest.get("crc", {})
            arrays: Dict[str, np.ndarray] = {}
            names = [n for n in npz.files if n != _MANIFEST_KEY]
            if sorted(names) != sorted(crc_map):
                raise CheckpointCorruptError(
                    f"snapshot {path!r} entries do not match its manifest"
                )
            for name in names:
                try:
                    value = npz[name]
                except Exception as exc:
                    raise CheckpointCorruptError(
                        f"snapshot {path!r} entry {name!r} failed to "
                        f"decode ({type(exc).__name__})"
                    ) from exc
                actual = entry_crc32(value)
                if actual != int(crc_map[name]):
                    raise CheckpointCorruptError(
                        f"snapshot {path!r} entry {name!r} failed its "
                        f"CRC32 check"
                    )
                arrays[name] = value
        return TrainerState(step=int(manifest["step"]), arrays=arrays)

    def load_latest(self) -> Tuple[TrainerState, List[int]]:
        """Newest snapshot that verifies, plus the steps skipped as bad.

        Walks committed snapshots newest-first; corrupt ones are
        recorded and skipped.  Raises :class:`NoCheckpointError` when
        nothing verifies.
        """
        skipped: List[int] = []
        for step in reversed(self.steps()):
            try:
                return self.load(step), skipped
            except CheckpointCorruptError:
                skipped.append(step)
        raise NoCheckpointError(
            f"no verifiable snapshot in {self.root} "
            f"(corrupt: {skipped or 'none'})"
        )
