"""Deterministic fault injection for the trainer and the serving loop.

A :class:`FaultPlan` is a *finite, explicit* schedule of faults — stage
crashes, queue stalls, H2D copy failures, dropped gradient-queue
entries, torn/corrupted checkpoints, serving slowdown windows — keyed
by pipeline step (trainer faults) or simulated time (serving faults).
Because the pipeline executor and the serving event loop are both
deterministic, a plan makes the *whole failure scenario* a pure
function of (plan, seed): every chaos run reproduces the same crashes
at the same points, which is what lets the test suite assert bitwise
recovery instead of "usually recovers".

Injection rides the seams the codebase already has:

* the trainer's :class:`~repro.system.pipeline.TraceProbe` protocol —
  :class:`FaultProbe` implements it, so a
  :class:`~repro.system.pipeline.PipelinedPSTrainer` needs **no**
  hot-path changes (and pays nothing when no probe is attached);
* the probe's queue factory — :class:`FaultyQueue` subclasses
  :class:`~repro.system.queues.BoundedQueue` to fail/stall/drop on cue;
* :class:`~repro.resilience.checkpoint.CheckpointStore`'s save hooks —
  torn and corrupted snapshot writes;
* the resilient serving loop's service-time model — slowdown windows.

Faults are **one-shot**: each spec fires at most once per injector
(standard chaos-engineering semantics), so recovery replay of the same
step does not re-crash and every plan terminates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TypeVar

from repro.embeddings.cache import EmbeddingCache
from repro.system.queues import BoundedQueue
from repro.utils.rng import ensure_rng

__all__ = [
    "FaultKind",
    "FaultSite",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultRecord",
    "FaultProbe",
    "FaultyQueue",
    "FaultError",
    "InjectedCrash",
    "H2DCopyError",
    "QueueStallTimeout",
]

T = TypeVar("T")


class FaultKind(str, enum.Enum):
    """What goes wrong."""

    CRASH = "crash"          #: a pipeline stage dies (raises mid-step)
    STALL = "stall"          #: a queue interaction exceeds its timeout
    H2D_FAIL = "h2d_fail"    #: the host->device copy of a prefetch entry fails
    DROP = "drop"            #: a gradient-queue entry is silently lost
    TORN = "torn"            #: a checkpoint write is torn (tmp only, truncated)
    CORRUPT = "corrupt"      #: committed checkpoint bytes are flipped
    SLOWDOWN = "slowdown"    #: serving service times inflate for a window
    STUCK = "stuck"          #: a replica accepts batches but never completes
    SWAP = "swap"            #: a rolling hot-swap is forced mid-traffic


class FaultSite(str, enum.Enum):
    """Where it goes wrong."""

    GATHER = "gather"            #: server-side prefetch gather stage
    TRAIN = "train"              #: worker forward/backward stage
    APPLY = "apply"              #: server-side gradient-apply stage
    PREFETCH_QUEUE = "prefetch"  #: the H2D prefetch queue
    GRAD_QUEUE = "gradient"      #: the D2H gradient queue
    CHECKPOINT = "checkpoint"    #: snapshot write path
    SERVE = "serve"              #: the online-inference primary path
    REPLICA = "replica"          #: one executor in the serving fleet
    FLEET = "fleet"              #: the serving fleet as a whole


#: Legal (kind, site) combinations; anything else is a plan bug.
_VALID_COMBOS: Dict[FaultKind, Tuple[FaultSite, ...]] = {
    FaultKind.CRASH: (
        FaultSite.GATHER, FaultSite.TRAIN, FaultSite.APPLY,
        FaultSite.REPLICA,
    ),
    FaultKind.STALL: (FaultSite.PREFETCH_QUEUE, FaultSite.GRAD_QUEUE),
    FaultKind.H2D_FAIL: (FaultSite.PREFETCH_QUEUE,),
    FaultKind.DROP: (FaultSite.GRAD_QUEUE,),
    FaultKind.TORN: (FaultSite.CHECKPOINT,),
    FaultKind.CORRUPT: (FaultSite.CHECKPOINT,),
    FaultKind.SLOWDOWN: (FaultSite.SERVE, FaultSite.REPLICA),
    FaultKind.STUCK: (FaultSite.REPLICA,),
    FaultKind.SWAP: (FaultSite.FLEET,),
}

#: Sites scheduled on the Simulator clock rather than the pipeline step.
_FLEET_SITES = (FaultSite.REPLICA, FaultSite.FLEET)


class FaultError(RuntimeError):
    """Base class for every injected failure.

    Carries the :class:`FaultSpec` that fired so supervisors and tests
    can attribute the crash.
    """

    def __init__(self, spec: "FaultSpec", detail: str = "") -> None:
        self.spec = spec
        message = f"injected {spec.kind.value} at {spec.site.value}"
        if spec.replica is not None:
            message += f"[{spec.replica}]"
        if spec.step is not None:
            message += f" (step {spec.step})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class InjectedCrash(FaultError):
    """A pipeline stage crashed."""


class H2DCopyError(FaultError):
    """The host->device copy of a prefetched batch failed."""


class QueueStallTimeout(FaultError):
    """A queue interaction stalled past the supervisor's patience."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Trainer faults are *step*-scheduled (the pipeline's logical clock:
    the batch id being gathered/trained/applied); serving and fleet
    faults are *time*-scheduled on the Simulator clock, with a
    ``duration`` window for slowdown/stuck kinds and a service-time
    ``factor`` for slowdowns.  Faults at :attr:`FaultSite.REPLICA`
    additionally name the ``replica`` they target.
    """

    kind: FaultKind
    site: FaultSite
    step: Optional[int] = None
    time: Optional[float] = None
    duration: float = 0.0
    factor: float = 1.0
    replica: Optional[int] = None

    @property
    def time_scheduled(self) -> bool:
        """Whether this fault fires on the Simulator clock (not a step)."""
        return self.kind is FaultKind.SLOWDOWN or self.site in _FLEET_SITES

    def __post_init__(self) -> None:
        if self.site not in _VALID_COMBOS[self.kind]:
            raise ValueError(
                f"fault kind {self.kind.value!r} cannot target site "
                f"{self.site.value!r}"
            )
        if self.site is FaultSite.REPLICA:
            if self.replica is None or self.replica < 0:
                raise ValueError(
                    "replica faults need an integer replica id >= 0"
                )
        elif self.replica is not None:
            raise ValueError(
                f"replica only applies to {FaultSite.REPLICA.value} faults"
            )
        if self.time_scheduled:
            if self.time is None or self.time < 0:
                raise ValueError(
                    f"{self.kind.value} faults need time >= 0"
                )
            if self.kind in (FaultKind.SLOWDOWN, FaultKind.STUCK):
                if self.duration <= 0:
                    raise ValueError(
                        f"{self.kind.value} faults need duration > 0"
                    )
            if self.kind is FaultKind.SLOWDOWN and self.factor < 1.0:
                raise ValueError(
                    f"slowdown factor must be >= 1, got {self.factor}"
                )
        else:
            if self.step is None or self.step < 0:
                raise ValueError(
                    f"{self.kind.value} faults need an integer step >= 0"
                )

    def describe(self) -> str:
        target = self.site.value
        if self.replica is not None:
            target = f"{self.site.value}[{self.replica}]"
        if self.kind in (FaultKind.SLOWDOWN, FaultKind.STUCK):
            assert self.time is not None
            window = (
                f"t=[{self.time:.3f}, {self.time + self.duration:.3f})"
            )
            suffix = (
                f" x{self.factor:g}"
                if self.kind is FaultKind.SLOWDOWN else ""
            )
            return f"{self.kind.value:9s} @ {target:10s} {window}{suffix}"
        if self.time_scheduled:
            assert self.time is not None
            return f"{self.kind.value:9s} @ {target:10s} t={self.time:.3f}"
        return f"{self.kind.value:9s} @ {target:10s} step={self.step}"


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually fired during a run."""

    spec: FaultSpec
    fired_step: int
    detail: str = ""


@dataclass(frozen=True)
class FaultPlan:
    """Named, seeded schedule of faults.

    ``specs`` is the explicit schedule; :meth:`random` derives one
    deterministically from a seed for fuzz-style chaos runs.
    """

    name: str
    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def injector(self) -> "FaultInjector":
        """Fresh injector (one-shot firing state) for one run."""
        return FaultInjector(self)

    @property
    def train_specs(self) -> Tuple[FaultSpec, ...]:
        """Step-scheduled trainer faults (crash/stall/drop/torn/...)."""
        return tuple(s for s in self.specs if not s.time_scheduled)

    @property
    def serve_specs(self) -> Tuple[FaultSpec, ...]:
        """Fleet-wide serving slowdown windows (the legacy SERVE site)."""
        return tuple(
            s for s in self.specs
            if s.kind is FaultKind.SLOWDOWN and s.site is FaultSite.SERVE
        )

    @property
    def fleet_specs(self) -> Tuple[FaultSpec, ...]:
        """Per-replica and fleet-level faults (time-scheduled)."""
        return tuple(s for s in self.specs if s.site in _FLEET_SITES)

    def describe(self) -> str:
        lines = [f"fault plan {self.name!r} (seed {self.seed}):"]
        lines += [f"  {spec.describe()}" for spec in self.specs]
        if not self.specs:
            lines.append("  (no faults)")
        return "\n".join(lines)

    @classmethod
    def random(
        cls,
        name: str,
        seed: int,
        num_faults: int,
        max_step: int,
    ) -> "FaultPlan":
        """Deterministically sample a trainer-fault plan from a seed.

        Draws ``num_faults`` distinct steps in ``[1, max_step)`` and a
        crash/stall/drop/h2d fault for each — reproducible fuzzing for
        the recovery path.
        """
        if num_faults < 0:
            raise ValueError(f"num_faults must be >= 0, got {num_faults}")
        if max_step <= 1:
            raise ValueError(f"max_step must be > 1, got {max_step}")
        rng = ensure_rng((seed, 0xFA))
        menu: Tuple[Tuple[FaultKind, FaultSite], ...] = (
            (FaultKind.CRASH, FaultSite.GATHER),
            (FaultKind.CRASH, FaultSite.TRAIN),
            (FaultKind.CRASH, FaultSite.APPLY),
            (FaultKind.H2D_FAIL, FaultSite.PREFETCH_QUEUE),
            (FaultKind.STALL, FaultSite.PREFETCH_QUEUE),
            (FaultKind.DROP, FaultSite.GRAD_QUEUE),
        )
        count = min(num_faults, max_step - 1)
        steps = rng.choice(
            range(1, max_step), size=count, replace=False
        )
        specs = []
        for step in sorted(int(s) for s in steps):
            kind, site = menu[int(rng.integers(len(menu)))]
            specs.append(FaultSpec(kind=kind, site=site, step=step))
        return cls(name=name, specs=tuple(specs), seed=seed)


class FaultInjector:
    """Run-scoped firing state for one :class:`FaultPlan`.

    The injector is consulted from the probe hooks, the faulty queues,
    the checkpoint store, and the resilient serving loop.  Every fault
    that fires is appended to :attr:`records`, so a chaos harness can
    cross-check "what the plan promised" against "what actually
    happened".
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pending: List[FaultSpec] = list(plan.train_specs)
        self._slowdowns: List[FaultSpec] = list(plan.serve_specs)
        self._slowdowns_seen: Set[int] = set()
        self._fleet: List[FaultSpec] = list(plan.fleet_specs)
        self._fleet_seen: Set[int] = set()
        self.records: List[FaultRecord] = []
        #: Logical step of the batch the worker is currently training;
        #: maintained by :class:`FaultProbe` via ``on_batch_start``.
        self.current_step = -1

    # -- trainer-side hooks --------------------------------------------
    def _take(
        self, kinds: Tuple[FaultKind, ...], site: FaultSite, step: int
    ) -> Optional[FaultSpec]:
        for spec in self._pending:
            if spec.kind in kinds and spec.site is site and spec.step == step:
                self._pending.remove(spec)
                self.records.append(FaultRecord(spec=spec, fired_step=step))
                return spec
        return None

    def stage_crash(self, site: FaultSite, step: int) -> None:
        """Raise if the plan crashes ``site`` while it handles ``step``."""
        spec = self._take((FaultKind.CRASH,), site, step)
        if spec is not None:
            raise InjectedCrash(spec)

    def queue_get_fault(self, site: FaultSite, step: int) -> None:
        """Raise if this queue ``get`` fails (H2D copy / stall timeout)."""
        spec = self._take((FaultKind.H2D_FAIL,), site, step)
        if spec is not None:
            raise H2DCopyError(spec, "prefetch entry lost in transfer")
        spec = self._take((FaultKind.STALL,), site, step)
        if spec is not None:
            raise QueueStallTimeout(
                spec, "consumer timed out waiting on the queue"
            )

    def queue_drop(self, site: FaultSite, step: int) -> bool:
        """True when this queue ``put`` should silently lose its item."""
        return self._take((FaultKind.DROP,), site, step) is not None

    def checkpoint_fault(self, step: int) -> Optional[FaultSpec]:
        """The torn/corrupt fault scheduled for the snapshot at ``step``."""
        return self._take(
            (FaultKind.TORN, FaultKind.CORRUPT), FaultSite.CHECKPOINT, step
        )

    # -- serving-side hooks --------------------------------------------
    def slowdown_factor(self, now: float) -> float:
        """Product of every slowdown window active at simulated ``now``."""
        factor = 1.0
        for i, spec in enumerate(self._slowdowns):
            assert spec.time is not None
            if spec.time <= now < spec.time + spec.duration:
                factor *= spec.factor
                if i not in self._slowdowns_seen:
                    self._slowdowns_seen.add(i)
                    self.records.append(
                        FaultRecord(
                            spec=spec,
                            fired_step=-1,
                            detail=f"window entered at t={now:.4f}",
                        )
                    )
        return factor

    # -- fleet-side hooks ----------------------------------------------
    def _mark_fleet(self, index: int, now: float, detail: str) -> None:
        if index in self._fleet_seen:
            return
        self._fleet_seen.add(index)
        self.records.append(
            FaultRecord(
                spec=self._fleet[index], fired_step=-1,
                detail=f"{detail} at t={now:.4f}",
            )
        )

    def replica_crashes(self) -> Tuple[Tuple[float, int, FaultSpec], ...]:
        """(time, replica, spec) for every scheduled replica crash.

        The fleet event loop schedules one crash event per entry and
        calls :meth:`fleet_fired` when it actually fires.
        """
        out: List[Tuple[float, int, FaultSpec]] = []
        for spec in self._fleet:
            if spec.kind is FaultKind.CRASH:
                assert spec.time is not None and spec.replica is not None
                out.append((spec.time, spec.replica, spec))
        return tuple(sorted(out, key=lambda entry: entry[0]))

    def fleet_swaps(self) -> Tuple[Tuple[float, FaultSpec], ...]:
        """(time, spec) for every forced mid-traffic swap, time-sorted."""
        out: List[Tuple[float, FaultSpec]] = []
        for spec in self._fleet:
            if spec.kind is FaultKind.SWAP:
                assert spec.time is not None
                out.append((spec.time, spec))
        return tuple(sorted(out, key=lambda entry: entry[0]))

    def fleet_fired(self, spec: FaultSpec, now: float, detail: str) -> None:
        """Record a scheduled fleet fault as fired (once per spec)."""
        for i, candidate in enumerate(self._fleet):
            if candidate is spec:
                self._mark_fleet(i, now, detail)
                return
        raise ValueError(f"spec {spec.describe()!r} is not a fleet fault")

    def replica_stuck(self, replica: int, now: float) -> bool:
        """Whether ``replica`` is inside a stuck window at ``now``.

        A stuck replica accepts the dispatch but never schedules its
        completion — the health monitor's watchdog must notice.
        """
        stuck = False
        for i, spec in enumerate(self._fleet):
            if spec.kind is not FaultKind.STUCK or spec.replica != replica:
                continue
            assert spec.time is not None
            if spec.time <= now < spec.time + spec.duration:
                stuck = True
                self._mark_fleet(i, now, "swallowed a dispatch")
        return stuck

    def replica_slowdown_factor(self, replica: int, now: float) -> float:
        """Product of per-replica slowdown windows active at ``now``."""
        factor = 1.0
        for i, spec in enumerate(self._fleet):
            if (
                spec.kind is not FaultKind.SLOWDOWN
                or spec.replica != replica
            ):
                continue
            assert spec.time is not None
            if spec.time <= now < spec.time + spec.duration:
                factor *= spec.factor
                self._mark_fleet(i, now, "window entered")
        return factor

    # -- reporting ------------------------------------------------------
    @property
    def pending(self) -> Tuple[FaultSpec, ...]:
        """Trainer faults that have not fired yet."""
        return tuple(self._pending)

    @property
    def fleet_pending(self) -> Tuple[FaultSpec, ...]:
        """Fleet faults that have not fired yet."""
        return tuple(
            spec for i, spec in enumerate(self._fleet)
            if i not in self._fleet_seen
        )

    @property
    def fired(self) -> Tuple[FaultSpec, ...]:
        return tuple(record.spec for record in self.records)


_QUEUE_SITES = {
    "prefetch": FaultSite.PREFETCH_QUEUE,
    "gradient": FaultSite.GRAD_QUEUE,
}


class FaultyQueue(BoundedQueue[T]):
    """A :class:`BoundedQueue` that fails or drops on the injector's cue.

    Behaviour is bit-identical to the plain queue except at the exact
    (site, step) points named by the plan: ``get`` may raise
    :class:`H2DCopyError`/:class:`QueueStallTimeout`, and a gradient
    ``put`` may silently discard its item (the lost-update fault the
    supervisor must *detect*, not just survive).
    """

    def __init__(
        self, capacity: int, injector: FaultInjector, site: FaultSite
    ) -> None:
        super().__init__(capacity)
        self._injector = injector
        self._site = site
        self.dropped = 0

    def put(self, item: T) -> None:
        if self._injector.queue_drop(self._site, self._injector.current_step):
            self.dropped += 1
            return
        super().put(item)

    def get(self) -> T:
        self._injector.queue_get_fault(
            self._site, self._injector.current_step
        )
        return super().get()


class FaultProbe:
    """A :class:`~repro.system.pipeline.TraceProbe` that injects faults.

    Where :class:`repro.analysis.shims.PipelineProbe` only observes,
    this probe *acts*: stage hooks raise :class:`InjectedCrash` on the
    plan's cue and the queue factory builds :class:`FaultyQueue`
    instances.  It also keeps per-segment accounting — which batch ids
    started, trained, and were applied — which is how the supervisor
    detects *silent* faults (dropped gradient entries) that raise
    nothing.
    """

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector
        self.started: Set[int] = set()
        self.trained: Set[int] = set()
        self.applied: Set[int] = set()
        #: (batch_id, table) -> number of host applies observed.  An
        #: exactly-once segment has every count equal to 1.
        self.apply_counts: Dict[Tuple[int, int], int] = {}

    # -- segment accounting (used by the supervisor) --------------------
    def begin_segment(self) -> None:
        """Reset per-segment accounting before a training segment."""
        self.started.clear()
        self.trained.clear()
        self.applied.clear()
        self.apply_counts.clear()

    @property
    def steps_started(self) -> int:
        return len(self.started)

    def missing_applies(self) -> List[int]:
        """Batch ids that trained but whose update never reached host."""
        return sorted(self.trained - self.applied)

    def duplicate_applies(self) -> List[Tuple[int, int]]:
        """(batch_id, table) pairs whose update hit host more than once."""
        return sorted(k for k, n in self.apply_counts.items() if n > 1)

    # -- TraceProbe factories ------------------------------------------
    def make_queue(self, capacity: int, name: str) -> BoundedQueue:
        site = _QUEUE_SITES.get(name)
        if site is None:
            return BoundedQueue(capacity)
        return FaultyQueue(capacity, self.injector, site)

    def make_cache(
        self, embedding_dim: int, default_lifecycle: int, table: int
    ) -> EmbeddingCache:
        return EmbeddingCache(embedding_dim, default_lifecycle)

    # -- TraceProbe hooks ----------------------------------------------
    def on_batch_start(self, batch_id: int) -> None:
        self.injector.current_step = batch_id
        self.started.add(batch_id)

    def on_gather(self, batch_id, table, unique_indices) -> None:
        self.injector.stage_crash(FaultSite.GATHER, batch_id)

    def on_consume(self, batch_id, table, unique_indices) -> None:
        self.injector.stage_crash(FaultSite.TRAIN, batch_id)

    def on_update(self, batch_id, table, unique_indices) -> None:
        self.trained.add(batch_id)

    def on_apply(self, batch_id, table, unique_indices) -> None:
        self.injector.stage_crash(FaultSite.APPLY, batch_id)
        self.applied.add(batch_id)
        key = (batch_id, table)
        self.apply_counts[key] = self.apply_counts.get(key, 0) + 1
