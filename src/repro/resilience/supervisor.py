"""Stage supervision: restart crashed pipelines, replay exactly once.

The supervisor runs :class:`~repro.system.pipeline.PipelinedPSTrainer`
in *segments* of ``checkpoint_interval`` batches.  Each segment starts
from the arrays of the last committed snapshot, trains, and commits —
losses appended, arrays captured, snapshot published — only when the
segment's exactly-once accounting is clean.  Recovery is therefore a
pure rollback-and-replay:

* a **crash** (injected or real) anywhere in a segment discards the
  whole trainer, waits a deterministic backoff, restores the newest
  snapshot that CRC-verifies, and replays from there;
* a **dropped gradient entry** raises nothing — the pipeline finishes
  the segment with host tables silently diverged.  The probe's
  trained-vs-applied ledger catches it at the segment boundary and the
  supervisor rolls back exactly as for a crash;
* a **torn snapshot** never commits (write-then-rename), so the next
  rollback simply lands one interval earlier; a **corrupted** snapshot
  commits but fails its CRC at restore time and
  :meth:`~repro.resilience.checkpoint.CheckpointStore.load_latest`
  falls back past it.

Because trainers are Markov in their snapshot arrays (see
:mod:`repro.resilience.checkpoint`) and replayed batches recompute
bitwise-identically, the committed loss trajectory equals the
uninterrupted run's no matter where faults land — the property
``repro chaos`` asserts.

Backoff is simulated, not slept: chaos runs complete in milliseconds
while still exercising (and asserting on) the exact schedule a real
deployment would wait out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.dataloader import SyntheticClickLog
from repro.resilience.checkpoint import (
    CheckpointStore,
    capture_trainer_arrays,
    restore_trainer_arrays,
)
from repro.resilience.faults import FaultError, FaultProbe
from repro.system.pipeline import PipelinedPSTrainer
from repro.utils.rng import ensure_rng

__all__ = [
    "RetryPolicy",
    "RecoveryBudgetExceeded",
    "RecoveryReport",
    "PipelineSupervisor",
]


class RecoveryBudgetExceeded(RuntimeError):
    """The run needed more restarts than the policy allows."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``backoff(attempt)`` (1-based) returns
    ``min(max_delay, base_delay * 2**(attempt-1)) * (1 + jitter * u)``
    where ``u`` is drawn from a generator seeded by ``(seed, attempt)``
    — the same attempt always waits the same time, so recovery
    timelines are reproducible and testable.
    """

    max_restarts: int = 8
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError(
                "need 0 < base_delay <= max_delay, got "
                f"{self.base_delay} / {self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = self.base_delay * (2.0 ** (attempt - 1))
        capped = min(self.max_delay, raw)
        u = float(ensure_rng((self.seed, 0x5E, attempt)).random())
        return capped * (1.0 + self.jitter * u)

    def schedule(self, attempts: int) -> List[float]:
        """The first ``attempts`` backoff delays, for reports and tests."""
        return [self.backoff(a) for a in range(1, attempts + 1)]


@dataclass
class RecoveryReport:
    """What a supervised run did, committed, and survived."""

    losses: List[float] = field(default_factory=list)
    #: Number of segment replays triggered by raised faults.
    restarts: int = 0
    #: Number of segment replays triggered by silent lost updates.
    rollbacks: int = 0
    #: Snapshot steps skipped because their CRC check failed.
    corrupt_skipped: List[int] = field(default_factory=list)
    #: Snapshot steps whose write was torn (never committed).
    torn_steps: List[int] = field(default_factory=list)
    #: Simulated seconds spent in backoff across all restarts.
    total_backoff: float = 0.0
    #: Batches replayed beyond the minimum (recovery work).
    replayed_batches: int = 0
    #: (batch, table) duplicate host applies observed in any committed
    #: segment — must stay empty for exactly-once semantics.
    duplicate_applies: List[Tuple[int, int]] = field(default_factory=list)
    #: Human-readable recovery timeline.
    events: List[str] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no committed steps")
        return self.losses[-1]


class PipelineSupervisor:
    """Run a pipelined PS trainer to completion despite injected faults.

    Parameters
    ----------
    trainer_factory:
        Builds a *fresh* structurally-identical trainer wired to the
        given probe.  Called once per segment attempt — after any
        fault the crashed trainer (whose queues and caches are in an
        undefined state) is discarded wholesale.
    store:
        Snapshot store (its injector, if any, tears/corrupts writes).
    probe:
        The fault-injecting probe shared with the trainer.
    policy:
        Restart budget and backoff schedule.
    """

    def __init__(
        self,
        trainer_factory: Callable[[FaultProbe], PipelinedPSTrainer],
        store: CheckpointStore,
        probe: FaultProbe,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.trainer_factory = trainer_factory
        self.store = store
        self.probe = probe
        self.policy = policy or RetryPolicy()

    def run(
        self,
        log: SyntheticClickLog,
        num_batches: int,
        checkpoint_interval: int,
    ) -> RecoveryReport:
        """Train ``num_batches`` with snapshots every ``interval`` steps."""
        if num_batches < 1:
            raise ValueError(f"num_batches must be >= 1, got {num_batches}")
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        report = RecoveryReport()

        # Seed snapshot: capture the freshly initialized arrays so the
        # earliest possible rollback target always exists.
        trainer = self.trainer_factory(self.probe)
        arrays = capture_trainer_arrays(trainer)
        if not self.store.save(0, arrays):
            report.torn_steps.append(0)

        committed = 0
        total_started = 0
        while committed < num_batches:
            seg_end = min(committed + checkpoint_interval, num_batches)
            self.probe.begin_segment()
            trainer = self.trainer_factory(self.probe)
            restore_trainer_arrays(trainer, arrays)
            try:
                seg_log = trainer.train(
                    log, seg_end - committed, start=committed
                )
            except FaultError as exc:
                total_started += self.probe.steps_started
                report.restarts += 1
                if report.restarts > self.policy.max_restarts:
                    raise RecoveryBudgetExceeded(
                        f"{report.restarts} restarts exceed the budget of "
                        f"{self.policy.max_restarts} (last fault: {exc})"
                    ) from exc
                delay = self.policy.backoff(report.restarts)
                report.total_backoff += delay
                committed, arrays = self._rollback(report)
                report.events.append(
                    f"restart {report.restarts}: {exc}; backoff "
                    f"{delay:.4f}s; resume from step {committed}"
                )
                continue

            total_started += self.probe.steps_started
            missing = self.probe.missing_applies()
            if missing:
                # Silent lost update: nothing raised, but host tables
                # diverged.  Treat like a crash, minus the backoff
                # (there is no process to restart, only state to heal).
                report.rollbacks += 1
                if (
                    report.restarts + report.rollbacks
                    > self.policy.max_restarts
                ):
                    raise RecoveryBudgetExceeded(
                        f"rollbacks plus restarts exceed the budget of "
                        f"{self.policy.max_restarts}"
                    )
                committed, arrays = self._rollback(report)
                report.events.append(
                    f"rollback {report.rollbacks}: lost host updates for "
                    f"batches {missing}; resume from step {committed}"
                )
                continue

            report.duplicate_applies.extend(self.probe.duplicate_applies())
            report.losses.extend(float(x) for x in seg_log.losses)
            arrays = capture_trainer_arrays(trainer)
            if not self.store.save(seg_end, arrays):
                report.torn_steps.append(seg_end)
                report.events.append(
                    f"snapshot at step {seg_end} torn mid-write; "
                    "continuing on the in-memory state"
                )
            committed = seg_end

        report.replayed_batches = max(0, total_started - num_batches)
        return report

    def _rollback(
        self, report: RecoveryReport
    ) -> Tuple[int, Dict[str, np.ndarray]]:
        """Restore the newest verifiable snapshot; heal committed losses."""
        state, skipped = self.store.load_latest()
        report.corrupt_skipped.extend(skipped)
        del report.losses[state.step:]
        return state.step, state.arrays
