"""Sequential and pipelined PS training executors (paper §V, Figures 9/10).

Two personalities:

* **Functional executors** — :class:`SequentialPSTrainer` and
  :class:`PipelinedPSTrainer` run real training steps through the
  parameter-server architecture on one host.  The pipelined executor
  reproduces the read-after-write hazard exactly: host rows for batch
  ``i+Q`` are gathered *before* the updates of batches ``i..i+Q-1``
  reach host memory.  With the embedding cache enabled the hazard is
  repaired and pipelined training is **bit-identical** to sequential
  training (proved in the test suite); with the cache disabled the
  worker trains on stale rows, the consistency issue the paper warns
  about (§II-A).
* **Timing model** — :func:`pipeline_schedule` computes the makespan of
  a bounded-buffer in-order pipeline from per-item stage durations, the
  arithmetic behind the Figure 16 throughput comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.backend import get_plan_cache
from repro.data.dataloader import Batch, SyntheticClickLog
from repro.embeddings.cache import EmbeddingCache
from repro.models.dlrm import DLRM
from repro.nn.optim import SGD
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
    PrefetchedRows,
)
from repro.system.queues import BoundedQueue
from repro.utils.validation import check_positive

__all__ = [
    "SequentialPSTrainer",
    "PipelinedPSTrainer",
    "TrainLog",
    "TraceProbe",
    "pipeline_schedule",
    "PipelineScheduleResult",
]


class TraceProbe(Protocol):
    """Observer interface for instrumented pipelined training.

    Implemented by :class:`repro.analysis.shims.PipelineProbe` (kept as
    a Protocol here so ``system`` does not import ``analysis``).  A
    probe must be *passive*: instrumented runs are bit-identical to
    bare runs.  Factories let the probe substitute recording variants
    of the queues and caches; hooks observe the dataflow.
    """

    def make_queue(self, capacity: int, name: str) -> "BoundedQueue":  # type: ignore[type-arg]
        ...

    def make_cache(
        self, embedding_dim: int, default_lifecycle: int, table: int
    ) -> EmbeddingCache:
        ...

    def on_batch_start(self, batch_id: int) -> None:
        ...

    def on_gather(
        self, batch_id: int, table: int, unique_indices: Iterable[int]
    ) -> None:
        ...

    def on_consume(
        self, batch_id: int, table: int, unique_indices: Iterable[int]
    ) -> None:
        ...

    def on_update(
        self, batch_id: int, table: int, unique_indices: Iterable[int]
    ) -> None:
        ...

    def on_apply(
        self, batch_id: int, table: int, unique_indices: Iterable[int]
    ) -> None:
        ...


@dataclass
class TrainLog:
    """Record of one training run."""

    losses: List[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    stale_rows_consumed: int = 0
    #: Contraction-plan-cache traffic accrued during this run (the TT
    #: chain plans and einsum paths; see repro.backend.plan_cache).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no steps recorded")
        return self.losses[-1]


class _PSTrainerBase:
    """Shared wiring between the sequential and pipelined executors.

    Parameters
    ----------
    model:
        DLRM whose host-resident tables are
        :class:`HostBackedEmbeddingBag` instances.
    server:
        Parameter server owning the host tables' weights.
    host_table_map:
        ``{model_table_idx: server_table_idx}`` for every host table.
    lr:
        Learning rate (shared by worker and server).
    """

    def __init__(
        self,
        model: DLRM,
        server: HostParameterServer,
        host_table_map: Dict[int, int],
        lr: float,
    ) -> None:
        check_positive(lr, "lr")
        self.model = model
        self.server = server
        self.host_table_map = dict(host_table_map)
        self.lr = float(lr)
        for pos in self.host_table_map:
            bag = model.embedding_bags[pos]
            if not isinstance(bag, HostBackedEmbeddingBag):
                raise TypeError(
                    f"model table {pos} is {type(bag).__name__}, expected "
                    "HostBackedEmbeddingBag"
                )
        self._mlp_sgd = SGD(model.parameters(), lr=lr)

    # -- worker-side compute -------------------------------------------
    def _compute_step(self, batch: Batch) -> float:
        """Forward + backward + local updates; host grads stay captured."""
        logits = self.model.forward(batch)
        loss = self.model.loss_fn.forward(logits, batch.labels)
        self.model.backward(self.model.loss_fn.backward())
        self._mlp_sgd.step()
        self.model.zero_grad()
        for pos, bag in enumerate(self.model.embedding_bags):
            if pos not in self.host_table_map:
                bag.step(self.lr)
        return loss

    def _host_bags(self) -> List[Tuple[int, int, HostBackedEmbeddingBag]]:
        return [
            (pos, server_idx, self.model.embedding_bags[pos])  # type: ignore[misc]
            for pos, server_idx in self.host_table_map.items()
        ]


class SequentialPSTrainer(_PSTrainerBase):
    """Non-pipelined reference: gather -> train -> update, strictly in order.

    Equivalent to setting the prefetch-queue length to 1 (the paper's
    "EL-Rec (Sequential)" configuration in Figure 16) — the worker
    waits for the server on every batch.
    """

    def train(
        self, log: SyntheticClickLog, num_batches: int, start: int = 0
    ) -> TrainLog:
        result = TrainLog()
        plan_cache = get_plan_cache()
        hits0, misses0 = plan_cache.hits, plan_cache.misses
        for i in range(start, start + num_batches):
            batch = log.batch(i)
            result.losses.append(self.train_step(batch))
        result.plan_cache_hits += plan_cache.hits - hits0
        result.plan_cache_misses += plan_cache.misses - misses0
        return result

    def train_step(self, batch: Batch) -> float:
        # Gather fresh rows synchronously.
        for pos, server_idx, bag in self._host_bags():
            prefetched = self.server.gather(
                server_idx, batch.sparse_indices[pos]
            )
            bag.load_rows(prefetched.unique_indices, prefetched.rows)
        loss = self._compute_step(batch)
        # Apply host gradients immediately.
        for pos, server_idx, bag in self._host_bags():
            unique_idx, grads = bag.pop_row_gradients()
            self.server.apply_gradients(server_idx, unique_idx, grads)
        return loss


@dataclass
class _GradEntry:
    batch_id: int
    per_table: List[Tuple[int, np.ndarray, np.ndarray]]  # (server_idx, uidx, grads)


class PipelinedPSTrainer(_PSTrainerBase):
    """Three-stage pipelined executor with LC-managed embedding caches.

    Parameters
    ----------
    model, server, host_table_map, lr:
        As for :class:`_PSTrainerBase`.
    prefetch_depth:
        Length ``Q`` of the prefetch queue: host rows for batch ``i``
        are gathered ``Q`` batches early.
    grad_queue_depth:
        Length ``D`` of the gradient queue: a batch's host update is
        applied only when the queue overflows, i.e. ``D`` batches
        late.
    use_cache:
        Enable the §V-B embedding cache.  Disabling it reproduces the
        naive prefetching of Figure 10(a): the worker silently trains
        on stale rows.
    probe:
        Optional :class:`TraceProbe` — when given, queues and caches
        are built through its factories and the gather/consume/
        update/apply dataflow is reported to it.  Used by the
        ``repro.analysis`` hazard detector; has no effect on numerics.

    Notes
    -----
    The executor is single-threaded and deterministic; server and
    worker "turns" interleave in a fixed order per iteration:

    1. worker pops the prefetch entry for batch ``i`` and (optionally)
       synchronizes it against the cache;
    2. worker trains, pushes gradients, and caches its updated rows
       with ``LC = Q + D`` (the paper's "maximum length of the
       requests queue");
    3. server drains the gradient queue under backpressure and
       decrements LCs;
    4. server gathers the prefetch entry for batch ``i + Q`` from the
       *current* host state.
    """

    def __init__(
        self,
        model: DLRM,
        server: HostParameterServer,
        host_table_map: Dict[int, int],
        lr: float,
        prefetch_depth: int = 2,
        grad_queue_depth: int = 1,
        use_cache: bool = True,
        probe: Optional[TraceProbe] = None,
    ) -> None:
        super().__init__(model, server, host_table_map, lr)
        check_positive(prefetch_depth, "prefetch_depth")
        check_positive(grad_queue_depth, "grad_queue_depth")
        self.prefetch_depth = int(prefetch_depth)
        self.grad_queue_depth = int(grad_queue_depth)
        self.use_cache = use_cache
        self.probe = probe
        lifecycle = self.prefetch_depth + self.grad_queue_depth
        dim = model.config.embedding_dim
        if probe is None:
            self.caches: Dict[int, EmbeddingCache] = {
                pos: EmbeddingCache(dim, lifecycle)
                for pos in self.host_table_map
            }
        else:
            self.caches = {
                pos: probe.make_cache(dim, lifecycle, pos)
                for pos in self.host_table_map
            }

    def train(
        self, log: SyntheticClickLog, num_batches: int, start: int = 0
    ) -> TrainLog:
        result = TrainLog()
        plan_cache = get_plan_cache()
        hits0, misses0 = plan_cache.hits, plan_cache.misses
        if self.probe is None:
            prefetch_q: BoundedQueue[Dict[int, PrefetchedRows]] = BoundedQueue(
                self.prefetch_depth
            )
            grad_q: BoundedQueue[_GradEntry] = BoundedQueue(
                self.grad_queue_depth
            )
        else:
            prefetch_q = self.probe.make_queue(self.prefetch_depth, "prefetch")
            grad_q = self.probe.make_queue(self.grad_queue_depth, "gradient")

        def gather_for(batch_id: int) -> Dict[int, PrefetchedRows]:
            batch = log.batch(batch_id)
            gathered = {
                pos: self.server.gather(server_idx, batch.sparse_indices[pos])
                for pos, server_idx, _ in self._host_bags()
            }
            if self.probe is not None:
                for pos, entry in gathered.items():
                    self.probe.on_gather(
                        batch_id, pos, entry.unique_indices.tolist()
                    )
            return gathered

        def drain_one() -> None:
            entry = grad_q.get()
            for (pos, server_idx, _), (entry_sidx, uidx, grads) in zip(
                self._host_bags(), entry.per_table
            ):
                assert server_idx == entry_sidx
                self.server.apply_gradients(server_idx, uidx, grads)
                if self.probe is not None:
                    self.probe.on_apply(entry.batch_id, pos, uidx.tolist())
                if self.use_cache:
                    self.caches[pos].decrement(uidx)

        # Fill the prefetch queue (pipeline warm-up).
        for j in range(start, start + min(self.prefetch_depth, num_batches)):
            prefetch_q.put(gather_for(j))

        for i in range(start, start + num_batches):
            batch = log.batch(i)
            if self.probe is not None:
                self.probe.on_batch_start(i)
            # (1) consume the prefetch entry for batch i.
            prefetched = prefetch_q.get()
            for pos, server_idx, bag in self._host_bags():
                entry = prefetched[pos]
                rows = entry.rows
                if self.use_cache:
                    rows, hit_mask = self.caches[pos].synchronize(
                        entry.unique_indices, rows
                    )
                    result.cache_hits += int(hit_mask.sum())
                    result.cache_misses += int((~hit_mask).sum())
                else:
                    # Diagnostic only: count rows that differ from the
                    # value a synchronous gather would have produced.
                    fresh = self.server.tables[server_idx][entry.unique_indices]
                    result.stale_rows_consumed += int(
                        (~np.isclose(rows, fresh).all(axis=1)).sum()
                    )
                bag.load_rows(entry.unique_indices, rows)
                if self.probe is not None:
                    self.probe.on_consume(
                        i, pos, entry.unique_indices.tolist()
                    )

            # (2) train; cache updated rows; enqueue gradients.
            result.losses.append(self._compute_step(batch))
            per_table: List[Tuple[int, np.ndarray, np.ndarray]] = []
            for pos, server_idx, bag in self._host_bags():
                if self.use_cache:
                    uidx, updated = bag.compute_updated_rows(self.lr)
                    self.caches[pos].put(uidx, updated)
                unique_idx, grads = bag.pop_row_gradients()
                if self.probe is not None:
                    self.probe.on_update(i, pos, unique_idx.tolist())
                per_table.append((server_idx, unique_idx, grads))
            if grad_q.full():
                drain_one()  # backpressure: apply the oldest batch first
            grad_q.put(_GradEntry(batch_id=i, per_table=per_table))

            # (3) prefetch batch i + Q from the *current* host state.
            next_id = i + self.prefetch_depth
            if next_id < start + num_batches and not prefetch_q.full():
                prefetch_q.put(gather_for(next_id))

        # (4) drain remaining gradients so the host state is final.
        while not grad_q.empty():
            drain_one()
        result.plan_cache_hits += plan_cache.hits - hits0
        result.plan_cache_misses += plan_cache.misses - misses0
        return result


@dataclass(frozen=True)
class PipelineScheduleResult:
    """Outcome of the bounded-buffer pipeline timing recurrence."""

    finish_times: np.ndarray  # (num_items, num_stages)
    makespan: float
    stage_busy: np.ndarray  # (num_stages,) total busy seconds

    @property
    def steady_state_interval(self) -> float:
        """Average inter-departure time once the pipeline is full."""
        last = self.finish_times[:, -1]
        if last.size < 2:
            return float(self.makespan)
        return float((last[-1] - last[0]) / (last.size - 1))


def pipeline_schedule(
    stage_times: np.ndarray,
    queue_capacity: int | Sequence[int] = 1,
) -> PipelineScheduleResult:
    """Makespan of an in-order pipeline with bounded inter-stage buffers.

    Parameters
    ----------
    stage_times:
        ``(num_items, num_stages)`` per-item stage durations in
        seconds.  For EL-Rec's trainer the stages are (CPU embedding
        gather + update, H2D/D2H transfer, GPU forward+backward).
    queue_capacity:
        Buffer slots between consecutive stages (scalar or one value
        per gap).  Capacity 1 with three stages reproduces "EL-Rec
        (Sequential)" behaviour only in the degenerate single-slot
        sense; the *true* sequential time is ``stage_times.sum()``.

    Notes
    -----
    Standard blocking-after-service recurrence: item ``i`` finishes
    stage ``s`` at

    ``end[i,s] = max(end[i,s-1], end[i-1,s], end[i-c_s, s+1]) + t[i,s]``

    where the third term models backpressure from a full downstream
    buffer of capacity ``c_s``.
    """
    times = np.asarray(stage_times, dtype=np.float64)
    if times.ndim != 2 or times.size == 0:
        raise ValueError(
            f"stage_times must be a non-empty 2-D array, got shape {times.shape}"
        )
    if np.any(times < 0):
        raise ValueError("stage durations must be non-negative")
    num_items, num_stages = times.shape
    if isinstance(queue_capacity, (int, np.integer)):
        caps = [int(queue_capacity)] * max(0, num_stages - 1)
    else:
        caps = [int(c) for c in queue_capacity]
        if len(caps) != num_stages - 1:
            raise ValueError(
                f"expected {num_stages - 1} queue capacities, got {len(caps)}"
            )
    if any(c < 1 for c in caps):
        raise ValueError("queue capacities must be >= 1")

    end = np.zeros((num_items, num_stages))
    for i in range(num_items):
        for s in range(num_stages):
            ready = end[i, s - 1] if s > 0 else 0.0
            busy = end[i - 1, s] if i > 0 else 0.0
            if s < num_stages - 1 and i - caps[s] >= 0:
                backpressure = end[i - caps[s], s + 1]
            else:
                backpressure = 0.0
            end[i, s] = max(ready, busy, backpressure) + times[i, s]
    return PipelineScheduleResult(
        finish_times=end,
        makespan=float(end[-1, -1]),
        stage_busy=times.sum(axis=0),
    )
