"""Embedding-table placement planning across the memory hierarchy.

Given a model configuration, a device, and TT settings, decide for each
table where its parameters live (paper §V-A):

* ``GPU_TT`` — compressed with Eff-TT and replicated in HBM;
* ``GPU_DENSE`` — small enough to stay dense in HBM;
* ``HOST_DENSE`` — spills to host memory behind the parameter server.

The paper's policy: tables with more than ``tt_threshold_rows`` rows
are TT-compressed; everything is packed into HBM largest-first; what
does not fit stays on the host and is served through the
prefetch/gradient queues.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.embeddings.tt_core import TTSpec
from repro.system.devices import DeviceSpec
from repro.utils.factorize import suggest_tt_shapes

__all__ = ["PlacementDecision", "TablePlacement", "PlacementPlan", "plan_placement"]


class PlacementDecision(str, enum.Enum):
    GPU_TT = "gpu_tt"
    GPU_DENSE = "gpu_dense"
    HOST_DENSE = "host_dense"


@dataclass(frozen=True)
class TablePlacement:
    """Placement outcome for one table.

    Attributes
    ----------
    table_idx:
        Position in the model's table list.
    num_rows:
        Table cardinality.
    decision:
        Where the parameters live.
    nbytes:
        Parameter footprint under the decision (fp32).
    tt_spec:
        The TT shape when ``decision == GPU_TT``.
    """

    table_idx: int
    num_rows: int
    decision: PlacementDecision
    nbytes: int
    tt_spec: TTSpec | None = None


@dataclass(frozen=True)
class PlacementPlan:
    """Full placement across all tables plus capacity accounting."""

    placements: Tuple[TablePlacement, ...]
    hbm_budget_bytes: float
    mlp_bytes: int

    @property
    def gpu_bytes(self) -> int:
        return self.mlp_bytes + sum(
            p.nbytes
            for p in self.placements
            if p.decision is not PlacementDecision.HOST_DENSE
        )

    @property
    def host_bytes(self) -> int:
        return sum(
            p.nbytes
            for p in self.placements
            if p.decision is PlacementDecision.HOST_DENSE
        )

    @property
    def host_tables(self) -> List[TablePlacement]:
        return [
            p
            for p in self.placements
            if p.decision is PlacementDecision.HOST_DENSE
        ]

    @property
    def tt_tables(self) -> List[TablePlacement]:
        return [
            p for p in self.placements if p.decision is PlacementDecision.GPU_TT
        ]

    def fits_gpu(self) -> bool:
        return self.gpu_bytes <= self.hbm_budget_bytes

    def summary(self) -> dict:
        return {
            "gpu_tt_tables": len(self.tt_tables),
            "gpu_dense_tables": sum(
                p.decision is PlacementDecision.GPU_DENSE for p in self.placements
            ),
            "host_tables": len(self.host_tables),
            "gpu_bytes": self.gpu_bytes,
            "host_bytes": self.host_bytes,
            "hbm_budget_bytes": self.hbm_budget_bytes,
        }


def plan_placement(
    table_rows: Sequence[int],
    embedding_dim: int,
    device: DeviceSpec,
    tt_rank: int = 64,
    tt_threshold_rows: int = 1_000_000,
    num_cores: int = 3,
    dtype_bytes: int = 4,
    mlp_bytes: int = 0,
    hbm_fraction: float = 0.8,
    compress: bool = True,
) -> PlacementPlan:
    """Compute a placement plan (paper §V-A policy).

    Parameters
    ----------
    table_rows:
        Cardinalities of all sparse features.
    embedding_dim:
        Embedding width.
    device:
        Target device (HBM capacity bounds GPU placement).
    tt_rank / tt_threshold_rows / num_cores:
        TT compression settings; tables above the threshold are
        compressed when ``compress`` is True.
    dtype_bytes:
        Parameter dtype width (fp32 = 4, the deployment setting).
    mlp_bytes:
        Dense-model footprint reserved in HBM before embeddings.
    hbm_fraction:
        Usable fraction of HBM (activations/workspace take the rest).
    compress:
        False reproduces the uncompressed baselines' placement.
    """
    if not 0 < hbm_fraction <= 1:
        raise ValueError(f"hbm_fraction must be in (0, 1], got {hbm_fraction}")
    budget = device.hbm_bytes * hbm_fraction

    candidates: List[TablePlacement] = []
    for t, rows in enumerate(table_rows):
        dense_bytes = rows * embedding_dim * dtype_bytes
        if compress and rows > tt_threshold_rows:
            row_shape, col_shape, _ = suggest_tt_shapes(
                rows, embedding_dim, num_cores
            )
            spec = TTSpec.create(row_shape, col_shape, tt_rank)
            candidates.append(
                TablePlacement(
                    table_idx=t,
                    num_rows=rows,
                    decision=PlacementDecision.GPU_TT,
                    nbytes=spec.num_params * dtype_bytes,
                    tt_spec=spec,
                )
            )
        else:
            candidates.append(
                TablePlacement(
                    table_idx=t,
                    num_rows=rows,
                    decision=PlacementDecision.GPU_DENSE,
                    nbytes=dense_bytes,
                )
            )

    # Pack into HBM smallest-footprint-first so the maximum number of
    # tables stays on-device; spill the rest to host memory.
    used = float(mlp_bytes)
    final: List[TablePlacement] = [None] * len(candidates)  # type: ignore[list-item]
    for placement in sorted(candidates, key=lambda p: p.nbytes):
        if used + placement.nbytes <= budget:
            used += placement.nbytes
            final[placement.table_idx] = placement
        else:
            final[placement.table_idx] = TablePlacement(
                table_idx=placement.table_idx,
                num_rows=placement.num_rows,
                decision=PlacementDecision.HOST_DENSE,
                nbytes=placement.num_rows * embedding_dim * dtype_bytes,
            )
    return PlacementPlan(
        placements=tuple(final),
        hbm_budget_bytes=budget,
        mlp_bytes=mlp_bytes,
    )
