"""Bounded FIFO queues for the parameter-server pipeline (paper Fig. 9).

The prefetch queue carries embedding batches from the server to the
workers; the gradient queue carries sparse gradients back.  In this
single-process reproduction the queues are deterministic data
structures (no threads): the pipeline executor interleaves server and
worker turns explicitly, which keeps the RAW-conflict experiments
bit-reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

from repro.utils.validation import check_positive

__all__ = ["BoundedQueue", "QueueClosed"]

T = TypeVar("T")


class QueueClosed(RuntimeError):
    """Raised when interacting with a closed queue."""


class BoundedQueue(Generic[T]):
    """Deterministic bounded FIFO.

    Parameters
    ----------
    capacity:
        Maximum entries; ``put`` on a full queue raises (the pipeline
        executor checks ``full()`` and applies backpressure instead of
        blocking).

    Notes
    -----
    Close semantics (drain-then-raise): ``close()`` seals the *intake*
    only.  A closed queue rejects every ``put`` with
    :class:`QueueClosed` — even when it has free capacity — but
    ``get``/``peek``/``drain`` keep returning the items already queued
    until the queue runs dry; only then do ``get`` and ``peek`` raise
    :class:`QueueClosed`.  This is what lets a consumer distinguish
    "producer is finished, finish the backlog" from "no data yet"
    without losing in-flight entries — the gradient queue relies on it
    during end-of-run drain.

    Multi-consumer (MPMC) contract: any number of producers and
    consumers may interleave ``put``/``get``/``peek``/``try_get``
    turns — the serving fleet drains one queue from N replica
    executors this way.  Because everything runs on one deterministic
    event loop there is no concurrent mutation, but the *semantics*
    are MPMC: every item is delivered to exactly one consumer (FIFO
    across all of them), ``peek`` never transfers ownership, and after
    ``close()`` each consumer independently observes drain-then-raise
    — consumers that keep polling all see :class:`QueueClosed` once
    the backlog is gone, never a half-state and never a lost item.
    """

    def __init__(self, capacity: int) -> None:
        check_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self._items: Deque[T] = deque()
        self._closed = False
        self.total_puts = 0
        self.total_gets = 0

    def put(self, item: T) -> None:
        if self._closed:
            raise QueueClosed("put on closed queue")
        if self.full():
            raise OverflowError(
                f"queue full (capacity {self.capacity}); check full() first"
            )
        self._items.append(item)
        self.total_puts += 1

    def get(self) -> T:
        if not self._items:
            if self._closed:
                raise QueueClosed("get on closed, empty queue")
            raise LookupError("queue empty; check empty() first")
        self.total_gets += 1
        return self._items.popleft()

    def peek(self) -> T:
        if not self._items:
            if self._closed:
                raise QueueClosed("peek on closed, empty queue")
            raise LookupError("queue empty")
        return self._items[0]

    def try_get(self) -> Optional[T]:
        """``get`` that returns ``None`` instead of raising on empty.

        The polling form of the MPMC contract: an open-but-empty queue
        yields ``None`` ("no data yet, poll again"); a closed queue
        still drains its backlog first and only raises
        :class:`QueueClosed` once dry ("producer finished, stop").
        Items must not be ``None`` for the sentinel to be unambiguous.
        """
        if not self._items:
            if self._closed:
                raise QueueClosed("try_get on closed, empty queue")
            return None
        return self.get()

    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def empty(self) -> bool:
        return not self._items

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(list(self._items))

    def drain(self) -> List[T]:
        """Remove and return all queued items in FIFO order."""
        out = list(self._items)
        self.total_gets += len(out)
        self._items.clear()
        return out
