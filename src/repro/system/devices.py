"""Device specifications and the calibrated kernel cost model.

This reproduction has no GPU, so end-to-end *system* comparisons
(Figures 11–13, 16) run on a cost model with two anchors:

1. **Host calibration** — :func:`calibrate_host` measures this
   machine's real NumPy GEMM throughput and gather bandwidth once per
   process.  Every kernel measurement taken by the benchmarks is
   therefore a *real* wall-clock number.
2. **Published device specs** — :data:`TESLA_V100` / :data:`TESLA_T4`
   carry peak FP32 throughput, memory bandwidth, HBM capacity, and
   interconnect rates from Nvidia's datasheets.  A kernel's time on a
   device is its measured host time scaled by the device/host
   throughput ratio on the roofline axis that limits it.

All frameworks share one cost model, so *relative* results (who wins,
crossover points) depend only on compute:communication ratios — the
quantity the paper's system design actually manipulates.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.utils.timer import measure_median
from repro.utils.validation import check_positive

__all__ = [
    "DeviceSpec",
    "HostProfile",
    "calibrate_host",
    "KernelCostModel",
    "CPU_HOST",
    "TESLA_V100",
    "TESLA_T4",
]


@dataclass(frozen=True)
class DeviceSpec:
    """One compute device in the cost model.

    Attributes
    ----------
    name:
        Display label.
    peak_gflops:
        Peak dense FP32 throughput (GFLOP/s).  For the host CPU this is
        filled from calibration.
    mem_bw_gbps:
        Device-memory bandwidth (GB/s) limiting gather/scatter-type
        kernels.
    hbm_bytes:
        Device memory capacity (drives placement decisions).
    h2d_gbps:
        Host-to-device transfer bandwidth (PCIe for the GPUs).
    p2p_gbps:
        Device-to-device bandwidth (NVLink / PCIe peer) for collective
        communication in multi-GPU experiments.
    kernel_launch_us:
        Fixed per-kernel overhead in microseconds (the fused-update
        optimization §III-B removes launches; modeled explicitly).
    efficiency:
        Achievable fraction of peak for the paper's GEMM-shaped
        workloads.
    """

    name: str
    peak_gflops: float
    mem_bw_gbps: float
    hbm_bytes: float
    h2d_gbps: float
    p2p_gbps: float
    kernel_launch_us: float = 5.0
    efficiency: float = 0.35
    batched_efficiency: float = 0.12

    def __post_init__(self) -> None:
        for attr in (
            "peak_gflops",
            "mem_bw_gbps",
            "hbm_bytes",
            "h2d_gbps",
            "p2p_gbps",
        ):
            check_positive(getattr(self, attr), attr)
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")

    @property
    def effective_gflops(self) -> float:
        return self.peak_gflops * self.efficiency

    @property
    def effective_batched_gflops(self) -> float:
        """Throughput for batched-small-GEMM kernels (TT contractions).

        Tiny per-item matrices keep both CPUs and GPUs far from peak;
        ``batched_efficiency`` is the achievable fraction for the
        ~32x32x128 shapes of rank-32..128 TT cores (cuBLAS
        ``GemmBatchedEx`` class).
        """
        return self.peak_gflops * self.batched_efficiency


# Datasheet numbers.  CPU peak is a placeholder replaced by calibration.
CPU_HOST = DeviceSpec(
    name="cpu-host",
    peak_gflops=150.0,
    mem_bw_gbps=25.0,
    hbm_bytes=200e9,
    h2d_gbps=25.0,
    p2p_gbps=25.0,
    kernel_launch_us=0.0,
    efficiency=1.0,
    batched_efficiency=1.0,
)
TESLA_V100 = DeviceSpec(
    name="V100",
    peak_gflops=15_700.0,
    mem_bw_gbps=900.0,
    hbm_bytes=16e9,
    h2d_gbps=12.0,
    p2p_gbps=150.0,  # NVLink on p3.8xlarge
)
TESLA_T4 = DeviceSpec(
    name="T4",
    peak_gflops=8_100.0,
    mem_bw_gbps=300.0,
    hbm_bytes=16e9,
    h2d_gbps=12.0,
    p2p_gbps=12.0,  # PCIe-only on g4dn.12xlarge
)


@dataclass(frozen=True)
class HostProfile:
    """Measured throughput of this host's NumPy kernels.

    ``batched_gemm_gflops`` measures the batched-small-matrix class the
    TT kernels live in (many independent ~32x32x128 GEMMs), which runs
    far below large-GEMM peak on every architecture.
    """

    gemm_gflops: float
    gather_gbps: float
    batched_gemm_gflops: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.gemm_gflops, "gemm_gflops")
        check_positive(self.gather_gbps, "gather_gbps")
        if self.batched_gemm_gflops == 0.0:
            object.__setattr__(
                self, "batched_gemm_gflops", self.gemm_gflops * 0.1
            )
        check_positive(self.batched_gemm_gflops, "batched_gemm_gflops")


@functools.lru_cache(maxsize=1)
def calibrate_host(gemm_size: int = 768, gather_rows: int = 200_000) -> HostProfile:
    """Measure host GEMM GFLOP/s and gather GB/s (cached per process)."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((gemm_size, gemm_size))
    b = rng.standard_normal((gemm_size, gemm_size))
    t_gemm = measure_median(lambda: a @ b, repeats=5, warmup=2)
    gflops = 2.0 * gemm_size**3 / t_gemm / 1e9

    table = rng.standard_normal((gather_rows, 64))
    idx = rng.integers(0, gather_rows, size=gather_rows // 2)
    t_gather = measure_median(lambda: table[idx], repeats=5, warmup=2)
    gbps = idx.size * 64 * 8 / t_gather / 1e9

    # Batched-small-GEMM class (TT-kernel shapes): 2048 independent
    # (32 x 32) @ (32 x 128) products.
    a_b = rng.standard_normal((2048, 32, 32))
    b_b = rng.standard_normal((2048, 32, 128))
    t_batched = measure_median(lambda: a_b @ b_b, repeats=5, warmup=2)
    batched_gflops = 2.0 * 2048 * 32 * 32 * 128 / t_batched / 1e9
    return HostProfile(
        gemm_gflops=gflops,
        gather_gbps=gbps,
        batched_gemm_gflops=batched_gflops,
    )


class KernelCostModel:
    """Translate measured host kernel times into device times.

    Parameters
    ----------
    host:
        Host calibration (defaults to the cached measurement).

    Notes
    -----
    Two scaling axes mirror the roofline model:

    * compute-bound kernels (GEMM-shaped: MLPs, TT contractions) scale
      by ``host.gemm_gflops / device.effective_gflops``;
    * memory-bound kernels (gathers, scatters, dense embedding lookup)
      scale by ``host.gather_gbps / device.mem_bw_gbps``.
    """

    def __init__(self, host: Optional[HostProfile] = None) -> None:
        self.host = host if host is not None else calibrate_host()

    # -- scaling measured kernels ----------------------------------------
    def scale_compute(self, host_seconds: float, device: DeviceSpec) -> float:
        """Device time of a compute-bound kernel measured on the host."""
        check_positive(host_seconds, "host_seconds", strict=False)
        return host_seconds * self.host.gemm_gflops / device.effective_gflops

    def scale_memory(self, host_seconds: float, device: DeviceSpec) -> float:
        """Device time of a memory-bound kernel measured on the host."""
        check_positive(host_seconds, "host_seconds", strict=False)
        return host_seconds * self.host.gather_gbps / device.mem_bw_gbps

    def scale_batched(self, host_seconds: float, device: DeviceSpec) -> float:
        """Device time of a batched-small-GEMM kernel (TT contractions).

        Scales by the ratio of *class-specific* throughputs: the host's
        measured batched-matmul GFLOP/s against the device's batched
        efficiency, mirroring how roofline analysis treats kernels that
        cannot reach large-GEMM peak on either side.
        """
        check_positive(host_seconds, "host_seconds", strict=False)
        return (
            host_seconds
            * self.host.batched_gemm_gflops
            / device.effective_batched_gflops
        )

    def measure_and_scale(
        self,
        fn: Callable[[], object],
        device: DeviceSpec,
        bound: str = "compute",
        repeats: int = 3,
    ) -> float:
        """Measure ``fn`` on the host and scale to ``device``."""
        host_seconds = measure_median(fn, repeats=repeats, warmup=1)
        if bound == "compute":
            return self.scale_compute(host_seconds, device)
        if bound == "memory":
            return self.scale_memory(host_seconds, device)
        if bound == "batched":
            return self.scale_batched(host_seconds, device)
        raise ValueError(
            f"bound must be 'compute', 'memory' or 'batched', got {bound!r}"
        )

    # -- analytic kernels --------------------------------------------------
    def batched_kernel_time(
        self, gflops: float, device: DeviceSpec
    ) -> float:
        """Analytic time of a batched-small-GEMM kernel from its FLOPs."""
        check_positive(gflops, "gflops", strict=False)
        return gflops / device.effective_batched_gflops

    def gemm_time(self, m: int, n: int, k: int, device: DeviceSpec) -> float:
        """Analytic GEMM time: flops / effective throughput + launch."""
        flops = 2.0 * m * n * k
        return flops / (device.effective_gflops * 1e9) + self.launch_time(device)

    def mlp_time(
        self,
        layer_sizes,
        batch_size: int,
        device: DeviceSpec,
        backward: bool = True,
    ) -> float:
        """Forward (+backward) time of an MLP stack.

        Backward costs 2x forward (grad-input GEMM + grad-weight GEMM),
        the conventional estimate.
        """
        total = 0.0
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            total += self.gemm_time(batch_size, fan_out, fan_in, device)
        return total * (3.0 if backward else 1.0)

    def gather_time(
        self, num_rows: int, row_bytes: int, device: DeviceSpec
    ) -> float:
        """Memory-bound gather/scatter of ``num_rows`` rows."""
        bytes_moved = 2.0 * num_rows * row_bytes  # read + write
        return bytes_moved / (device.mem_bw_gbps * 1e9) + self.launch_time(device)

    def launch_time(self, device: DeviceSpec) -> float:
        return device.kernel_launch_us * 1e-6

    # -- transfers -----------------------------------------------------------
    def h2d_time(self, nbytes: float, device: DeviceSpec) -> float:
        """Host-to-device (or back) transfer time over PCIe."""
        check_positive(nbytes, "nbytes", strict=False)
        return nbytes / (device.h2d_gbps * 1e9) + 10e-6

    def p2p_time(self, nbytes: float, device: DeviceSpec) -> float:
        """Single device-to-device transfer."""
        check_positive(nbytes, "nbytes", strict=False)
        return nbytes / (device.p2p_gbps * 1e9) + 10e-6
