"""Training-system substrate (paper §V).

EL-Rec's system layer is a parameter-server design over a hierarchical
memory: TT tables replicated in GPU HBM, overflow embedding tables in
host memory, a prefetch queue and a gradient queue between them, and a
3-stage training pipeline whose RAW conflict is resolved by the
embedding cache.

Because this reproduction runs on one host, the system layer has two
personalities:

* **functional** — :mod:`repro.system.parameter_server` and
  :mod:`repro.system.pipeline` execute *real numerics* through the PS
  architecture, letting tests prove the paper's correctness claim
  (pipeline + embedding cache is bit-identical to sequential
  training, while naive prefetching trains on stale rows);
* **timed** — :mod:`repro.system.devices` calibrates a roofline cost
  model against this host's measured kernel throughput and scales it
  to published GPU specs (V100 / T4), and
  :func:`repro.system.pipeline.pipeline_schedule` computes pipelined
  makespans; the framework baselines in :mod:`repro.frameworks` build
  the paper's end-to-end figures on top.
"""

from repro.system.devices import (
    CPU_HOST,
    DeviceSpec,
    HostProfile,
    KernelCostModel,
    TESLA_T4,
    TESLA_V100,
    calibrate_host,
)
from repro.system.queues import BoundedQueue, QueueClosed
from repro.system.memory import PlacementDecision, PlacementPlan, plan_placement
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import (
    PipelinedPSTrainer,
    SequentialPSTrainer,
    pipeline_schedule,
)
from repro.system.multi_gpu import (
    DataParallelTrainer,
    all2all_time,
    allgather_time,
    ring_allreduce_time,
)
from repro.system.simclock import (
    PipelineTrace,
    Resource,
    Simulator,
    simulate_pipeline_trace,
)

__all__ = [
    "DeviceSpec",
    "HostProfile",
    "KernelCostModel",
    "calibrate_host",
    "CPU_HOST",
    "TESLA_V100",
    "TESLA_T4",
    "BoundedQueue",
    "QueueClosed",
    "PlacementDecision",
    "PlacementPlan",
    "plan_placement",
    "HostParameterServer",
    "HostBackedEmbeddingBag",
    "SequentialPSTrainer",
    "PipelinedPSTrainer",
    "pipeline_schedule",
    "DataParallelTrainer",
    "ring_allreduce_time",
    "Simulator",
    "Resource",
    "PipelineTrace",
    "simulate_pipeline_trace",
    "all2all_time",
    "allgather_time",
]
