"""Timed functional training: real numerics + projected pipeline timing.

The functional executors (:mod:`repro.system.pipeline`) prove the
pipeline's *correctness*; the closed-form schedule proves its
*steady-state* timing.  This module joins them: it executes real
training batches through the PS architecture, measures each batch's
actual CPU-side and worker-side wall clock (so per-batch variation —
cold rows, unique-count swings — is real), projects the stage times
onto a target device with the calibrated cost model, and replays them
through the event-driven simulator to obtain the pipelined timeline.

The result is a Figure-16-style comparison where the *distribution* of
stage times comes from executed batches rather than constants.
"""

from __future__ import annotations

# This module is the one sanctioned wall-clock consumer in system/: it
# *measures* real batch execution to feed the simulator, so host-clock
# reads are its purpose, not a determinism bug.  Timing results are
# explicitly not bit-reproducible; everything downstream of the
# measured durations (the DES replay) is.
# reprolint: disable-file=wall-clock

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.dataloader import SyntheticClickLog
from repro.models.dlrm import DLRM
from repro.nn.optim import SGD
from repro.system.devices import DeviceSpec, KernelCostModel
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.simclock import PipelineTrace, simulate_pipeline_trace
from repro.utils.validation import check_positive

__all__ = ["TimedRunResult", "run_timed_pipeline"]


@dataclass
class TimedRunResult:
    """Outcome of a timed functional run.

    Attributes
    ----------
    losses:
        Real per-batch training losses (the numerics actually ran).
    cpu_times / transfer_times / gpu_times:
        Projected per-batch stage durations on the target device.
    trace:
        Event-driven pipelined timeline over those durations.
    """

    losses: List[float]
    cpu_times: np.ndarray
    transfer_times: np.ndarray
    gpu_times: np.ndarray
    trace: PipelineTrace

    @property
    def sequential_seconds(self) -> float:
        return float(
            self.cpu_times.sum()
            + self.transfer_times.sum()
            + self.gpu_times.sum()
        )

    @property
    def pipelined_seconds(self) -> float:
        return float(self.trace.makespan)

    @property
    def pipeline_speedup(self) -> float:
        if self.pipelined_seconds <= 0:
            return 1.0
        return self.sequential_seconds / self.pipelined_seconds


def run_timed_pipeline(
    model: DLRM,
    server: HostParameterServer,
    host_table_map: Dict[int, int],
    log: SyntheticClickLog,
    num_batches: int,
    lr: float,
    device: DeviceSpec,
    cost_model: Optional[KernelCostModel] = None,
    prefetch_depth: int = 4,
) -> TimedRunResult:
    """Execute ``num_batches`` real steps and project the pipeline timing.

    Per batch, three stage durations are produced:

    * **CPU** — measured wall clock of the server-side gather + sparse
      update (host speed: the server *is* a CPU);
    * **transfer** — prefetched-row and gradient bytes over the
      device's PCIe model;
    * **GPU** — measured wall clock of the worker compute (MLPs +
      local Eff-TT tables) scaled on the batched-GEMM roofline axis
      (the worker stage is TT-kernel dominated in this configuration).
    """
    check_positive(num_batches, "num_batches")
    check_positive(lr, "lr")
    cost = cost_model if cost_model is not None else KernelCostModel()
    mlp_sgd = SGD(model.parameters(), lr=lr)
    host_bags = [
        (pos, server_idx, model.embedding_bags[pos])
        for pos, server_idx in host_table_map.items()
    ]
    for _, _, bag in host_bags:
        if not isinstance(bag, HostBackedEmbeddingBag):
            raise TypeError(
                "host tables must be HostBackedEmbeddingBag instances"
            )

    losses: List[float] = []
    cpu_times = np.zeros(num_batches)
    transfer_times = np.zeros(num_batches)
    gpu_times = np.zeros(num_batches)

    for i in range(num_batches):
        batch = log.batch(i)

        # ---- CPU stage: server gather (measured) -------------------
        start = time.perf_counter()
        prefetched = [
            (pos, server_idx, server.gather(server_idx, batch.sparse_indices[pos]))
            for pos, server_idx, _ in host_bags
        ]
        cpu_gather = time.perf_counter() - start

        transfer_bytes = sum(
            entry.rows.nbytes // 2 for _, _, entry in prefetched
        )  # fp32 on the wire (tables are float64 in memory)
        transfer_times[i] = 2.0 * cost.h2d_time(transfer_bytes, device)

        for pos, _, entry in prefetched:
            model.embedding_bags[pos].load_rows(entry.unique_indices, entry.rows)

        # ---- GPU stage: worker compute (measured, scaled) -----------
        start = time.perf_counter()
        logits = model.forward(batch)
        loss = model.loss_fn.forward(logits, batch.labels)
        model.backward(model.loss_fn.backward())
        mlp_sgd.step()
        model.zero_grad()
        # local tables update on the worker; host-table gradients are
        # applied by the server in the CPU stage below
        for pos, bag in enumerate(model.embedding_bags):
            if pos not in host_table_map:
                bag.step(lr)
        worker_wall = time.perf_counter() - start
        gpu_times[i] = cost.scale_batched(worker_wall, device)
        losses.append(loss)

        # ---- CPU stage continued: server-side update (measured) ----
        start = time.perf_counter()
        for pos, server_idx, _ in host_bags:
            unique_idx, grads = model.embedding_bags[pos].pop_row_gradients()
            server.apply_gradients(server_idx, unique_idx, grads)
        cpu_times[i] = cpu_gather + (time.perf_counter() - start)

    trace = simulate_pipeline_trace(
        cpu_times, transfer_times, gpu_times, prefetch_depth=prefetch_depth
    )
    return TimedRunResult(
        losses=losses,
        cpu_times=cpu_times,
        transfer_times=transfer_times,
        gpu_times=gpu_times,
        trace=trace,
    )
