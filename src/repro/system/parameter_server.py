"""Parameter-server components for host-resident embedding tables (§V-A).

The server owns dense embedding tables in host memory and performs the
sparse operations on the CPU side: gathering rows for upcoming batches
(prefetch) and applying sparse gradients pulled from the gradient
queue.  Workers see host tables through
:class:`HostBackedEmbeddingBag`, a bag whose rows are *loaded* per
batch rather than owned — the mechanism that lets one DLRM instance mix
GPU-resident Eff-TT tables with host-resident dense tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import (
    ZONE_PS_APPLY,
    ZONE_PS_GATHER,
    get_backend,
)
from repro.embeddings.base import (
    EmbeddingBagBase,
    expand_bag_ids,
    segment_sum,
)
from repro.nn.optim import SparseSGD
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import check_1d_int_array

__all__ = ["HostParameterServer", "HostBackedEmbeddingBag", "PrefetchedRows"]


@dataclass
class PrefetchedRows:
    """One table's prefetched embedding batch (prefetch-queue payload).

    ``rows[i]`` is the host-memory value of ``unique_indices[i]`` at
    gather time — possibly stale by the time the worker consumes it.
    """

    table_idx: int
    unique_indices: np.ndarray
    rows: np.ndarray


class HostParameterServer:
    """CPU-side server owning the host-resident dense tables.

    Parameters
    ----------
    table_rows:
        Cardinality of each host table.
    embedding_dim:
        Shared embedding width.
    lr:
        Learning rate for the server-side sparse update.
    seed:
        RNG for table initialization.
    """

    def __init__(
        self,
        table_rows: Sequence[int],
        embedding_dim: int,
        lr: float,
        seed: RngLike = 0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.embedding_dim = int(embedding_dim)
        self.lr = float(lr)
        rngs = spawn_rngs(seed, len(table_rows))
        self.tables: List[np.ndarray] = []
        for rows, rng in zip(table_rows, rngs):
            bound = 1.0 / np.sqrt(rows)
            self.tables.append(
                rng.uniform(-bound, bound, size=(rows, embedding_dim))
            )
        self._sgd = SparseSGD(lr)
        self.gather_count = 0
        self.update_count = 0

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    def gather(self, table_idx: int, indices: np.ndarray) -> PrefetchedRows:
        """Gather the unique rows a batch needs (CPU-side lookup)."""
        table = self.tables[table_idx]
        idx = check_1d_int_array(
            indices, "indices", min_value=0, max_value=table.shape[0] - 1
        )
        unique = np.unique(idx)
        self.gather_count += 1
        bk = get_backend()
        with bk.zone(ZONE_PS_GATHER):
            rows = bk.gather_rows(table, unique)
        return PrefetchedRows(
            table_idx=table_idx,
            unique_indices=unique,
            rows=rows,
        )

    def apply_gradients(
        self, table_idx: int, unique_indices: np.ndarray, row_grads: np.ndarray
    ) -> None:
        """Apply one batch's aggregated sparse gradients (server update)."""
        self._sgd.step_rows(
            self.tables[table_idx], unique_indices, row_grads, zone=ZONE_PS_APPLY
        )
        self.update_count += 1

    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.tables)

    # -- checkpoint support ----------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Live state arrays for a trainer snapshot (keys ``table{t}``).

        The duck-typed surface the resilience checkpointing layer uses
        so any server implementation (host or sharded) can be captured
        and restored without the layer knowing its internal layout.
        """
        return {f"table{t}": table for t, table in enumerate(self.tables)}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_arrays` output (validate, then write)."""
        staged = []
        for t, table in enumerate(self.tables):
            key = f"table{t}"
            if key not in arrays:
                raise KeyError(f"snapshot missing table array {key!r}")
            stored = np.asarray(arrays[key], dtype=np.float64)
            if stored.shape != table.shape:
                raise ValueError(
                    f"table {key!r} shape mismatch: "
                    f"{stored.shape} vs {table.shape}"
                )
            staged.append((table, stored))
        for table, stored in staged:
            table[...] = stored

    # -- persistence -----------------------------------------------------
    def save(self, path) -> None:
        """Persist the host-resident tables (and lr) to an .npz file.

        Complements :func:`repro.models.serialization.save_checkpoint`,
        which covers only worker-local parameters: a PS deployment
        checkpoints the server tables here and the worker model there.
        """
        arrays = {
            f"table{t}": table for t, table in enumerate(self.tables)
        }
        arrays["__lr__"] = np.array([self.lr])
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path, seed: RngLike = 0) -> "HostParameterServer":
        """Rebuild a server from :meth:`save` output."""
        with np.load(path) as archive:
            lr = float(archive["__lr__"][0])
            tables = []
            t = 0
            while f"table{t}" in archive:
                tables.append(archive[f"table{t}"].astype(np.float64))
                t += 1
        if not tables:
            raise ValueError("checkpoint contains no tables")
        server = cls(
            [tab.shape[0] for tab in tables],
            embedding_dim=tables[0].shape[1],
            lr=lr,
            seed=seed,
        )
        server.tables = tables
        return server


class HostBackedEmbeddingBag(EmbeddingBagBase):
    """Worker-side view of a host-resident table.

    The bag owns no parameters.  Before each forward pass the trainer
    calls :meth:`load_rows` with the (cache-synchronized) prefetched
    rows; backward aggregates per-unique-row gradients which the
    trainer ships through the gradient queue via
    :meth:`pop_row_gradients`.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int) -> None:
        super().__init__(num_embeddings, embedding_dim)
        self._loaded_indices: Optional[np.ndarray] = None
        self._loaded_rows: Optional[np.ndarray] = None
        self._saved: Optional[dict] = None
        self._grads: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def load_rows(self, unique_indices: np.ndarray, rows: np.ndarray) -> None:
        """Install the embedding rows for the upcoming batch.

        ``unique_indices`` must be sorted and unique (the server's
        gather guarantees this).
        """
        idx = check_1d_int_array(
            unique_indices,
            "unique_indices",
            min_value=0,
            max_value=self.num_embeddings - 1,
        )
        rows = np.asarray(rows, dtype=np.float64)
        if rows.shape != (idx.size, self.embedding_dim):
            raise ValueError(
                f"rows shape {rows.shape} does not match "
                f"({idx.size}, {self.embedding_dim})"
            )
        if idx.size > 1 and np.any(np.diff(idx) <= 0):
            raise ValueError("unique_indices must be strictly increasing")
        self._loaded_indices = idx
        self._loaded_rows = rows

    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if self._loaded_indices is None or self._loaded_rows is None:
            raise RuntimeError("forward called before load_rows")
        idx, boundaries = self._validate_inputs(indices, offsets)
        positions = np.searchsorted(self._loaded_indices, idx)
        if positions.size and (
            positions.max(initial=0) >= self._loaded_indices.size
            or np.any(self._loaded_indices[positions] != idx)
        ):
            raise KeyError("batch references rows that were not loaded")
        bk = get_backend()
        with bk.zone(ZONE_PS_GATHER):
            rows = bk.gather_rows(self._loaded_rows, positions)
        self._saved = {"positions": positions, "boundaries": boundaries}
        return segment_sum(rows, boundaries)

    def backward(self, grad_output: np.ndarray) -> None:
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        saved = self._saved
        boundaries = saved["boundaries"]
        grad_output = np.asarray(grad_output, dtype=np.float64)
        num_bags = boundaries.size - 1
        if grad_output.shape != (num_bags, self.embedding_dim):
            raise ValueError(
                f"expected grad_output shape {(num_bags, self.embedding_dim)}, "
                f"got {grad_output.shape}"
            )
        bag_ids = expand_bag_ids(boundaries)
        assert self._loaded_indices is not None
        bk = get_backend()
        with bk.zone(ZONE_PS_APPLY):
            agg = bk.zeros(
                (self._loaded_indices.size, self.embedding_dim),
                dtype=grad_output.dtype,
            )
            bk.scatter_add_rows(
                agg, saved["positions"], bk.gather_rows(grad_output, bag_ids)
            )
        self._grads = (self._loaded_indices, agg)
        self._saved = None

    def pop_row_gradients(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return and clear ``(unique_indices, aggregated row grads)``."""
        if self._grads is None:
            raise RuntimeError("no gradients captured")
        grads = self._grads
        self._grads = None
        return grads

    def peek_row_gradients(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._grads is None:
            raise RuntimeError("no gradients captured")
        return self._grads

    def compute_updated_rows(self, lr: float) -> Tuple[np.ndarray, np.ndarray]:
        """Fresh row values after this batch's SGD step.

        ``loaded_rows - lr * grads`` — what the embedding cache stores
        so later prefetches can be synchronized (§V-B).  Requires
        un-popped gradients.
        """
        if self._grads is None or self._loaded_rows is None:
            raise RuntimeError("compute_updated_rows needs captured gradients")
        unique_indices, agg = self._grads
        return unique_indices, self._loaded_rows - lr * agg

    def step(self, lr: float) -> None:
        """Host tables are updated by the server, never by the worker."""
        raise RuntimeError(
            "HostBackedEmbeddingBag has no local parameters; route "
            "gradients through the parameter server"
        )

    @property
    def nbytes(self) -> int:
        """Worker-side footprint: only the currently loaded rows."""
        return 0 if self._loaded_rows is None else self._loaded_rows.nbytes
