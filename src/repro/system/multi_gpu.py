"""Multi-GPU training: functional data parallelism + collective cost models.

EL-Rec's multi-GPU mode (paper §V-A, Figure 12) replicates both the
MLPs *and* the TT tables on every GPU and trains fully data-parallel —
possible only because the Eff-TT footprint fits each device.  The
single communication step is a gradient AllReduce.

This module provides

* :class:`DataParallelTrainer` — a functional executor that maintains
  ``K`` model replicas, shards every batch, AllReduces gradients (dense
  parameter grads averaged; sparse TT updates exchanged and applied by
  every replica), and keeps replicas bit-synchronized.  Tests verify
  its result matches single-worker full-batch training.
* Collective timing formulas (:func:`ring_allreduce_time`,
  :func:`all2all_time`, :func:`allgather_time`) used by the framework
  cost models to price EL-Rec's AllReduce against HugeCTR's
  model-parallel all-to-all and TorchRec's column-sharded allgather
  (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataloader import Batch
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.models.config import DLRMConfig
from repro.models.dlrm import DLRM
from repro.nn.optim import SparseSGD
from repro.system.devices import DeviceSpec
from repro.utils.validation import check_positive

__all__ = [
    "DataParallelTrainer",
    "shard_batch",
    "ring_allreduce_time",
    "all2all_time",
    "allgather_time",
]


# ---------------------------------------------------------------------------
# collective cost formulas
# ---------------------------------------------------------------------------
def ring_allreduce_time(
    nbytes: float, num_devices: int, device: DeviceSpec, latency_s: float = 20e-6
) -> float:
    """Ring AllReduce: ``2 * (K-1)/K * bytes`` over the p2p links."""
    check_positive(nbytes, "nbytes", strict=False)
    check_positive(num_devices, "num_devices")
    if num_devices == 1:
        return 0.0
    k = num_devices
    transfer = 2.0 * (k - 1) / k * nbytes / (device.p2p_gbps * 1e9)
    return transfer + 2.0 * (k - 1) * latency_s


def all2all_time(
    nbytes_per_device: float,
    num_devices: int,
    device: DeviceSpec,
    latency_s: float = 20e-6,
    num_messages: int = 1,
) -> float:
    """All-to-all exchange: each device sends ``(K-1)/K`` of its payload.

    ``num_messages`` counts independently launched exchanges per
    collective: an unfused per-table all-to-all (the hybrid-parallel
    DLRM path exchanges every embedding table separately) pays the
    per-message latency once per table, whereas HugeCTR's fused
    exchange pays it once.
    """
    check_positive(nbytes_per_device, "nbytes_per_device", strict=False)
    check_positive(num_devices, "num_devices")
    check_positive(num_messages, "num_messages")
    if num_devices == 1:
        return 0.0
    k = num_devices
    transfer = (k - 1) / k * nbytes_per_device / (device.p2p_gbps * 1e9)
    return transfer + num_messages * (k - 1) * latency_s


def allgather_time(
    nbytes_per_device: float,
    num_devices: int,
    device: DeviceSpec,
    latency_s: float = 20e-6,
    num_messages: int = 1,
) -> float:
    """Ring allgather: ``(K-1) * bytes_per_device`` received per device.

    ``num_messages`` counts independently launched gathers (an unfused
    per-shard implementation pays the latency once per shard).
    """
    check_positive(nbytes_per_device, "nbytes_per_device", strict=False)
    check_positive(num_devices, "num_devices")
    check_positive(num_messages, "num_messages")
    if num_devices == 1:
        return 0.0
    k = num_devices
    transfer = (k - 1) * nbytes_per_device / (device.p2p_gbps * 1e9)
    return transfer + num_messages * (k - 1) * latency_s


# ---------------------------------------------------------------------------
# functional data parallelism
# ---------------------------------------------------------------------------
def shard_batch(batch: Batch, num_shards: int) -> List[Batch]:
    """Split a batch into ``num_shards`` equal contiguous shards.

    The batch size must divide evenly (the trainer enforces this so
    gradient averaging equals full-batch training exactly).
    """
    check_positive(num_shards, "num_shards")
    size = batch.batch_size
    if size % num_shards != 0:
        raise ValueError(
            f"batch size {size} is not divisible by {num_shards} shards"
        )
    shard_size = size // num_shards
    shards: List[Batch] = []
    for s in range(num_shards):
        lo, hi = s * shard_size, (s + 1) * shard_size
        indices = []
        offsets = []
        for idx, off in zip(batch.sparse_indices, batch.sparse_offsets):
            start, end = off[lo], off[hi]
            indices.append(idx[start:end])
            offsets.append((off[lo : hi + 1] - off[lo]).astype(np.int64))
        shards.append(
            Batch(
                dense=batch.dense[lo:hi],
                sparse_indices=indices,
                sparse_offsets=offsets,
                labels=batch.labels[lo:hi],
                batch_id=batch.batch_id,
            )
        )
    return shards


class DataParallelTrainer:
    """Functional K-replica data-parallel DLRM trainer.

    All replicas are built from the same seed (identical initial
    weights).  Each step:

    1. shard the global batch across replicas;
    2. every replica runs forward/backward on its shard;
    3. dense parameter gradients are averaged (AllReduce) and applied
       identically everywhere;
    4. embedding updates are exchanged: every replica applies *all*
       replicas' sparse updates scaled by ``1/K`` — the gradient
       AllReduce of paper Figure 9 Step 2.

    Because scatter-adds commute, replicas remain synchronized; the
    result equals single-worker training on the unsharded batch.

    Parameters
    ----------
    config:
        Model architecture (backend must be EFF_TT or DENSE; host
        tables are out of scope for the data-parallel path).
    num_replicas:
        ``K``.
    seed:
        Shared replica seed.
    """

    def __init__(
        self, config: DLRMConfig, num_replicas: int, seed: int = 0
    ) -> None:
        check_positive(num_replicas, "num_replicas")
        self.config = config
        self.num_replicas = int(num_replicas)
        self.replicas = [
            DLRM(config, seed=seed) for _ in range(self.num_replicas)
        ]

    def train_step(self, batch: Batch, lr: float) -> float:
        """One data-parallel step; returns the global mean loss."""
        shards = shard_batch(batch, self.num_replicas)
        losses: List[float] = []
        sparse_updates: List[List[Tuple[int, object]]] = []
        for replica, shard in zip(self.replicas, shards):
            logits = replica.forward(shard)
            losses.append(replica.loss_fn.forward(logits, shard.labels))
            replica.backward(replica.loss_fn.backward())
            # Detach this replica's sparse updates before any apply.
            updates: List[Tuple[int, object]] = []
            for t, bag in enumerate(replica.embedding_bags):
                if isinstance(bag, EffTTEmbeddingBag):
                    updates.append((t, bag.pop_pending_update()))
                elif isinstance(bag, DenseEmbeddingBag):
                    updates.append((t, bag.pop_row_gradients()))
                else:
                    raise TypeError(
                        f"unsupported bag type {type(bag).__name__} in "
                        "data-parallel training"
                    )
            sparse_updates.append(updates)

        # AllReduce dense parameter gradients (mean over replicas).
        param_groups = [list(r.parameters()) for r in self.replicas]
        for group in zip(*param_groups):
            grads = [p.grad for p in group if p.grad is not None]
            if not grads:
                continue
            mean_grad = sum(grads) / self.num_replicas
            for p in group:
                p.data -= lr * mean_grad
                p.zero_grad()

        # Exchange and apply sparse embedding updates everywhere.
        scale = 1.0 / self.num_replicas
        sgd = SparseSGD(lr * scale)
        for replica in self.replicas:
            for updates in sparse_updates:
                for t, payload in updates:
                    bag = replica.embedding_bags[t]
                    if isinstance(bag, EffTTEmbeddingBag):
                        bag.apply_pending_update(payload, lr, scale=scale)
                    else:
                        rows, grads = payload  # type: ignore[misc]
                        sgd.step_rows(bag.weight, rows, grads)  # type: ignore[attr-defined]
        return float(np.mean(losses))

    def replicas_synchronized(self, atol: float = 1e-10) -> bool:
        """Check all replicas hold identical parameters."""
        ref = self.replicas[0]
        for other in self.replicas[1:]:
            for p_ref, p_other in zip(ref.parameters(), other.parameters()):
                if not np.allclose(p_ref.data, p_other.data, atol=atol):
                    return False
            for bag_ref, bag_other in zip(
                ref.embedding_bags, other.embedding_bags
            ):
                if isinstance(bag_ref, EffTTEmbeddingBag):
                    for c_ref, c_other in zip(
                        bag_ref.tt.cores, bag_other.tt.cores
                    ):
                        if not np.allclose(c_ref, c_other, atol=atol):
                            return False
                else:
                    if not np.allclose(
                        bag_ref.weight, bag_other.weight, atol=atol
                    ):
                        return False
        return True
