"""Chrome-trace export for pipeline simulations.

Converts an event-driven pipeline run into the Chrome Trace Event
format (the JSON consumed by ``chrome://tracing`` / Perfetto), giving
a visual timeline of the CPU / PCIe / GPU stages and the RAW-conflict
window the embedding cache covers — a standard systems-debugging
artifact for the §V design.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["pipeline_trace_events", "export_chrome_trace"]

_STAGE_TIDS = {"cpu": 1, "pcie": 2, "gpu": 3}


def pipeline_trace_events(
    cpu_times: Sequence[float],
    transfer_times: Sequence[float],
    gpu_times: Sequence[float],
    prefetch_depth: int = 4,
) -> List[Dict]:
    """Simulate the 3-stage pipeline and emit one trace event per
    (batch, stage) occupancy interval.

    Re-runs the DES with instrumented resources; returns Chrome
    "complete" events (``ph="X"``) with microsecond timestamps.
    """
    from repro.system.simclock import Resource, Simulator

    check_positive(prefetch_depth, "prefetch_depth")
    cpu = np.asarray(cpu_times, dtype=np.float64)
    pcie = np.asarray(transfer_times, dtype=np.float64)
    gpu = np.asarray(gpu_times, dtype=np.float64)
    if not (cpu.shape == pcie.shape == gpu.shape) or cpu.ndim != 1:
        raise ValueError("stage time arrays must be 1-D and equal length")
    if cpu.size == 0:
        raise ValueError("need at least one batch")

    num_batches = cpu.size
    sim = Simulator()
    resources = {
        "cpu": Resource(sim, "cpu"),
        "pcie": Resource(sim, "pcie"),
        "gpu": Resource(sim, "gpu"),
    }
    durations = {"cpu": cpu, "pcie": pcie, "gpu": gpu}
    events: List[Dict] = []
    in_flight = {"count": 0}
    next_batch = {"id": 0}

    def record(stage: str, batch_id: int, start: float, duration: float):
        events.append(
            {
                "name": f"batch {batch_id}",
                "cat": stage,
                "ph": "X",
                "ts": start * 1e6,
                "dur": duration * 1e6,
                "pid": 0,
                "tid": _STAGE_TIDS[stage],
                "args": {"batch": batch_id, "stage": stage},
            }
        )

    def run_stage(stage: str, batch_id: int, on_done) -> None:
        duration = float(durations[stage][batch_id])
        queued_at = sim.now

        def done() -> None:
            record(stage, batch_id, sim.now - duration, duration)
            if sim.now - duration > queued_at + 1e-12:
                # queue-wait marker (instant event)
                events.append(
                    {
                        "name": f"wait b{batch_id}",
                        "cat": f"{stage}-queue",
                        "ph": "i",
                        "ts": queued_at * 1e6,
                        "pid": 0,
                        "tid": _STAGE_TIDS[stage],
                        "s": "t",
                    }
                )
            on_done()

        resources[stage].request(duration, done)

    def try_start() -> None:
        if next_batch["id"] >= num_batches:
            return
        if in_flight["count"] >= prefetch_depth:
            return
        batch_id = next_batch["id"]
        next_batch["id"] += 1
        in_flight["count"] += 1
        run_stage(
            "cpu",
            batch_id,
            lambda b=batch_id: (
                run_stage(
                    "pcie",
                    b,
                    lambda b=b: run_stage("gpu", b, lambda b=b: finish(b)),
                ),
                try_start(),
            ),
        )

    def finish(batch_id: int) -> None:
        in_flight["count"] -= 1
        try_start()

    try_start()
    sim.run()
    # thread-name metadata rows
    for stage, tid in _STAGE_TIDS.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": stage.upper()},
            }
        )
    return events


def export_chrome_trace(
    path: str,
    cpu_times: Sequence[float],
    transfer_times: Sequence[float],
    gpu_times: Sequence[float],
    prefetch_depth: int = 4,
) -> int:
    """Write a Chrome trace JSON for the pipeline run.

    Returns the number of events written.  Open the file in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events = pipeline_trace_events(
        cpu_times, transfer_times, gpu_times, prefetch_depth
    )
    with open(path, "w") as handle:
        json.dump({"traceEvents": events}, handle)
    return len(events)
