"""Minimal discrete-event simulation kernel.

The closed-form recurrence in :func:`repro.system.pipeline.pipeline_schedule`
covers the steady-state analysis of Figure 16, but studying *variable*
per-batch behaviour (stragglers from cold batches, queue-occupancy
traces, cache-warmup transients) needs an event-driven model.  This
module provides a small deterministic DES:

* :class:`Resource` — a unit-capacity server with FIFO queueing;
* :class:`Simulator` — an event loop with ties broken
  deterministically by (time, sequence number);
* :func:`simulate_pipeline_trace` — the EL-Rec 3-stage trainer
  expressed in DES form, returning per-batch timelines and
  queue-occupancy statistics.

The DES and the closed-form recurrence are cross-validated in the test
suite: for constant stage times they must agree exactly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["Simulator", "Resource", "PipelineTrace", "simulate_pipeline_trace"]


class Simulator:
    """Deterministic event loop.

    Events are ``(time, callback)`` pairs; simultaneous events fire in
    scheduling order.  Callbacks may schedule further events.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._counter), callback)
        )

    def run(self, max_events: int = 1_000_000) -> float:
        """Process events to exhaustion; returns the final clock."""
        while self._heap:
            if self.events_processed >= max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events; likely a scheduling loop"
                )
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            callback()
        return self.now


class Resource:
    """Unit-capacity server with FIFO queueing discipline.

    ``request(duration, on_done)`` either starts service immediately or
    queues; ``on_done`` fires when service completes.  Tracks busy time
    and queue-length statistics for utilization reports.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._busy = False
        self._queue: List[Tuple[float, Callable[[], None]]] = []
        self.busy_time = 0.0
        self.served = 0
        self.max_queue_len = 0

    def request(self, duration: float, on_done: Callable[[], None]) -> None:
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        if self._busy:
            self._queue.append((duration, on_done))
            self.max_queue_len = max(self.max_queue_len, len(self._queue))
            return
        self._start(duration, on_done)

    def _start(self, duration: float, on_done: Callable[[], None]) -> None:
        self._busy = True
        self.busy_time += duration

        def finish() -> None:
            self._busy = False
            self.served += 1
            on_done()
            if self._queue and not self._busy:
                next_duration, next_done = self._queue.pop(0)
                self._start(next_duration, next_done)

        self.sim.schedule(duration, finish)

    def utilization(self, horizon: float) -> float:
        """Busy fraction over a horizon (0 when horizon is 0)."""
        return self.busy_time / horizon if horizon > 0 else 0.0


@dataclass
class PipelineTrace:
    """Outcome of an event-driven pipeline simulation."""

    finish_times: np.ndarray  # (num_batches,) completion of GPU stage
    makespan: float
    stage_utilization: Dict[str, float]
    max_prefetch_occupancy: int

    @property
    def steady_state_interval(self) -> float:
        if self.finish_times.size < 2:
            return float(self.makespan)
        return float(
            (self.finish_times[-1] - self.finish_times[0])
            / (self.finish_times.size - 1)
        )


def simulate_pipeline_trace(
    cpu_times: Sequence[float],
    transfer_times: Sequence[float],
    gpu_times: Sequence[float],
    prefetch_depth: int = 4,
) -> PipelineTrace:
    """Event-driven EL-Rec 3-stage pipeline (paper Figure 9).

    Stage resources: the CPU (server-side embedding gather + update),
    the PCIe link (H2D prefetch + D2H gradients), and the GPU (MLP +
    Eff-TT compute).  The prefetch queue bounds how far the CPU may run
    ahead of the GPU; a full queue back-pressures the CPU (the slot is
    freed when the GPU *finishes* the batch, matching the
    blocking-after-service convention of ``pipeline_schedule``).

    Parameters
    ----------
    cpu_times, transfer_times, gpu_times:
        Per-batch stage durations (equal lengths).
    prefetch_depth:
        Queue capacity between stages.
    """
    check_positive(prefetch_depth, "prefetch_depth")
    cpu = np.asarray(cpu_times, dtype=np.float64)
    pcie = np.asarray(transfer_times, dtype=np.float64)
    gpu = np.asarray(gpu_times, dtype=np.float64)
    if not (cpu.shape == pcie.shape == gpu.shape) or cpu.ndim != 1:
        raise ValueError("stage time arrays must be 1-D and equal length")
    if cpu.size == 0:
        raise ValueError("need at least one batch")
    if min(cpu.min(), pcie.min(), gpu.min()) < 0:
        raise ValueError("stage durations must be >= 0")

    num_batches = cpu.size
    sim = Simulator()
    cpu_res = Resource(sim, "cpu")
    pcie_res = Resource(sim, "pcie")
    gpu_res = Resource(sim, "gpu")

    finish = np.zeros(num_batches)
    in_flight = {"count": 0, "max": 0}
    next_batch = {"id": 0}

    def try_start_cpu() -> None:
        if next_batch["id"] >= num_batches:
            return
        if in_flight["count"] >= prefetch_depth:
            return  # backpressure: wait for a GPU completion
        batch_id = next_batch["id"]
        next_batch["id"] += 1
        in_flight["count"] += 1
        in_flight["max"] = max(in_flight["max"], in_flight["count"])
        cpu_res.request(cpu[batch_id], lambda b=batch_id: on_cpu_done(b))

    def on_cpu_done(batch_id: int) -> None:
        pcie_res.request(pcie[batch_id], lambda b=batch_id: on_transfer_done(b))
        try_start_cpu()

    def on_transfer_done(batch_id: int) -> None:
        gpu_res.request(gpu[batch_id], lambda b=batch_id: on_gpu_done(b))

    def on_gpu_done(batch_id: int) -> None:
        finish[batch_id] = sim.now
        in_flight["count"] -= 1
        try_start_cpu()

    try_start_cpu()
    makespan = sim.run()
    return PipelineTrace(
        finish_times=finish,
        makespan=makespan,
        stage_utilization={
            "cpu": cpu_res.utilization(makespan),
            "pcie": pcie_res.utilization(makespan),
            "gpu": gpu_res.utilization(makespan),
        },
        max_prefetch_occupancy=in_flight["max"],
    )
