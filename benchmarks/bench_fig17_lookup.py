"""Figure 17: Eff-TT table lookup latency vs TT-Rec across batch sizes.

Real measured forward-kernel latencies on one compressed table, with
the two input-side configurations of the paper: intermediate-result
reuse on/off and locality-based index reordering on/off.  Expected
shape: Eff-TT speedup over TT-Rec grows with batch size (more reuse
opportunity); reordering adds a further ~5%.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_series
from repro.data.synthetic import ClusteredZipfSampler
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.reorder.bijection import build_bijection
from repro.utils.timer import measure_median

NUM_ROWS = 1_000_000
DIM = 32
TT_RANK = 32
BATCH_SIZES = (512, 1024, 2048, 4096, 8192)


def _make_batches(batch_size: int, num_batches: int = 4):
    sampler = ClusteredZipfSampler(
        NUM_ROWS, alpha=1.05, locality=0.5, cluster_size=2048, seed=0
    )
    return [
        sampler.sample_batch(batch_size, np.random.default_rng(i))
        for i in range(num_batches)
    ]


def _lookup_latency(bag, batches) -> float:
    state = {"i": 0}

    def fwd():
        bag.forward(batches[state["i"] % len(batches)])
        state["i"] += 1

    return measure_median(fwd, repeats=3, warmup=1)


def build_fig17() -> str:
    tt = TTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    eff = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    series = {"TT-Rec": [], "Eff-TT (reuse)": [], "Eff-TT (reuse+reorder)": [],
              "speedup": []}
    for batch_size in BATCH_SIZES:
        batches = _make_batches(batch_size)
        bijection = build_bijection(batches, NUM_ROWS, hot_ratio=0.001, seed=0)
        reordered = [bijection.apply(b) for b in batches]
        t_tt = _lookup_latency(tt, batches)
        t_eff = _lookup_latency(eff, batches)
        t_eff_reorder = _lookup_latency(eff, reordered)
        series["TT-Rec"].append(round(t_tt * 1e3, 3))
        series["Eff-TT (reuse)"].append(round(t_eff * 1e3, 3))
        series["Eff-TT (reuse+reorder)"].append(round(t_eff_reorder * 1e3, 3))
        series["speedup"].append(round(t_tt / t_eff_reorder, 2))
    return format_series(
        "Figure 17: TT-table lookup latency (ms) vs batch size "
        "(1M-row table, rank 32)",
        "batch",
        list(BATCH_SIZES),
        series,
    )


@pytest.mark.parametrize("batch_size", [2048])
def test_fig17_lookup_kernels(benchmark, batch_size):
    eff = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    batches = _make_batches(batch_size)
    state = {"i": 0}

    def fwd():
        eff.forward(batches[state["i"] % len(batches)])
        state["i"] += 1

    benchmark(fwd)


def test_fig17_shapes(benchmark):
    emit("fig17_lookup", run_once(benchmark, build_fig17))
    import time

    tt = TTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    eff = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    large = _make_batches(8192)
    # Interleaved min-of-k forward latencies (contention-robust).
    times = {"tt": [], "eff": []}
    for rep in range(4):
        for name, bag in (("tt", tt), ("eff", eff)):
            start = time.perf_counter()
            bag.forward(large[rep % len(large)])
            if rep > 0:
                times[name].append(time.perf_counter() - start)
    # Eff-TT lookup is faster at large batch sizes (paper Figure 17)
    assert min(times["eff"]) < min(times["tt"])


if __name__ == "__main__":
    print(build_fig17())
