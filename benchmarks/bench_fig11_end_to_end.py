"""Figure 11: end-to-end training speedup with a single GPU.

For each dataset and device (V100 with TT rank 128 in the paper, T4
with rank 64), composes measured substrate kernel times through each
framework's strategy model and reports the speedup over the DLRM
(CPU+GPU) baseline — the paper's Figure 11 bars.

Expected shape: EL-Rec fastest everywhere (~3x over DLRM on V100),
FAE ~2x, TT-Rec between.
"""

from __future__ import annotations

import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.frameworks import DlrmPS, ELRec, FAE, TTRec
from repro.system.devices import TESLA_T4, TESLA_V100

FRAMEWORKS = (DlrmPS, FAE, TTRec, ELRec)


def build_fig11(cost_model, workload_profiles) -> str:
    rows = []
    for device in (TESLA_V100, TESLA_T4):
        for name, profile in workload_profiles.items():
            base = DlrmPS(cost_model).iteration_time(profile, device)
            for F in FRAMEWORKS:
                bd = F(cost_model).iteration_time(profile, device)
                rows.append(
                    [
                        device.name,
                        name,
                        bd.framework,
                        round(bd.total * 1e3, 3),
                        round(bd.speedup_over(base), 2),
                    ]
                )
    return format_table(
        ["device", "dataset", "framework", "iter ms", "speedup vs DLRM"],
        rows,
        title=(
            "Figure 11: end-to-end single-GPU speedup over DLRM "
            "(measured kernels composed through the device cost model)"
        ),
    )


def test_fig11_efftt_kernel(benchmark, dataset_specs):
    """Benchmark the real Eff-TT train cycle behind the figure."""
    import numpy as np

    from repro.data.dataloader import SyntheticClickLog

    spec = dataset_specs["criteo-kaggle"]
    log = SyntheticClickLog(spec, batch_size=2048, seed=0)
    batch = log.batch(0)
    largest = int(np.argmax([t.num_rows for t in spec.tables]))
    bag = EffTTEmbeddingBag(
        spec.tables[largest].num_rows, 32, tt_rank=32, seed=0
    )
    idx = batch.sparse_indices[largest]
    off = batch.sparse_offsets[largest]
    grad = np.random.default_rng(0).standard_normal((2048, 32))

    def cycle():
        bag.forward(idx, off)
        bag.backward_and_step(grad, 0.01)

    benchmark(cycle)


def test_fig11_orderings(benchmark, cost_model, workload_profiles):
    table = run_once(benchmark, lambda: build_fig11(cost_model, workload_profiles))
    emit("fig11_end_to_end", table)
    for device in (TESLA_V100, TESLA_T4):
        for name, profile in workload_profiles.items():
            times = {
                F.name: F(cost_model).iteration_time(profile, device).total
                for F in FRAMEWORKS
            }
            assert times["EL-Rec"] == min(times.values()), (device.name, name)
            assert times["DLRM"] == max(times.values()), (device.name, name)
            speedup = times["DLRM"] / times["EL-Rec"]
            assert speedup > 1.5, (device.name, name, speedup)


if __name__ == "__main__":
    from repro.bench.harness import measure_workload
    from repro.data.datasets import avazu_like, criteo_kaggle_like, criteo_tb_like
    from repro.system.devices import KernelCostModel

    profiles = {
        spec.name: measure_workload(spec, batch_size=2048, embedding_dim=32,
                                    tt_rank=32)
        for spec in (
            avazu_like(scale=2e-3),
            criteo_kaggle_like(scale=2e-3),
            criteo_tb_like(scale=2e-3),
        )
    }
    print(build_fig11(KernelCostModel(), profiles))
