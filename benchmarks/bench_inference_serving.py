"""Extension: serving-time latency with the hot-row cache.

Training wants the TT form (small, updatable); serving wants latency.
Materializing the hot rows (paper Figure 4a: a few % of rows serve the
bulk of lookups) turns most serving lookups into plain gathers.  This
bench sweeps the cache coverage and reports measured lookup latency,
hit rate, and the memory the cache costs on top of the TT cores.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.synthetic import ZipfSampler
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.inference import HotRowCachedLookup
from repro.utils.timer import measure_median

NUM_ROWS = 1_000_000
DIM = 32
TT_RANK = 32
BATCH = 4096
COVERAGES = (0.0, 0.001, 0.01, 0.05)


def _requests(num_batches=4):
    sampler = ZipfSampler(NUM_ROWS, alpha=1.05, seed=0)
    return [
        sampler.sample(BATCH, np.random.default_rng(i))
        for i in range(num_batches)
    ], sampler


def _hot_rows(sampler: ZipfSampler, coverage: float) -> np.ndarray:
    count = max(0, int(NUM_ROWS * coverage))
    if count == 0:
        return np.array([], dtype=np.int64)
    # the sampler knows its own popularity permutation
    return sampler._rank_to_row[:count]  # most popular rows


def build_serving_table() -> str:
    requests, sampler = _requests()
    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    rows = []
    for coverage in COVERAGES:
        view = HotRowCachedLookup(bag, hot_rows=_hot_rows(sampler, coverage))
        state = {"i": 0}

        def serve():
            view.lookup_rows(requests[state["i"] % len(requests)])
            state["i"] += 1

        latency = measure_median(serve, repeats=3, warmup=1)
        rows.append(
            [
                f"{coverage:.3f}",
                view.num_hot_rows,
                f"{view.hit_rate:.1%}",
                round(latency * 1e3, 2),
                f"{view.cache_nbytes / 1e6:.1f}",
            ]
        )
    return format_table(
        [
            "cache coverage",
            "hot rows",
            "hit rate",
            "lookup ms / 4K batch",
            "cache MB",
        ],
        rows,
        title=(
            "Serving: hot-row cache over the Eff-TT table "
            "(1M rows, Zipf 1.05 requests)"
        ),
    )


def test_serving_lookup_kernel(benchmark):
    requests, sampler = _requests()
    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    view = HotRowCachedLookup(bag, hot_rows=_hot_rows(sampler, 0.01))
    state = {"i": 0}

    def serve():
        view.lookup_rows(requests[state["i"] % len(requests)])
        state["i"] += 1

    benchmark(serve)


def test_serving_shapes(benchmark):
    emit("inference_serving", run_once(benchmark, build_serving_table))
    requests, sampler = _requests()
    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    cold = HotRowCachedLookup(bag, hot_rows=np.array([], dtype=np.int64))
    warm = HotRowCachedLookup(bag, hot_rows=_hot_rows(sampler, 0.05))
    for req in requests:
        cold.lookup_rows(req)
        warm.lookup_rows(req)
    # skew: a 5% cache serves the majority of requests
    assert warm.hit_rate > 0.5
    assert cold.hit_rate == 0.0
    # correctness: both serve identical values
    np.testing.assert_allclose(
        cold.lookup_rows(requests[0]),
        warm.lookup_rows(requests[0]),
        atol=1e-12,
    )


if __name__ == "__main__":
    print(build_serving_table())
