"""Figure 16: pipeline training system throughput.

Setup (paper §VI-C): the largest embedding table is Eff-TT-compressed
into GPU HBM; the remaining tables stay in host memory behind the
parameter server.  Compares DLRM (everything host-resident, no
overlap), EL-Rec (Sequential) (prefetch queue length 1), and EL-Rec
(Pipeline).

Also exercises the *functional* pipelined trainer to confirm the
embedding cache keeps pipelined training numerically identical to
sequential training while the timing model credits the overlap.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.frameworks import DlrmPS, ELRec
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.system.devices import TESLA_V100
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import PipelinedPSTrainer, SequentialPSTrainer

HOST_FRACTION = 0.6  # share of embedding work served from host memory
PREFETCH_DEPTH = 4


def build_fig16(cost_model, workload_profiles) -> str:
    rows = []
    for name, profile in workload_profiles.items():
        dlrm = DlrmPS(cost_model).iteration_time(profile, TESLA_V100)
        el = ELRec(cost_model)
        seq = el.pipelined_iteration_time(
            profile, TESLA_V100, HOST_FRACTION, pipelined=False
        )
        pipe = el.pipelined_iteration_time(
            profile, TESLA_V100, HOST_FRACTION, prefetch_depth=PREFETCH_DEPTH
        )
        base = dlrm.total
        for label, bd in (
            ("DLRM", dlrm),
            ("EL-Rec (Sequential)", seq),
            ("EL-Rec (Pipeline)", pipe),
        ):
            rows.append(
                [
                    name,
                    label,
                    round(bd.total * 1e3, 3),
                    round(base / bd.total, 2),
                ]
            )
    return format_table(
        ["dataset", "configuration", "iter ms", "speedup vs DLRM"],
        rows,
        title=(
            "Figure 16: pipeline training throughput (largest table "
            "Eff-TT on GPU, remaining tables in host memory)"
        ),
    )


def _functional_setup():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=64, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    rows = list(cfg.table_rows)
    # largest table on GPU as Eff-TT, the next two largest on the host
    order = sorted(range(len(rows)), key=lambda t: -rows[t])
    host_positions = order[1:3]
    host_map = {p: i for i, p in enumerate(host_positions)}
    bags = []
    for t, r in enumerate(rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(r, cfg.embedding_dim))
        else:
            bags.append(
                build_embedding_bag(
                    cfg.backend_for_table(t), r, cfg.embedding_dim,
                    cfg.tt_rank, seed=(300 + t),
                )
            )
    model = DLRM(cfg, seed=5, embedding_bags=bags)
    server = HostParameterServer(
        [rows[p] for p in host_positions], cfg.embedding_dim, lr=0.05, seed=1
    )
    return log, model, server, host_map


def test_fig16_functional_pipeline_step(benchmark):
    log, model, server, host_map = _functional_setup()
    trainer = PipelinedPSTrainer(
        model, server, host_map, lr=0.05,
        prefetch_depth=PREFETCH_DEPTH, grad_queue_depth=2, use_cache=True,
    )
    state = {"i": 0}

    def train_window():
        result = trainer.train(log, 4, start=state["i"])
        state["i"] += 4
        return result

    result = benchmark(train_window)
    assert len(result.losses) == 4


def test_fig16_shapes(benchmark, cost_model, workload_profiles):
    emit("fig16_pipeline", run_once(benchmark, lambda: build_fig16(cost_model, workload_profiles)))
    for name, profile in workload_profiles.items():
        el = ELRec(cost_model)
        dlrm = DlrmPS(cost_model).iteration_time(profile, TESLA_V100)
        seq = el.pipelined_iteration_time(
            profile, TESLA_V100, HOST_FRACTION, pipelined=False
        )
        pipe = el.pipelined_iteration_time(
            profile, TESLA_V100, HOST_FRACTION, prefetch_depth=PREFETCH_DEPTH
        )
        # paper: pipeline ~2.44x over DLRM, ~1.3x over sequential
        assert pipe.total < seq.total, name
        assert pipe.total < dlrm.total, name


def test_fig16_cache_preserves_numerics(benchmark):
    run_once(benchmark, lambda: None)
    log, model, server, host_map = _functional_setup()
    pipe = PipelinedPSTrainer(
        model, server, host_map, lr=0.05,
        prefetch_depth=PREFETCH_DEPTH, grad_queue_depth=2, use_cache=True,
    )
    r_pipe = pipe.train(log, 12)

    log2, model2, server2, host_map2 = _functional_setup()
    seq = SequentialPSTrainer(model2, server2, host_map2, lr=0.05)
    r_seq = seq.train(log2, 12)
    np.testing.assert_array_equal(r_pipe.losses, r_seq.losses)
    for a, b in zip(server.tables, server2.tables):
        np.testing.assert_array_equal(a, b)


if __name__ == "__main__":
    from repro.bench.harness import measure_workload
    from repro.data.datasets import avazu_like, criteo_tb_like
    from repro.system.devices import KernelCostModel

    profiles = {
        spec.name: measure_workload(spec, batch_size=2048, embedding_dim=32,
                                    tt_rank=32)
        for spec in (
            avazu_like(scale=2e-3),
            criteo_kaggle_like(scale=2e-3),
            criteo_tb_like(scale=2e-3),
        )
    }
    print(build_fig16(KernelCostModel(), profiles))
