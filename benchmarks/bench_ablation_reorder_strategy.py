"""Ablation: global-only vs global+local index reordering (§IV-A).

The paper's motivating claim: prior frameworks exploit only *global*
information (access frequency), while EL-Rec also exploits *local*
information (within-batch co-occurrence).  This ablation compares three
strategies on identical clustered batches:

* identity (no reordering),
* frequency-only bijection (global information, the FAE/prior-work
  strategy),
* community bijection (global + local, the paper's Algorithm 2 +
  Louvain),

measuring unique-TT-prefix reduction and real lookup latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.synthetic import ClusteredZipfSampler
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.reorder.bijection import (
    IndexBijection,
    build_bijection,
    build_frequency_bijection,
)
from repro.reorder.stats import reuse_improvement
from repro.utils.timer import measure_median

NUM_ROWS = 200_000
DIM = 32
BATCH = 4096
NUM_BATCHES = 6


def _batches():
    sampler = ClusteredZipfSampler(
        NUM_ROWS, alpha=1.05, locality=0.6, cluster_size=1024, seed=0
    )
    return [
        sampler.sample_batch(BATCH, np.random.default_rng(i))
        for i in range(NUM_BATCHES)
    ]


def _strategies(batches):
    return {
        "identity (no reorder)": IndexBijection.identity(NUM_ROWS),
        "frequency only (global info)": build_frequency_bijection(
            batches, NUM_ROWS
        ),
        "community (global + local)": build_bijection(
            batches, NUM_ROWS, hot_ratio=0.01, seed=0
        ),
    }


def build_strategy_ablation() -> str:
    batches = _batches()
    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=32, seed=0)
    rows = []
    for label, bijection in _strategies(batches).items():
        stats = reuse_improvement(batches, bag.spec.row_shape, bijection)
        remapped = [bijection.apply(b) for b in batches]
        state = {"i": 0}

        def fwd():
            bag.forward(remapped[state["i"] % len(remapped)])
            state["i"] += 1

        latency = measure_median(fwd, repeats=3, warmup=1)
        rows.append(
            [
                label,
                round(stats["mean_unique_prefixes_after"], 0),
                round(stats["partial_gemm_reduction"], 2),
                round(latency * 1e3, 2),
            ]
        )
    return format_table(
        [
            "strategy",
            "unique prefixes / batch",
            "partial-GEMM reduction",
            "lookup ms",
        ],
        rows,
        title=(
            "Ablation: reordering strategies — the paper's claim that "
            "local (co-occurrence) information beats global (frequency) "
            "information alone"
        ),
    )


def test_frequency_bijection_cost(benchmark):
    batches = _batches()

    def generate():
        return build_frequency_bijection(batches, NUM_ROWS)

    bijection = benchmark(generate)
    assert bijection.num_rows == NUM_ROWS


def test_strategy_ablation_shapes(benchmark):
    emit(
        "ablation_reorder_strategy",
        run_once(benchmark, build_strategy_ablation),
    )
    batches = _batches()
    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=32, seed=0)
    strategies = _strategies(batches)
    reductions = {
        label: reuse_improvement(batches, bag.spec.row_shape, bij)[
            "partial_gemm_reduction"
        ]
        for label, bij in strategies.items()
    }
    # global+local beats both identity and frequency-only (the §IV claim)
    community = reductions["community (global + local)"]
    assert community > reductions["identity (no reorder)"]
    assert community > reductions["frequency only (global info)"]


if __name__ == "__main__":
    print(build_strategy_ablation())
