"""Figure 15: training-loss convergence of DLRM / TT-Rec / EL-Rec.

Trains the three models on an identical Terabyte-shaped stream and
prints the loss at fixed checkpoints.  The paper's claim: the Eff-TT
convergence curve is indistinguishable from the dense baseline — no
extra iterations needed.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_series
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_tb_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM

SCALE = 2e-5
STEPS = 120
BATCH = 256
LR = 0.2
CHECKPOINT_EVERY = 10

BACKENDS = [
    ("DLRM", EmbeddingBackend.DENSE),
    ("TT-Rec", EmbeddingBackend.TT),
    ("EL-Rec", EmbeddingBackend.EFF_TT),
]


def _loss_curve(backend: EmbeddingBackend) -> list:
    spec = criteo_tb_like(scale=SCALE)
    log = SyntheticClickLog(spec, batch_size=BATCH, seed=0, teacher_strength=3.0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=backend, tt_rank=8,
        bottom_mlp=(32, 16), top_mlp=(32,),
    )
    model = DLRM(cfg, seed=21)
    return [model.train_step(log.batch(i), lr=LR).loss for i in range(STEPS)]


def build_fig15(curves=None) -> str:
    if curves is None:
        curves = {name: _loss_curve(b) for name, b in BACKENDS}
    checkpoints = list(range(0, STEPS, CHECKPOINT_EVERY))
    series = {
        name: [round(np.mean(curve[max(0, i - 5) : i + 5]), 4) for i in checkpoints]
        for name, curve in curves.items()
    }
    return format_series(
        "Figure 15: loss convergence on the Terabyte-shaped stream "
        "(smoothed training loss)",
        "iteration",
        checkpoints,
        series,
    )


def test_fig15_train_step(benchmark):
    spec = criteo_tb_like(scale=SCALE)
    log = SyntheticClickLog(spec, batch_size=BATCH, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(32, 16), top_mlp=(32,),
    )
    model = DLRM(cfg, seed=21)
    counter = iter(range(10**9))

    def step():
        return model.train_step(log.batch(next(counter)), lr=LR).loss

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_fig15_curves_overlap(benchmark):
    curves = run_once(
        benchmark, lambda: {name: _loss_curve(b) for name, b in BACKENDS}
    )
    emit("fig15_convergence", build_fig15(curves))
    dense = np.array(curves["DLRM"])
    el = np.array(curves["EL-Rec"])
    tt = np.array(curves["TT-Rec"])
    # all decrease
    for curve in (dense, el, tt):
        assert curve[-20:].mean() < curve[:20].mean()
    # EL-Rec tracks dense closely (paper: "almost the same")
    assert abs(dense[-20:].mean() - el[-20:].mean()) < 0.05
    # TT-Rec and EL-Rec are the same mathematics
    np.testing.assert_allclose(tt, el, rtol=1e-6)


if __name__ == "__main__":
    print(build_fig15())
