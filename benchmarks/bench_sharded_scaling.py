"""Sharded-PS scaling: throughput and bytes-on-wire, 8-64 devices.

Figure-12-style curves for the sharded parameter-server tier: a small
DLRM trains *functionally* through the
:class:`~repro.sharding.server.ShardedParameterServer` at each device
count and compression mode, the server's per-link byte meters supply
measured bytes-on-wire per iteration, and the
:class:`~repro.system.devices.KernelCostModel` composes those into an
analytic iteration time (server work splits across shards; every shard
link carries its pull + push traffic over PCIe).

Two shapes are asserted: throughput grows with the device count (the
serial link is the bottleneck and sharding divides it), and link
compression strictly reduces PS bytes on the wire — the top-k
error-feedback pushes and int8 pulls buy bandwidth at a documented,
bounded accuracy cost (DESIGN.md §11).

Marked ``dist_slow``: run with ``pytest benchmarks -m dist_slow``.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.sharding import LinkCompressionConfig, build_sharded_ps_trainer
from repro.system.devices import TESLA_V100, KernelCostModel

DEVICE_COUNTS = (8, 16, 32, 64)
COMPRESSION_MODES = ("none", "topk", "both")
NUM_BATCHES = 6
BATCH_SIZE = 64
# The functional run uses a scaled-down workload (batch 64, dim 8); the
# analytic model projects its measured traffic to paper scale
# (batch 2048, dim 64) so link *bandwidth*, not fixed launch latency,
# sets the pace — the regime the real system operates in.
MODEL_BATCH = 2048
MODEL_DIM = 64
TRAFFIC_SCALE = (MODEL_BATCH // BATCH_SIZE) * (MODEL_DIM // 8)


def _measure_link_traffic(num_shards: int, mode: str):
    """Train a few functional batches; return measured per-iter traffic.

    Returns ``(per_link_wire, per_link_raw, final_loss)`` where the
    byte figures are the *maximum over shard links* of mean bytes per
    iteration (pull + push) — the straggler link that sets the pace.
    """
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=BATCH_SIZE, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    rows = list(cfg.table_rows)
    positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    setup = build_sharded_ps_trainer(
        cfg,
        num_shards=num_shards,
        compression=LinkCompressionConfig(mode=mode, topk_fraction=0.1),
        host_positions=positions,
    )
    result = setup.trainer.train(log, NUM_BATCHES)
    stats = setup.server.link_stats
    per_link_wire = float(
        (stats.pull_wire + stats.push_wire).max() / NUM_BATCHES
    )
    per_link_raw = float(
        (stats.pull_raw + stats.push_raw).max() / NUM_BATCHES
    )
    return per_link_wire, per_link_raw, float(result.losses[-1])


def _iteration_time(
    cost_model: KernelCostModel,
    num_shards: int,
    per_link_bytes: float,
    server_bytes: float,
) -> float:
    """Analytic per-iteration time of the sharded PS tier.

    Shard links run in parallel, so the link term is the straggler
    link's PCIe time; the server-side gather/apply is memory-bound work
    divided across the shard devices.  Measured traffic is projected to
    paper scale by ``TRAFFIC_SCALE`` first.
    """
    link = cost_model.h2d_time(per_link_bytes * TRAFFIC_SCALE, TESLA_V100)
    row_bytes = MODEL_DIM * 8
    rows_moved = max(1, int(server_bytes * TRAFFIC_SCALE / row_bytes))
    server = cost_model.gather_time(
        max(1, rows_moved // num_shards), row_bytes, TESLA_V100
    )
    return link + server


def build_sharded_scaling(cost_model: KernelCostModel) -> str:
    rows = []
    curves = {}
    for mode in COMPRESSION_MODES:
        for num_shards in DEVICE_COUNTS:
            wire, raw, loss = _measure_link_traffic(num_shards, mode)
            iter_s = _iteration_time(cost_model, num_shards, wire, raw)
            throughput = MODEL_BATCH / iter_s
            curves[(mode, num_shards)] = (wire, raw, throughput, loss)
            rows.append(
                [
                    mode,
                    num_shards,
                    f"{wire:,.0f}",
                    f"{raw / wire:.2f}x" if wire else "n/a",
                    round(iter_s * 1e6, 1),
                    f"{throughput / 1e3:.1f}K",
                    round(loss, 4),
                ]
            )
    table = format_table(
        [
            "compress",
            "devices",
            "wire B/iter/link",
            "ratio",
            "iter us",
            "samples/s",
            "final loss",
        ],
        rows,
        title=(
            "Sharded-PS scaling: measured bytes-on-wire + modeled "
            "throughput (V100 links)"
        ),
    )
    return table


@pytest.mark.dist_slow
def test_sharded_scaling_curves(benchmark, cost_model):
    emit(
        "sharded_scaling",
        run_once(benchmark, lambda: build_sharded_scaling(cost_model)),
    )


@pytest.mark.dist_slow
def test_throughput_grows_with_devices(cost_model):
    # Compression shrinks the link traffic up front, so the compressed
    # curve has less left to gain from sharding — it still grows
    # monotonically, just with a shallower slope than the raw links.
    for mode, min_speedup in (("none", 1.5), ("both", 1.2)):
        throughputs = []
        for num_shards in DEVICE_COUNTS:
            wire, raw, _ = _measure_link_traffic(num_shards, mode)
            iter_s = _iteration_time(cost_model, num_shards, wire, raw)
            throughputs.append(MODEL_BATCH / iter_s)
        assert throughputs == sorted(throughputs), (mode, throughputs)
        assert throughputs[-1] > min_speedup * throughputs[0], mode


@pytest.mark.dist_slow
def test_compression_reduces_wire_bytes(cost_model):
    for num_shards in (8, 64):
        wire_none, raw_none, loss_none = _measure_link_traffic(
            num_shards, "none"
        )
        wire_topk, _, _ = _measure_link_traffic(num_shards, "topk")
        wire_both, _, loss_both = _measure_link_traffic(num_shards, "both")
        # Uncompressed links carry exactly the raw traffic; each knob
        # strictly shrinks what crosses the wire.
        assert wire_none == raw_none
        assert wire_topk < wire_none
        assert wire_both < wire_topk
        # Accuracy stays bounded under both knobs (documented bound).
        assert np.isfinite(loss_both)
        assert abs(loss_both - loss_none) / abs(loss_none) < 5e-2


if __name__ == "__main__":
    print(build_sharded_scaling(KernelCostModel()))
