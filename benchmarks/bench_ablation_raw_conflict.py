"""Ablation: the cost of the read-after-write conflict (§II-A, §V-B).

The paper motivates the embedding cache by noting that naive
prefetching "will incur data consistency issues caused by
read-after-write conflict and slow down the model convergence".  This
ablation quantifies that: identical pipelined training runs with and
without the embedding cache, across prefetch depths (deeper pipelines
read staler rows), reporting stale-row counts, final-loss gaps and
parameter drift from the sequential ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import PipelinedPSTrainer, SequentialPSTrainer

LR = 0.3  # aggressive rate magnifies the staleness effect
NUM_BATCHES = 60
DEPTHS = (2, 4, 8)


def _setup():
    spec = criteo_kaggle_like(scale=5e-5)
    log = SyntheticClickLog(spec, batch_size=128, seed=0, teacher_strength=3.0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=500, bottom_mlp=(32,), top_mlp=(32,),
    )
    rows = list(cfg.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:3]
    host_map = {p: i for i, p in enumerate(host_positions)}
    server_rows = [rows[p] for p in host_positions]
    return log, cfg, host_map, server_rows


def _train(depth, use_cache):
    log, cfg, host_map, server_rows = _setup()
    bags = []
    for t, rows in enumerate(cfg.table_rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(rows, cfg.embedding_dim))
        else:
            bags.append(
                build_embedding_bag(
                    cfg.backend_for_table(t), rows, cfg.embedding_dim,
                    cfg.tt_rank, seed=(700 + t),
                )
            )
    model = DLRM(cfg, seed=13, embedding_bags=bags)
    server = HostParameterServer(server_rows, cfg.embedding_dim, lr=LR, seed=2)
    if depth == 0:
        trainer = SequentialPSTrainer(model, server, host_map, lr=LR)
    else:
        trainer = PipelinedPSTrainer(
            model, server, host_map, lr=LR, prefetch_depth=depth,
            grad_queue_depth=max(1, depth // 2), use_cache=use_cache,
        )
    result = trainer.train(log, NUM_BATCHES)
    return server, result


def build_raw_conflict_ablation() -> str:
    seq_server, seq_result = _train(0, True)
    ground_truth_loss = float(np.mean(seq_result.losses[-10:]))
    rows = [["sequential (ground truth)", "-", 0, f"{ground_truth_loss:.5f}", 0.0]]
    for depth in DEPTHS:
        for use_cache in (True, False):
            server, result = _train(depth, use_cache)
            drift = max(
                float(np.abs(a - b).max())
                for a, b in zip(seq_server.tables, server.tables)
            )
            loss = float(np.mean(result.losses[-10:]))
            rows.append(
                [
                    "pipeline + cache" if use_cache else "naive prefetch",
                    depth,
                    result.stale_rows_consumed,
                    f"{loss:.5f}",
                    f"{drift:.2e}",
                ]
            )
    return format_table(
        [
            "configuration",
            "prefetch depth",
            "stale rows consumed",
            "final loss (avg last 10)",
            "max param drift vs sequential",
        ],
        rows,
        title=(
            "Ablation: RAW conflict — pipelined training with vs without "
            f"the embedding cache (lr={LR}, {NUM_BATCHES} batches)"
        ),
    )


def test_raw_conflict_step(benchmark):
    log, cfg, host_map, server_rows = _setup()
    bags = []
    for t, rows in enumerate(cfg.table_rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(rows, cfg.embedding_dim))
        else:
            bags.append(
                build_embedding_bag(
                    cfg.backend_for_table(t), rows, cfg.embedding_dim,
                    cfg.tt_rank, seed=(700 + t),
                )
            )
    model = DLRM(cfg, seed=13, embedding_bags=bags)
    server = HostParameterServer(server_rows, cfg.embedding_dim, lr=LR, seed=2)
    trainer = PipelinedPSTrainer(
        model, server, host_map, lr=LR, prefetch_depth=4,
        grad_queue_depth=2, use_cache=True,
    )
    state = {"i": 0}

    def window():
        out = trainer.train(log, 4, start=state["i"])
        state["i"] += 4
        return out

    result = benchmark(window)
    assert len(result.losses) == 4


def test_raw_conflict_shapes(benchmark):
    emit(
        "ablation_raw_conflict",
        run_once(benchmark, build_raw_conflict_ablation),
    )
    seq_server, _ = _train(0, True)
    cached_server, cached = _train(4, True)
    stale_server, stale = _train(4, False)
    # cache: zero drift (bitwise); no cache: consumed stale rows + drift
    for a, b in zip(seq_server.tables, cached_server.tables):
        np.testing.assert_array_equal(a, b)
    assert cached.stale_rows_consumed == 0
    assert stale.stale_rows_consumed > 0
    drift = max(
        float(np.abs(a - b).max())
        for a, b in zip(seq_server.tables, stale_server.tables)
    )
    assert drift > 0.0


if __name__ == "__main__":
    print(build_raw_conflict_ablation())
