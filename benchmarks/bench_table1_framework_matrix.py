"""Table I: qualitative framework comparison.

Regenerates the paper's framework feature matrix from each strategy
model's self-description, and benchmarks the cost-model evaluation
itself (it is called thousands of times by the sweep benchmarks).
"""

from __future__ import annotations

from conftest import emit
from repro.bench.harness import format_table
from repro.frameworks import DlrmPS, ELRec, FAE, TTRec
from repro.system.devices import TESLA_V100

TABLE1_FRAMEWORKS = (DlrmPS, FAE, TTRec, ELRec)


def build_table1(cost_model) -> str:
    rows = []
    for F in TABLE1_FRAMEWORKS:
        row = F(cost_model).table1_row()
        rows.append(
            [
                row["framework"],
                row["host_memory"],
                row["embedding_compression"],
                row["cpu_gpu_comm_latency"],
                row["compression_overhead"],
            ]
        )
    return format_table(
        [
            "Framework",
            "Host Memory",
            "Embedding Compression",
            "CPU-GPU Comm. Latency",
            "Compression Overhead",
        ],
        rows,
        title="Table I: Comparison with the most relevant DLRM frameworks",
    )


def test_table1_matrix(cost_model, workload_profiles, benchmark):
    profile = workload_profiles["criteo-kaggle"]
    frameworks = [F(cost_model) for F in TABLE1_FRAMEWORKS]

    def evaluate_all():
        return [f.iteration_time(profile, TESLA_V100) for f in frameworks]

    breakdowns = benchmark(evaluate_all)
    assert all(b.feasible for b in breakdowns)
    emit("table1_framework_matrix", build_table1(cost_model))


if __name__ == "__main__":
    from repro.system.devices import KernelCostModel

    print(build_table1(KernelCostModel()))
