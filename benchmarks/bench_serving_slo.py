"""Extension: serving SLO sweep — arrival rate x batching policy.

The micro-batching trade-off made quantitative: at low arrival rates
aggressive coalescing only adds wait-time latency, while under load it
is what keeps the server ahead of the arrival process.  This bench runs
the full deterministic serving loop (real DLRM numerics, simulated
time) across a grid of Poisson arrival rates and batching policies and
reports throughput, tail latency, batch sizes, rejections, and cache
hit rate — the data an operator would use to pick a policy for a
latency SLO.

Marked ``serving_slow`` (thousands of real model forwards): excluded
from default pytest runs; invoke with ``pytest benchmarks -m
serving_slow`` or run the module directly.
"""

from __future__ import annotations

import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.serving import (
    BatchingPolicy,
    InferenceServer,
    RequestGenerator,
    ServingModel,
)

SCALE = 3e-5
NUM_REQUESTS = 400
HOT_COVERAGE = 0.1
# The top rate exceeds the no-batching capacity (2 workers at ~0.12 ms
# per single-request batch saturate near 17k req/s), so the sweep shows
# both regimes: batching pure overhead at low load, survival under it.
RATES = (500.0, 2_000.0, 24_000.0)
POLICIES = {
    "no batching": BatchingPolicy(max_batch_size=1, max_wait=0.0),
    "batch 16 / 2 ms": BatchingPolicy(max_batch_size=16, max_wait=2e-3),
    "batch 64 / 5 ms": BatchingPolicy(max_batch_size=64, max_wait=5e-3),
}


def build_serving_slo_table() -> str:
    spec = criteo_kaggle_like(scale=SCALE)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    model = DLRM(config, seed=0)
    rows = []
    for rate in RATES:
        generator = RequestGenerator(spec, rate=rate, seed=0)
        requests = generator.generate(NUM_REQUESTS)
        hot_rows = {
            t: generator.hot_rows(t, HOT_COVERAGE)
            for t in range(spec.num_sparse)
        }
        for label, policy in POLICIES.items():
            server = InferenceServer(
                ServingModel(model, hot_rows=hot_rows),
                policy=policy,
                num_workers=2,
            )
            report = server.run(requests).report
            rows.append(
                [
                    f"{rate:,.0f}",
                    label,
                    f"{report.throughput_rps:,.0f}",
                    f"{report.latency_p50 * 1e3:.2f}",
                    f"{report.latency_p99 * 1e3:.2f}",
                    f"{report.mean_batch_size:.1f}",
                    report.rejected,
                    f"{report.cache_hit_rate:.1%}",
                ]
            )
    return format_table(
        [
            "arrival rate (req/s)",
            "policy",
            "served rps",
            "p50 ms",
            "p99 ms",
            "mean batch",
            "rejected",
            "hit rate",
        ],
        rows,
        title=(
            "Serving SLO sweep: arrival rate x micro-batching policy "
            f"(criteo-kaggle @ {SCALE:g}, {NUM_REQUESTS} requests, "
            "Eff-TT + hot-row cache)"
        ),
    )


@pytest.mark.serving_slow
def test_serving_slo_sweep(benchmark):
    emit("serving_slo", run_once(benchmark, build_serving_slo_table))


@pytest.mark.serving_slow
def test_batching_helps_under_load():
    """At high load, coalescing must beat one-request batches on p99."""
    spec = criteo_kaggle_like(scale=SCALE)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    model = DLRM(config, seed=0)
    generator = RequestGenerator(spec, rate=24_000.0, seed=0)
    requests = generator.generate(NUM_REQUESTS)
    hot_rows = {
        t: generator.hot_rows(t, HOT_COVERAGE)
        for t in range(spec.num_sparse)
    }

    def p99(policy: BatchingPolicy) -> float:
        server = InferenceServer(
            ServingModel(model, hot_rows=hot_rows),
            policy=policy, num_workers=2,
        )
        return server.run(requests).report.latency_p99

    assert p99(POLICIES["batch 16 / 2 ms"]) < p99(POLICIES["no batching"])


if __name__ == "__main__":
    print(build_serving_slo_table())
