"""Extension: serving SLO sweep — arrival rate x batching policy.

The micro-batching trade-off made quantitative: at low arrival rates
aggressive coalescing only adds wait-time latency, while under load it
is what keeps the server ahead of the arrival process.  This bench runs
the full deterministic serving loop (real DLRM numerics, simulated
time) across a grid of Poisson arrival rates and batching policies and
reports throughput, tail latency, batch sizes, rejections, and cache
hit rate — the data an operator would use to pick a policy for a
latency SLO.

Marked ``serving_slow`` (thousands of real model forwards): excluded
from default pytest runs; invoke with ``pytest benchmarks -m
serving_slow`` or run the module directly.

The second half is the replicated-fleet sweep (``fleet_slow``): p99
across replica counts {1, 2, 4, 8} on a million-row Zipf workload,
under steady load, a mid-stream arrival surge, and a surge with a
rolling hot-swap landing in the middle of it — the capacity-planning
table for the fleet tier.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.serving import (
    BatchingPolicy,
    InferenceServer,
    RequestGenerator,
    ServiceTimeModel,
    ServingModel,
)

SCALE = 3e-5
NUM_REQUESTS = 400
HOT_COVERAGE = 0.1
# The top rate exceeds the no-batching capacity (2 workers at ~0.12 ms
# per single-request batch saturate near 17k req/s), so the sweep shows
# both regimes: batching pure overhead at low load, survival under it.
RATES = (500.0, 2_000.0, 24_000.0)
POLICIES = {
    "no batching": BatchingPolicy(max_batch_size=1, max_wait=0.0),
    "batch 16 / 2 ms": BatchingPolicy(max_batch_size=16, max_wait=2e-3),
    "batch 64 / 5 ms": BatchingPolicy(max_batch_size=64, max_wait=5e-3),
}


def build_serving_slo_table() -> str:
    spec = criteo_kaggle_like(scale=SCALE)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    model = DLRM(config, seed=0)
    rows = []
    for rate in RATES:
        generator = RequestGenerator(spec, rate=rate, seed=0)
        requests = generator.generate(NUM_REQUESTS)
        hot_rows = {
            t: generator.hot_rows(t, HOT_COVERAGE)
            for t in range(spec.num_sparse)
        }
        for label, policy in POLICIES.items():
            server = InferenceServer(
                ServingModel(model, hot_rows=hot_rows),
                policy=policy,
                num_workers=2,
            )
            report = server.run(requests).report
            rows.append(
                [
                    f"{rate:,.0f}",
                    label,
                    f"{report.throughput_rps:,.0f}",
                    f"{report.latency_p50 * 1e3:.2f}",
                    f"{report.latency_p99 * 1e3:.2f}",
                    f"{report.mean_batch_size:.1f}",
                    report.rejected,
                    f"{report.cache_hit_rate:.1%}",
                ]
            )
    return format_table(
        [
            "arrival rate (req/s)",
            "policy",
            "served rps",
            "p50 ms",
            "p99 ms",
            "mean batch",
            "rejected",
            "hit rate",
        ],
        rows,
        title=(
            "Serving SLO sweep: arrival rate x micro-batching policy "
            f"(criteo-kaggle @ {SCALE:g}, {NUM_REQUESTS} requests, "
            "Eff-TT + hot-row cache)"
        ),
    )


@pytest.mark.serving_slow
def test_serving_slo_sweep(benchmark):
    emit("serving_slo", run_once(benchmark, build_serving_slo_table))


@pytest.mark.serving_slow
def test_batching_helps_under_load():
    """At high load, coalescing must beat one-request batches on p99."""
    spec = criteo_kaggle_like(scale=SCALE)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    model = DLRM(config, seed=0)
    generator = RequestGenerator(spec, rate=24_000.0, seed=0)
    requests = generator.generate(NUM_REQUESTS)
    hot_rows = {
        t: generator.hot_rows(t, HOT_COVERAGE)
        for t in range(spec.num_sparse)
    }

    def p99(policy: BatchingPolicy) -> float:
        server = InferenceServer(
            ServingModel(model, hot_rows=hot_rows),
            policy=policy, num_workers=2,
        )
        return server.run(requests).report.latency_p99

    assert p99(POLICIES["batch 16 / 2 ms"]) < p99(POLICIES["no batching"])


# -- replicated-fleet sweep (fleet_slow) --------------------------------

FLEET_SCALE = 0.03          # ~1M embedding rows across the 26 tables
FLEET_REQUESTS = 400
FLEET_RATE = 4_000.0
FLEET_SURGE_FACTOR = 4.0
FLEET_REPLICAS = (1, 2, 4, 8)
FLEET_HOT_COVERAGE = 0.005  # Zipf skew: tiny row fraction, big hit rate
#: One replica serves a 16-batch in ~2 ms (~8k req/s): the x4 surge
#: (16k req/s) saturates one replica, is borderline at two, and has
#: headroom at four — the regime where the replica column matters.
FLEET_SERVICE = ServiceTimeModel(base=2e-3)


def _with_surge(requests, factor):
    """Compress the middle third's inter-arrival gaps by ``factor``.

    Same request ids and content as the steady stream — only the
    arrival clock changes — so scenario comparisons isolate load shape.
    """
    times = [r.arrival_time for r in requests]
    gaps = np.diff([0.0] + times)
    third = len(requests) // 3
    gaps[third: 2 * third] /= factor
    new_times = np.cumsum(gaps)
    return [
        dataclasses.replace(r, arrival_time=float(t))
        for r, t in zip(requests, new_times)
    ]


def build_fleet_slo_table() -> str:
    from repro.serving import FleetConfig, ModelSnapshot, ServingFleet

    spec = criteo_kaggle_like(scale=FLEET_SCALE)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    snap_v1 = ModelSnapshot.from_model(DLRM(config, seed=7), version=1)
    snap_v2 = ModelSnapshot.from_model(DLRM(config, seed=9), version=2)
    generator = RequestGenerator(spec, rate=FLEET_RATE, seed=0)
    steady = generator.generate(FLEET_REQUESTS)
    surged = _with_surge(steady, FLEET_SURGE_FACTOR)
    hot_rows = {
        t: generator.hot_rows(t, FLEET_HOT_COVERAGE)
        for t in range(spec.num_sparse)
    }
    scenarios = (
        ("steady", steady, False),
        ("surge x4", surged, False),
        ("surge + mid-swap", surged, True),
    )
    rows = []
    for num_replicas in FLEET_REPLICAS:
        for label, requests, swap in scenarios:
            fleet = ServingFleet(
                snap_v1,
                hot_rows=hot_rows,
                config=FleetConfig(
                    num_replicas=num_replicas,
                    batching=BatchingPolicy(
                        max_batch_size=16, max_wait=2e-3,
                    ),
                ),
                service_time=FLEET_SERVICE,
            )
            if swap:
                # land the install churn inside the surge window
                fleet.schedule_swap(
                    requests[len(requests) // 2].arrival_time, snap_v2,
                )
            outcome = fleet.run(requests)
            report = outcome.report
            swaps = outcome.swaps[0] if outcome.swaps else None
            rows.append(
                [
                    num_replicas,
                    label,
                    f"{report.throughput_rps:,.0f}",
                    f"{report.latency_p50 * 1e3:.2f}",
                    f"{report.latency_p99 * 1e3:.2f}",
                    len(outcome.shed_ids) + len(outcome.rejected_ids),
                    len(outcome.redirects),
                    (
                        f"{swaps.dropped_in_flight} dropped"
                        if swaps is not None else "-"
                    ),
                ]
            )
    return format_table(
        [
            "replicas",
            "scenario",
            "served rps",
            "p50 ms",
            "p99 ms",
            "lost",
            "redirects",
            "swap",
        ],
        rows,
        title=(
            "Fleet SLO sweep: replica count x load shape "
            f"(criteo-kaggle @ {FLEET_SCALE:g} — ~1M embedding rows, "
            f"{FLEET_REQUESTS} requests @ {FLEET_RATE:,.0f}/s, "
            f"surge x{FLEET_SURGE_FACTOR:g} mid-stream)"
        ),
    )


@pytest.mark.fleet_slow
def test_fleet_slo_sweep(benchmark):
    emit("fleet_slo", run_once(benchmark, build_fleet_slo_table))


@pytest.mark.fleet_slow
def test_replicas_absorb_the_surge():
    """Under the surge, 4 replicas must beat 1 replica on p99."""
    from repro.serving import FleetConfig, ModelSnapshot, ServingFleet

    spec = criteo_kaggle_like(scale=FLEET_SCALE)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    snapshot = ModelSnapshot.from_model(DLRM(config, seed=7), version=1)
    generator = RequestGenerator(spec, rate=FLEET_RATE, seed=0)
    requests = _with_surge(
        generator.generate(FLEET_REQUESTS), FLEET_SURGE_FACTOR
    )
    hot_rows = {
        t: generator.hot_rows(t, FLEET_HOT_COVERAGE)
        for t in range(spec.num_sparse)
    }

    def p99(num_replicas: int) -> float:
        fleet = ServingFleet(
            snapshot,
            hot_rows=hot_rows,
            config=FleetConfig(
                num_replicas=num_replicas,
                batching=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
            ),
            service_time=FLEET_SERVICE,
        )
        return fleet.run(requests).report.latency_p99

    assert p99(4) < p99(1)


if __name__ == "__main__":
    print(build_serving_slo_table())
    print(build_fleet_slo_table())
