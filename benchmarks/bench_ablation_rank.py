"""Ablation: TT-rank trade-off (compression vs quality vs kernel cost).

The paper fixes rank 128 (V100) / 64 (T4) without showing the sweep;
this ablation makes the design choice visible: rank drives a
three-way trade between compression ratio (Table III), reconstruction
capacity (Table IV accuracy), and kernel latency (Figures 17/18).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.data.synthetic import ZipfSampler
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.utils.timer import measure_median

RANKS = (4, 8, 16, 32, 64)
NUM_ROWS = 500_000
DIM = 32
BATCH = 2048

ACC_SCALE = 2e-4
ACC_STEPS = 80


def _kernel_latency(rank: int) -> float:
    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=rank, seed=0)
    idx = ZipfSampler(NUM_ROWS, alpha=1.05, seed=0).sample(
        BATCH, np.random.default_rng(0)
    )
    grad = np.random.default_rng(1).standard_normal((BATCH, DIM))

    def cycle():
        bag.forward(idx)
        bag.backward_and_step(grad, 0.01)

    return measure_median(cycle, repeats=3, warmup=1)


def _accuracy(rank: int) -> float:
    spec = criteo_kaggle_like(scale=ACC_SCALE)
    log = SyntheticClickLog(spec, batch_size=256, seed=0, teacher_strength=3.0)
    threshold = max(1, int(1_000_000 * spec.scale))
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT,
        tt_rank=rank, tt_threshold_rows=threshold,
        bottom_mlp=(32, 16), top_mlp=(32,),
    )
    model = DLRM(cfg, seed=11)
    for i in range(ACC_STEPS):
        model.train_step(log.batch(i), lr=0.2)
    metrics = model.evaluate([log.batch(40_000 + i) for i in range(6)])
    return metrics["accuracy"] * 100.0


def build_rank_ablation() -> str:
    rows = []
    for rank in RANKS:
        bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=rank, seed=0)
        latency = _kernel_latency(rank)
        accuracy = _accuracy(rank)
        rows.append(
            [
                rank,
                f"{bag.compression_ratio():.0f}x",
                round(latency * 1e3, 2),
                f"{accuracy:.2f}",
            ]
        )
    return format_table(
        ["TT rank", "compression", "train cycle ms (host)", "accuracy %"],
        rows,
        title=(
            "Ablation: TT rank sweep on a 500K-row table "
            "(compression vs measured kernel cost vs accuracy)"
        ),
    )


def test_rank_kernel_cost(benchmark):
    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=16, seed=0)
    idx = ZipfSampler(NUM_ROWS, alpha=1.05, seed=0).sample(
        BATCH, np.random.default_rng(0)
    )
    grad = np.random.default_rng(1).standard_normal((BATCH, DIM))

    def cycle():
        bag.forward(idx)
        bag.backward_and_step(grad, 0.01)

    benchmark(cycle)


def test_rank_ablation_shapes(benchmark):
    emit("ablation_rank", run_once(benchmark, build_rank_ablation))
    # compression monotonically decreases with rank; latency increases
    small = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=4, seed=0)
    large = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=64, seed=0)
    assert small.compression_ratio() > large.compression_ratio()
    assert _kernel_latency(4) < _kernel_latency(64)


if __name__ == "__main__":
    print(build_rank_ablation())
