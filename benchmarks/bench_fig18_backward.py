"""Figure 18: Eff-TT backward+update latency vs TT-Rec across batch sizes.

Real measured backward-kernel latencies with the paper's three
backward-side ablations: in-advance gradient aggregation, fused TT-core
update, and index reordering.  Expected shape: ~1.5-2x over TT-Rec,
with gradient aggregation the largest contributor.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_series
from repro.data.synthetic import ClusteredZipfSampler
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.utils.timer import measure_median

NUM_ROWS = 1_000_000
DIM = 32
TT_RANK = 32
BATCH_SIZES = (512, 1024, 2048, 4096)
LR = 0.01


def _make_batches(batch_size: int, num_batches: int = 4):
    sampler = ClusteredZipfSampler(
        NUM_ROWS, alpha=1.05, locality=0.5, cluster_size=2048, seed=0
    )
    return [
        sampler.sample_batch(batch_size, np.random.default_rng(i))
        for i in range(num_batches)
    ]


def _backward_latency(bag, batches, grad) -> float:
    state = {"i": 0}

    def cycle():
        bag.forward(batches[state["i"] % len(batches)])
        state["i"] += 1
        bag.backward(grad)
        bag.step(LR)

    total = measure_median(cycle, repeats=3, warmup=1)

    def fwd_only():
        bag.forward(batches[state["i"] % len(batches)])
        state["i"] += 1

    fwd = measure_median(fwd_only, repeats=3, warmup=1)
    return max(total - fwd, 1e-9)


def build_fig18() -> str:
    series = {
        "TT-Rec": [],
        "Eff-TT (full)": [],
        "w/o grad aggregation": [],
        "w/o fused update": [],
        "speedup": [],
    }
    for batch_size in BATCH_SIZES:
        batches = _make_batches(batch_size)
        grad = np.random.default_rng(7).standard_normal((batch_size, DIM))
        tt = TTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
        eff = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
        no_agg = EffTTEmbeddingBag(
            NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0,
            enable_grad_aggregation=False,
        )
        no_fuse = EffTTEmbeddingBag(
            NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0, enable_fused_update=False
        )
        t_tt = _backward_latency(tt, batches, grad)
        t_eff = _backward_latency(eff, batches, grad)
        t_no_agg = _backward_latency(no_agg, batches, grad)
        t_no_fuse = _backward_latency(no_fuse, batches, grad)
        series["TT-Rec"].append(round(t_tt * 1e3, 3))
        series["Eff-TT (full)"].append(round(t_eff * 1e3, 3))
        series["w/o grad aggregation"].append(round(t_no_agg * 1e3, 3))
        series["w/o fused update"].append(round(t_no_fuse * 1e3, 3))
        series["speedup"].append(round(t_tt / t_eff, 2))
    return format_series(
        "Figure 18: TT-table backward+update latency (ms) vs batch size "
        "(1M-row table, rank 32)",
        "batch",
        list(BATCH_SIZES),
        series,
    )


@pytest.mark.parametrize("batch_size", [2048])
def test_fig18_backward_kernel(benchmark, batch_size):
    eff = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    batches = _make_batches(batch_size)
    grad = np.random.default_rng(7).standard_normal((batch_size, DIM))
    state = {"i": 0}

    def cycle():
        eff.forward(batches[state["i"] % len(batches)])
        state["i"] += 1
        eff.backward_and_step(grad, LR)

    benchmark(cycle)


def test_fig18_shapes(benchmark):
    emit("fig18_backward", run_once(benchmark, build_fig18))
    import time

    batch_size = 4096
    batches = _make_batches(batch_size)
    grad = np.random.default_rng(7).standard_normal((batch_size, DIM))
    bags = {
        "tt": TTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0),
        "eff": EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0),
        "no_agg": EffTTEmbeddingBag(
            NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0,
            enable_grad_aggregation=False,
        ),
    }
    # Interleaved min-of-k cycles: robust to transient CPU contention.
    cycle_times = {name: [] for name in bags}
    for rep in range(4):
        for name, bag in bags.items():
            start = time.perf_counter()
            bag.forward(batches[rep % len(batches)])
            bag.backward(grad)
            bag.step(LR)
            if rep > 0:
                cycle_times[name].append(time.perf_counter() - start)
    best = {name: min(ts) for name, ts in cycle_times.items()}
    # paper: ~1.7x average speedup over TT-Rec, aggregation dominates
    assert best["eff"] < best["tt"]
    assert best["eff"] < best["no_agg"]


if __name__ == "__main__":
    print(build_fig18())
