"""Ablation: the index-reordering ``Hot_ratio`` hyperparameter (§IV-C).

Algorithm 2 pins the top ``Hot_ratio`` fraction of rows (by global
frequency) and only reorders the rest.  Too small and the hottest rows
churn the community structure; too large and most of the table is
frozen out of locality optimization.  This sweep measures the
unique-prefix reduction and the resulting real lookup latency across
``Hot_ratio`` values.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.synthetic import ClusteredZipfSampler
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.reorder.bijection import build_bijection
from repro.reorder.stats import reuse_improvement
from repro.utils.timer import measure_median

HOT_RATIOS = (0.0, 0.001, 0.01, 0.05, 0.2)
NUM_ROWS = 200_000
DIM = 32
BATCH = 4096
NUM_BATCHES = 6


def _batches():
    sampler = ClusteredZipfSampler(
        NUM_ROWS, alpha=1.05, locality=0.6, cluster_size=1024, seed=0
    )
    return [
        sampler.sample_batch(BATCH, np.random.default_rng(i))
        for i in range(NUM_BATCHES)
    ]


def _lookup_latency(bag, batches) -> float:
    state = {"i": 0}

    def fwd():
        bag.forward(batches[state["i"] % len(batches)])
        state["i"] += 1

    return measure_median(fwd, repeats=3, warmup=1)


def build_hot_ratio_ablation() -> str:
    batches = _batches()
    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=32, seed=0)
    baseline_latency = _lookup_latency(bag, batches)
    rows = [["(no reorder)", "-", 1.0, round(baseline_latency * 1e3, 2), 1.0]]
    for hot_ratio in HOT_RATIOS:
        bijection = build_bijection(
            batches, NUM_ROWS, hot_ratio=hot_ratio, seed=0
        )
        stats = reuse_improvement(batches, bag.spec.row_shape, bijection)
        reordered = [bijection.apply(b) for b in batches]
        latency = _lookup_latency(bag, reordered)
        rows.append(
            [
                f"{hot_ratio:.3f}",
                int(NUM_ROWS * hot_ratio),
                round(stats["partial_gemm_reduction"], 2),
                round(latency * 1e3, 2),
                round(baseline_latency / latency, 2),
            ]
        )
    return format_table(
        [
            "hot_ratio",
            "pinned rows",
            "partial-GEMM reduction",
            "lookup ms",
            "speedup",
        ],
        rows,
        title=(
            "Ablation: Hot_ratio sweep for locality-based index "
            "reordering (200K-row table, measured lookup latency)"
        ),
    )


def test_bijection_generation_cost(benchmark):
    batches = _batches()

    def generate():
        return build_bijection(batches, NUM_ROWS, hot_ratio=0.01, seed=0)

    bijection = benchmark(generate)
    assert bijection.num_rows == NUM_ROWS


def test_hot_ratio_shapes(benchmark):
    emit("ablation_hot_ratio", run_once(benchmark, build_hot_ratio_ablation))
    batches = _batches()
    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=32, seed=0)
    # moderate hot ratio reorders most of the table and must improve
    # prefix reuse on clustered inputs
    bijection = build_bijection(batches, NUM_ROWS, hot_ratio=0.01, seed=0)
    stats = reuse_improvement(batches, bag.spec.row_shape, bijection)
    assert stats["partial_gemm_reduction"] > 1.0
    # pinning the whole table (hot_ratio -> 1) must degenerate to no
    # change at all
    frozen = build_bijection(batches, NUM_ROWS, hot_ratio=1.0, seed=0)
    frozen_stats = reuse_improvement(batches, bag.spec.row_shape, frozen)
    assert frozen_stats["partial_gemm_reduction"] < stats[
        "partial_gemm_reduction"
    ] * 1.01


if __name__ == "__main__":
    print(build_hot_ratio_ablation())
