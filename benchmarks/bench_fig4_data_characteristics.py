"""Figure 4: characteristics of DLRM training data.

(a) cumulative access percentage of embeddings sorted by popularity —
the power-law skew; (b) average unique indices per batch vs batch size
— the duplication gap exploited by in-advance gradient aggregation.
"""

from __future__ import annotations

import numpy as np

from conftest import emit, run_once
from repro.bench.harness import format_series, format_table
from repro.data.dataloader import (
    SyntheticClickLog,
    cumulative_access_curve,
    unique_index_stats,
)
from repro.data.datasets import avazu_like, criteo_kaggle_like, criteo_tb_like

SCALE = 2e-3
NUM_BATCHES = 16
BATCH_SIZES = (512, 1024, 2048, 4096)


def _largest_table_stream(spec, batch_size, num_batches=NUM_BATCHES):
    log = SyntheticClickLog(spec, batch_size=batch_size, seed=0)
    largest = int(np.argmax([t.num_rows for t in spec.tables]))
    return log.table_index_stream(largest, num_batches), spec.tables[largest]


def build_fig4a() -> str:
    fractions = [0.01, 0.05, 0.10, 0.25, 0.50, 1.00]
    series = {}
    for spec in (
        avazu_like(scale=SCALE),
        criteo_tb_like(scale=SCALE / 10),
        criteo_kaggle_like(scale=SCALE),
    ):
        stream, table = _largest_table_stream(spec, 2048)
        rows, access = cumulative_access_curve(stream, table.num_rows, points=100)
        picks = [access[min(99, int(f * 100) - 1)] * 100 for f in fractions]
        series[spec.name] = [round(p, 1) for p in picks]
    return format_series(
        "Figure 4(a): cumulative access % of embeddings (sorted by popularity)",
        "top rows %",
        [f"{f * 100:.0f}%" for f in fractions],
        series,
    )


def build_fig4b() -> str:
    rows = []
    for spec in (avazu_like(scale=SCALE), criteo_kaggle_like(scale=SCALE)):
        for batch_size in BATCH_SIZES:
            stream, _ = _largest_table_stream(spec, batch_size, 8)
            stats = unique_index_stats(stream)
            rows.append(
                [
                    spec.name,
                    batch_size,
                    round(stats["mean_unique_per_batch"], 1),
                    round(stats["duplication_factor"], 2),
                ]
            )
    return format_table(
        ["dataset", "batch size", "avg unique indices", "duplication factor"],
        rows,
        title="Figure 4(b): unique indices per batch vs batch size",
    )


def test_fig4a_access_skew(benchmark):
    spec = criteo_kaggle_like(scale=SCALE)
    stream, table = _largest_table_stream(spec, 2048)

    def curve():
        return cumulative_access_curve(stream, table.num_rows, points=100)

    rows, access = benchmark(curve)
    # power-law: top 10% of rows must dominate accesses
    assert access[9] > 0.5
    emit("fig4a_access_skew", build_fig4a())


def test_fig4b_unique_gap(benchmark):
    spec = criteo_kaggle_like(scale=SCALE)
    stream, _ = _largest_table_stream(spec, 4096, 8)

    def stats():
        return unique_index_stats(stream)

    result = benchmark(stats)
    # the paper's gap: unique << batch size
    assert result["mean_unique_per_batch"] < 4096
    assert result["duplication_factor"] > 1.2
    emit("fig4b_unique_gap", build_fig4b())


if __name__ == "__main__":
    print(build_fig4a())
    print()
    print(build_fig4b())
