"""Table IV: prediction accuracy of DLRM / TT-Rec / FAE / EL-Rec.

Trains the same DLRM on the same synthetic stream with each framework's
embedding strategy (dense for DLRM and FAE — FAE's caching does not
change the math — TT for TT-Rec, Eff-TT for EL-Rec) and reports test
accuracy.  The paper's claim: TT-based accuracy is within ~0.1pt of the
dense baseline on every dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_SCALE, emit, run_once
from repro.bench.harness import format_table
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import avazu_like, criteo_kaggle_like, criteo_tb_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM

TRAIN_STEPS = 100
BATCH = 256
LR = 0.2
ACCURACY_SCALE = min(BENCH_SCALE, 2e-4)  # accuracy runs train all tables

FRAMEWORK_BACKENDS = [
    ("DLRM", EmbeddingBackend.DENSE),
    ("TT-Rec", EmbeddingBackend.TT),
    ("FAE", EmbeddingBackend.DENSE),
    ("EL-Rec", EmbeddingBackend.EFF_TT),
]


def _train_and_eval(spec, backend: EmbeddingBackend) -> float:
    log = SyntheticClickLog(spec, batch_size=BATCH, seed=0, teacher_strength=3.0)
    # Paper §VI-A: only tables above 1M rows (scaled) are decomposed.
    threshold = max(1, int(1_000_000 * spec.scale))
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=backend, tt_rank=8,
        tt_threshold_rows=threshold,
        bottom_mlp=(32, 16), top_mlp=(32,),
    )
    model = DLRM(cfg, seed=11)
    for i in range(TRAIN_STEPS):
        model.train_step(log.batch(i), lr=LR)
    metrics = model.evaluate([log.batch(50_000 + i) for i in range(8)])
    return metrics["accuracy"] * 100.0


def build_table4() -> str:
    specs = {
        "Avazu": avazu_like(scale=ACCURACY_SCALE),
        "Criteo Terabyte": criteo_tb_like(scale=min(ACCURACY_SCALE, 2e-5)),
        "Criteo Kaggle": criteo_kaggle_like(scale=ACCURACY_SCALE),
    }
    results = {
        name: {
            ds: _train_and_eval(spec, backend) for ds, spec in specs.items()
        }
        for name, backend in FRAMEWORK_BACKENDS
    }
    rows = [
        [name, *(f"{results[name][ds]:.2f}" for ds in specs)]
        for name, _ in FRAMEWORK_BACKENDS
    ]
    return format_table(
        ["Model", *specs.keys()],
        rows,
        title=(
            "Table IV: Test accuracy (%) after "
            f"{TRAIN_STEPS} steps on synthetic streams "
            "(paper: TT methods within 0.1pt of dense)"
        ),
    )


@pytest.mark.parametrize("name,backend", FRAMEWORK_BACKENDS[:2])
def test_table4_train_step_speed(benchmark, name, backend):
    spec = criteo_kaggle_like(scale=ACCURACY_SCALE)
    log = SyntheticClickLog(spec, batch_size=BATCH, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=backend, tt_rank=8,
        bottom_mlp=(32, 16), top_mlp=(32,),
    )
    model = DLRM(cfg, seed=11)
    counter = iter(range(10**9))

    def step():
        return model.train_step(log.batch(next(counter)), lr=LR).loss

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_table4_accuracy_parity(benchmark):
    table = run_once(benchmark, build_table4)
    emit("table4_accuracy", table)
    # parse our own table: dense vs TT gap below 2.5pts at this tiny scale
    lines = [l for l in table.splitlines()[1:] if "|" in l][1:]
    values = {
        line.split("|")[0].strip(): [
            float(v) for v in line.split("|")[1:]
        ]
        for line in lines
    }
    for ds_idx in range(3):
        dense = values["DLRM"][ds_idx]
        for name in ("TT-Rec", "EL-Rec"):
            assert abs(values[name][ds_idx] - dense) < 2.5


if __name__ == "__main__":
    print(build_table4())
