"""Ablation: prefetch-queue depth in the pipelined trainer (§V-A).

The paper contrasts depth 1 ("EL-Rec (Sequential)") with a pipelined
configuration but does not sweep the depth.  This ablation runs the
event-driven pipeline simulation across depths, showing the classic
saturation curve: depth 1 serializes, depth 2-3 captures most of the
overlap, deeper queues only buy straggler absorption — while the
embedding-cache footprint (LC = Q + D) grows linearly.

The functional check confirms numerical equivalence holds at *every*
depth (the embedding cache guarantee is depth-independent).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.system.simclock import simulate_pipeline_trace

DEPTHS = (1, 2, 3, 4, 8)
NUM_BATCHES = 256
# Stage times shaped like the measured Figure 16 workload: CPU-heavy
# with meaningful transfer and GPU stages, plus cold-batch stragglers.
CPU_MEAN, PCIE_MEAN, GPU_MEAN = 0.010, 0.004, 0.008


def _stage_times(seed: int = 0):
    rng = np.random.default_rng(seed)
    cpu = rng.normal(CPU_MEAN, CPU_MEAN * 0.1, NUM_BATCHES).clip(min=1e-4)
    # 5% straggler batches: cold rows triple the CPU gather time
    stragglers = rng.random(NUM_BATCHES) < 0.05
    cpu[stragglers] *= 3.0
    pcie = rng.normal(PCIE_MEAN, PCIE_MEAN * 0.05, NUM_BATCHES).clip(min=1e-5)
    gpu = rng.normal(GPU_MEAN, GPU_MEAN * 0.05, NUM_BATCHES).clip(min=1e-4)
    return cpu, pcie, gpu


def build_depth_ablation() -> str:
    cpu, pcie, gpu = _stage_times()
    sequential = float(cpu.sum() + pcie.sum() + gpu.sum())
    rows = []
    for depth in DEPTHS:
        trace = simulate_pipeline_trace(cpu, pcie, gpu, prefetch_depth=depth)
        rows.append(
            [
                depth,
                round(trace.makespan, 3),
                round(sequential / trace.makespan, 2),
                round(trace.stage_utilization["cpu"], 2),
                round(trace.stage_utilization["gpu"], 2),
                trace.max_prefetch_occupancy,
            ]
        )
    return format_table(
        [
            "prefetch depth",
            "makespan s",
            "speedup vs sequential",
            "CPU util",
            "GPU util",
            "max in-flight",
        ],
        rows,
        title=(
            "Ablation: prefetch-queue depth "
            f"({NUM_BATCHES} batches, 5% CPU stragglers)"
        ),
    )


def test_depth_simulation_speed(benchmark):
    cpu, pcie, gpu = _stage_times()

    def run():
        return simulate_pipeline_trace(cpu, pcie, gpu, prefetch_depth=4)

    trace = benchmark(run)
    assert trace.makespan > 0


def test_depth_ablation_shapes(benchmark):
    emit("ablation_prefetch_depth", run_once(benchmark, build_depth_ablation))
    cpu, pcie, gpu = _stage_times()
    makespans = [
        simulate_pipeline_trace(cpu, pcie, gpu, prefetch_depth=d).makespan
        for d in DEPTHS
    ]
    # deeper queues never hurt
    assert all(a >= b - 1e-9 for a, b in zip(makespans, makespans[1:]))
    # depth >= 2 clearly beats the serialized depth-1 configuration
    assert makespans[1] < makespans[0] * 0.75
    # diminishing returns: going 4 -> 8 buys far less than 1 -> 2
    gain_1_2 = makespans[0] - makespans[1]
    gain_4_8 = makespans[3] - makespans[4]
    assert gain_4_8 < gain_1_2 * 0.5


if __name__ == "__main__":
    print(build_depth_ablation())
