"""Figure 14: Eff-TT optimization breakdown.

Trains a single embedding table (2.5M / 5M / 10M rows in the paper;
scaled stand-ins here) with each optimization disabled in turn and
reports the training-throughput ratio against the fully-optimized
Eff-TT table.  All numbers are real measured kernel times.

Expected shape (paper): disabling in-advance gradient aggregation hurts
most (~52% throughput drop); disabling reuse or reordering costs ~10%.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.synthetic import ClusteredZipfSampler
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.reorder.bijection import build_bijection
from repro.utils.timer import measure_median

TABLE_ROWS = (250_000, 500_000, 1_000_000)  # paper: 2.5M / 5M / 10M
DIM = 32
BATCH = 4096
TT_RANK = 32
LR = 0.01

CONFIGS = [
    ("Eff-TT (all opts)", {}, True),
    ("w/o grad aggregation", {"enable_grad_aggregation": False}, True),
    ("w/o result reuse", {"enable_reuse": False}, True),
    ("w/o fused update", {"enable_fused_update": False}, True),
    ("w/o index reordering", {}, False),
]


def _batches(num_rows, reorder: bool, num_batches=4):
    """Clustered power-law batches, optionally locality-reordered."""
    sampler = ClusteredZipfSampler(
        num_rows, alpha=1.05, locality=0.5,
        cluster_size=max(64, num_rows // 512), seed=0,
    )
    batches = [
        sampler.sample_batch(BATCH, np.random.default_rng(i))
        for i in range(num_batches)
    ]
    if not reorder:
        return batches
    # The offline bijection (paper §IV-C): built once from a training
    # sample, applied to every batch.
    bijection = build_bijection(batches, num_rows, hot_ratio=0.001, seed=0)
    return [bijection.apply(b) for b in batches]


def _throughputs(num_rows: int, configs) -> dict:
    """Interleaved A/B measurement of all configurations.

    Sequential per-config timing is biased by allocator warm-up and CPU
    frequency drift; round-robin interleaving gives every config the
    same environment.
    """
    import time

    grad = np.random.default_rng(9).standard_normal((BATCH, DIM))
    contexts = {}
    for label, flags, reorder in configs:
        bag = EffTTEmbeddingBag(
            num_rows, DIM, tt_rank=TT_RANK, seed=0, **flags
        )
        contexts[label] = (bag, _batches(num_rows, reorder), {"i": 0})
    samples = {label: [] for label in contexts}
    for rep in range(6):
        for label, (bag, batches, state) in contexts.items():
            idx = batches[state["i"] % len(batches)]
            state["i"] += 1
            start = time.perf_counter()
            bag.forward(idx)
            bag.backward(grad)
            bag.step(LR)
            elapsed = time.perf_counter() - start
            if rep > 0:  # first round is warm-up
                samples[label].append(elapsed)
    # min-of-k: the standard contention-robust latency estimator
    return {
        label: BATCH / float(min(times))
        for label, times in samples.items()
    }


def _throughput(num_rows: int, flags: dict, reorder: bool) -> float:
    """Single-config convenience wrapper around :func:`_throughputs`."""
    return _throughputs(num_rows, [("x", flags, reorder)])["x"]


def build_fig14() -> str:
    rows = []
    for num_rows in TABLE_ROWS:
        throughputs = _throughputs(num_rows, CONFIGS)
        base = throughputs["Eff-TT (all opts)"]
        for label, _flags, _reorder in CONFIGS:
            tput = throughputs[label]
            rows.append(
                [
                    f"{num_rows:,}",
                    label,
                    f"{tput / 1e3:.1f}K",
                    f"{tput / base * 100:.0f}%",
                ]
            )
    return format_table(
        ["table rows", "configuration", "samples/s", "relative throughput"],
        rows,
        title=(
            "Figure 14: Eff-TT optimization breakdown (real measured "
            "training throughput of one table).  Note: the fused-update "
            "gain is kernel-launch-overhead dominated and therefore "
            "visible in the device model, not in host wall-clock."
        ),
    )


def test_fig14_grad_aggregation_dominates(benchmark):
    num_rows = TABLE_ROWS[0]
    bag = EffTTEmbeddingBag(num_rows, DIM, tt_rank=TT_RANK, seed=0)
    batches = _batches(num_rows, True)
    grad = np.random.default_rng(9).standard_normal((BATCH, DIM))

    def cycle():
        bag.forward(batches[0])
        bag.backward(grad)
        bag.step(LR)

    benchmark(cycle)


def test_fig14_shapes(benchmark):
    table = run_once(benchmark, build_fig14)
    emit("fig14_breakdown", table)
    num_rows = TABLE_ROWS[0]
    throughputs = _throughputs(num_rows, CONFIGS)
    base = throughputs["Eff-TT (all opts)"]
    # gradient aggregation is the dominant optimization (paper: ~52%
    # throughput drop when disabled)
    assert throughputs["w/o grad aggregation"] < base * 0.85
    # reuse never hurts
    assert throughputs["w/o result reuse"] < base * 1.05
    # fused update is launch-bound: host wall-clock is within noise
    assert 0.7 < throughputs["w/o fused update"] / base < 1.4


if __name__ == "__main__":
    print(build_fig14())
