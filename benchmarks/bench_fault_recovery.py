"""Extension: fault-recovery cost vs checkpoint interval.

The checkpoint interval is the classic recovery trade-off: frequent
snapshots cost write bandwidth but bound how much work a crash throws
away; sparse snapshots are cheap until something fails.  This bench
runs the deterministic chaos harness (real PS-pipeline numerics,
injected crashes, simulated backoff) across a grid of intervals and
fault positions and reports the replay/backoff bill for each — all
while asserting the recovered loss trajectory stays bitwise identical
to the uninterrupted run.

Marked ``chaos_slow`` (each cell is a full supervised training run):
excluded from default pytest runs; invoke with ``pytest benchmarks -m
chaos_slow`` or run the module directly.
"""

from __future__ import annotations

import tempfile

import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.resilience.chaos import ChaosHarnessConfig, _build_harness
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    FaultProbe,
    FaultSite,
    FaultSpec,
)
from repro.resilience.supervisor import PipelineSupervisor, RetryPolicy

NUM_BATCHES = 24
INTERVALS = (2, 4, 8)
# One early crash, one late crash: the late one is where a sparse
# interval hurts (everything since the last snapshot is replayed).
CRASH_STEPS = (5, 21)


def build_fault_recovery_table() -> str:
    config = ChaosHarnessConfig(num_batches=NUM_BATCHES)
    _, log, factory = _build_harness(config)

    reference = factory(None)
    ref_losses = [float(x) for x in reference.train(log, NUM_BATCHES).losses]

    plan = FaultPlan(
        name="interval-sweep",
        specs=tuple(
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=step)
            for step in CRASH_STEPS
        ),
        seed=21,
    )

    rows = []
    for interval in INTERVALS:
        injector = plan.injector()
        probe = FaultProbe(injector)
        with tempfile.TemporaryDirectory() as scratch:
            store = CheckpointStore(scratch, keep_last=8, injector=injector)
            supervisor = PipelineSupervisor(
                factory, store, probe, RetryPolicy(seed=plan.seed)
            )
            report = supervisor.run(log, NUM_BATCHES, interval)
            snapshots = len(store.steps())
        bitwise = report.losses == ref_losses
        rows.append(
            [
                interval,
                snapshots,
                report.restarts,
                report.replayed_batches,
                f"{report.replayed_batches / NUM_BATCHES:.0%}",
                f"{report.total_backoff * 1e3:.1f}",
                "yes" if bitwise else "NO",
            ]
        )
        assert bitwise, f"interval {interval}: recovery diverged"
    return format_table(
        [
            "ckpt interval",
            "snapshots kept",
            "restarts",
            "replayed batches",
            "replay overhead",
            "backoff ms",
            "bitwise recovery",
        ],
        rows,
        title=(
            "Fault-recovery cost vs checkpoint interval "
            f"({NUM_BATCHES} batches, crashes at steps {CRASH_STEPS}, "
            "PS pipeline + Eff-TT)"
        ),
    )


@pytest.mark.chaos_slow
def test_fault_recovery_sweep(benchmark):
    emit("fault_recovery", run_once(benchmark, build_fault_recovery_table))


@pytest.mark.chaos_slow
def test_shorter_interval_replays_less():
    """A tighter checkpoint cadence must strictly reduce replayed work."""
    config = ChaosHarnessConfig(num_batches=NUM_BATCHES)
    _, log, factory = _build_harness(config)
    plan = FaultPlan(
        name="late-crash",
        specs=(FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=21),),
        seed=3,
    )

    def replayed(interval: int) -> int:
        injector = plan.injector()
        probe = FaultProbe(injector)
        with tempfile.TemporaryDirectory() as scratch:
            store = CheckpointStore(scratch, keep_last=8, injector=injector)
            supervisor = PipelineSupervisor(
                factory, store, probe, RetryPolicy(seed=plan.seed)
            )
            return supervisor.run(
                log, NUM_BATCHES, interval
            ).replayed_batches

    assert replayed(2) < replayed(8)


if __name__ == "__main__":
    print(build_fault_recovery_table())
