"""Table II: dataset details.

Regenerates the dataset-statistics table from the specs (full scale)
and benchmarks batch generation throughput of the synthetic click-log
stream at the benchmark scale.
"""

from __future__ import annotations

from conftest import BENCH_BATCH, BENCH_SCALE, emit
from repro.bench.harness import format_table
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import avazu_like, criteo_kaggle_like, criteo_tb_like


def build_table2() -> str:
    rows = []
    for spec in (avazu_like(), criteo_tb_like(), criteo_kaggle_like()):
        info = spec.describe()
        rows.append(
            [
                info["dataset"],
                info["days"],
                f"{info['samples']:,}",
                info["dense_features"],
                info["sparse_features"],
                f"{info['total_rows']:,}",
                f"{spec.embedding_footprint_bytes(64) / 1e9:.1f}",
            ]
        )
    return format_table(
        [
            "Dataset",
            "Days",
            "Samples",
            "Dense feats",
            "Sparse feats",
            "Total rows",
            "Emb. GB (dim 64, fp32)",
        ],
        rows,
        title="Table II: Details of the datasets (full-scale schema)",
    )


def test_table2_dataset_stats(benchmark, dataset_specs):
    spec = dataset_specs["criteo-kaggle"]
    log = SyntheticClickLog(spec, batch_size=BENCH_BATCH, seed=0)
    counter = iter(range(10**9))

    def make_batch():
        return log.batch(next(counter))

    batch = benchmark(make_batch)
    assert batch.batch_size == BENCH_BATCH
    emit("table2_datasets", build_table2())


if __name__ == "__main__":
    print(build_table2())
