"""Table III: embedding-table memory saving from Eff-TT compression.

For each dataset (full-scale schema): the dense fp32 footprint, the
EL-Rec footprint (tables >1M rows TT-compressed at the paper's ranks,
small tables kept dense), and the compression ratio.  Benchmarks the
placement planning itself (TT shape selection over all 26 tables).
"""

from __future__ import annotations

from conftest import emit
from repro.bench.harness import format_table
from repro.data.datasets import avazu_like, criteo_kaggle_like, criteo_tb_like
from repro.system.devices import TESLA_V100
from repro.system.memory import PlacementDecision, plan_placement

EMBEDDING_DIM = 64
TT_RANK = 128  # paper's V100 setting
TT_THRESHOLD = 1_000_000


def build_table3() -> str:
    rows = []
    for spec in (avazu_like(), criteo_tb_like(), criteo_kaggle_like()):
        table_rows = [t.num_rows for t in spec.tables]
        dense_gb = spec.embedding_footprint_bytes(EMBEDDING_DIM) / 1e9
        plan = plan_placement(
            table_rows,
            EMBEDDING_DIM,
            TESLA_V100,
            tt_rank=TT_RANK,
            tt_threshold_rows=TT_THRESHOLD,
            hbm_fraction=1.0,
        )
        compressed_bytes = sum(p.nbytes for p in plan.placements)
        rows.append(
            [
                spec.name,
                f"{dense_gb:.2f}",
                f"{compressed_bytes / 1e9:.4f}",
                f"{dense_gb * 1e9 / compressed_bytes:.1f}x",
                len(plan.tt_tables),
                "yes" if compressed_bytes <= TESLA_V100.hbm_bytes else "no",
            ]
        )
    return format_table(
        [
            "Dataset",
            "Dense GB (fp32)",
            "EL-Rec GB",
            "Compression",
            "TT tables",
            "Fits 16GB HBM",
        ],
        rows,
        title=(
            f"Table III: Embedding footprint, dim={EMBEDDING_DIM}, "
            f"TT rank={TT_RANK}, threshold={TT_THRESHOLD:,} rows"
        ),
    )


def test_table3_compression(benchmark):
    spec = criteo_tb_like()
    table_rows = [t.num_rows for t in spec.tables]

    def plan():
        return plan_placement(
            table_rows,
            EMBEDDING_DIM,
            TESLA_V100,
            tt_rank=TT_RANK,
            tt_threshold_rows=TT_THRESHOLD,
            hbm_fraction=1.0,
        )

    result = benchmark(plan)
    # the paper's claim: the largest public DLRM dataset fits one GPU
    assert all(
        p.decision is not PlacementDecision.HOST_DENSE for p in result.placements
    )
    emit("table3_compression", build_table3())


if __name__ == "__main__":
    print(build_table3())


# ---------------------------------------------------------------------------
# Strategy x budget matrix (beyond the paper: the full compression zoo).
#
# For every strategy the auto-tuner supports and a sweep of byte
# budgets (fractions of the dense fp64 footprint), plan the full-scale
# Criteo-Kaggle schema and report planned bytes, compression ratio,
# and feasibility; then train a scaled-down DLRM from each plan and
# report the realized footprint and final loss against dense.  Run
# with `pytest benchmarks -m compress_slow`.
# ---------------------------------------------------------------------------

import pytest

MATRIX_STRATEGIES = ("tt", "hash", "robe", "pq", "auto")
MATRIX_FRACTIONS = (0.5, 0.1, 0.02)


def build_strategy_budget_matrix() -> str:
    from repro.embeddings.autotune import plan_compression
    from repro.sharding.trainer import analytic_table_stats

    spec = criteo_kaggle_like()
    stats = analytic_table_stats([t.num_rows for t in spec.tables])
    dense_bytes = sum(s.num_rows for s in stats) * EMBEDDING_DIM * 8
    rows = []
    for strategy in MATRIX_STRATEGIES:
        for fraction in MATRIX_FRACTIONS:
            budget = int(dense_bytes * fraction)
            plan = plan_compression(
                stats, EMBEDDING_DIM, budget, strategy=strategy
            )
            counts = ", ".join(
                f"{k}:{v}" for k, v in sorted(plan.strategy_counts().items())
            )
            rows.append(
                [
                    strategy,
                    f"{fraction:.0%}",
                    f"{plan.total_bytes / 1e9:.4f}",
                    f"{plan.dense_total_bytes / max(1, plan.total_bytes):.1f}x",
                    "yes" if plan.feasible else "NO",
                    counts,
                ]
            )
    return format_table(
        ["Strategy", "Budget", "Planned GB", "Ratio", "Feasible", "Tables"],
        rows,
        title=(
            f"Compression strategy x budget matrix, "
            f"criteo-kaggle full schema, dim={EMBEDDING_DIM} (fp64)"
        ),
    )


@pytest.mark.compress_slow
def test_strategy_budget_matrix_plans():
    from repro.embeddings.autotune import plan_compression
    from repro.sharding.trainer import analytic_table_stats

    spec = criteo_kaggle_like()
    stats = analytic_table_stats([t.num_rows for t in spec.tables])
    dense_bytes = sum(s.num_rows for s in stats) * EMBEDDING_DIM * 8
    for strategy in MATRIX_STRATEGIES:
        for fraction in MATRIX_FRACTIONS:
            budget = int(dense_bytes * fraction)
            plan = plan_compression(
                stats, EMBEDDING_DIM, budget, strategy=strategy
            )
            if plan.feasible:
                assert plan.total_bytes <= budget, (strategy, fraction)
    emit("strategy_budget_matrix", build_strategy_budget_matrix())


@pytest.mark.compress_slow
def test_strategy_budget_matrix_training():
    from repro.data.dataloader import SyntheticClickLog
    from repro.embeddings.autotune import build_bag_from_plan, plan_compression
    from repro.models.config import DLRMConfig, EmbeddingBackend
    from repro.models.dlrm import DLRM
    from repro.sharding.trainer import analytic_table_stats
    from repro.utils.rng import spawn_rngs

    spec = criteo_kaggle_like(scale=2e-4)
    log = SyntheticClickLog(spec, batch_size=128, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.DENSE,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    stats = analytic_table_stats(list(cfg.table_rows))
    dense_bytes = sum(s.num_rows for s in stats) * cfg.embedding_dim * 8

    def run(bags):
        model = DLRM(cfg, seed=0, embedding_bags=bags)
        loss = 0.0
        for i in range(20):
            loss = model.train_step(log.batch(i), lr=0.1).loss
        return float(loss)

    dense_loss = run(None)
    rows = [["dense", "-", f"{dense_bytes / 1e6:.3f}", f"{dense_loss:.4f}"]]
    for strategy in MATRIX_STRATEGIES:
        for fraction in MATRIX_FRACTIONS:
            budget = int(dense_bytes * fraction)
            plan = plan_compression(
                stats, cfg.embedding_dim, budget, strategy=strategy
            )
            if not plan.feasible:
                rows.append(
                    [strategy, f"{fraction:.0%}", "infeasible", "-"]
                )
                continue
            rngs = spawn_rngs(0, len(plan.tables))
            bags = [
                build_bag_from_plan(entry, cfg.embedding_dim, seed=rng)
                for entry, rng in zip(plan.tables, rngs)
            ]
            realized = sum(b.memory_bytes() for b in bags)
            assert realized <= budget, (strategy, fraction)
            loss = run(bags)
            rows.append(
                [
                    strategy,
                    f"{fraction:.0%}",
                    f"{realized / 1e6:.3f}",
                    f"{loss:.4f}",
                ]
            )
    emit(
        "strategy_budget_training",
        format_table(
            ["Strategy", "Budget", "Realized MB", "Final loss"],
            rows,
            title=(
                "Training under compression: 20 steps, "
                "criteo-kaggle scale=2e-4, dim=8"
            ),
        ),
    )
