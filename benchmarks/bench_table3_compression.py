"""Table III: embedding-table memory saving from Eff-TT compression.

For each dataset (full-scale schema): the dense fp32 footprint, the
EL-Rec footprint (tables >1M rows TT-compressed at the paper's ranks,
small tables kept dense), and the compression ratio.  Benchmarks the
placement planning itself (TT shape selection over all 26 tables).
"""

from __future__ import annotations

from conftest import emit
from repro.bench.harness import format_table
from repro.data.datasets import avazu_like, criteo_kaggle_like, criteo_tb_like
from repro.system.devices import TESLA_V100
from repro.system.memory import PlacementDecision, plan_placement

EMBEDDING_DIM = 64
TT_RANK = 128  # paper's V100 setting
TT_THRESHOLD = 1_000_000


def build_table3() -> str:
    rows = []
    for spec in (avazu_like(), criteo_tb_like(), criteo_kaggle_like()):
        table_rows = [t.num_rows for t in spec.tables]
        dense_gb = spec.embedding_footprint_bytes(EMBEDDING_DIM) / 1e9
        plan = plan_placement(
            table_rows,
            EMBEDDING_DIM,
            TESLA_V100,
            tt_rank=TT_RANK,
            tt_threshold_rows=TT_THRESHOLD,
            hbm_fraction=1.0,
        )
        compressed_bytes = sum(p.nbytes for p in plan.placements)
        rows.append(
            [
                spec.name,
                f"{dense_gb:.2f}",
                f"{compressed_bytes / 1e9:.4f}",
                f"{dense_gb * 1e9 / compressed_bytes:.1f}x",
                len(plan.tt_tables),
                "yes" if compressed_bytes <= TESLA_V100.hbm_bytes else "no",
            ]
        )
    return format_table(
        [
            "Dataset",
            "Dense GB (fp32)",
            "EL-Rec GB",
            "Compression",
            "TT tables",
            "Fits 16GB HBM",
        ],
        rows,
        title=(
            f"Table III: Embedding footprint, dim={EMBEDDING_DIM}, "
            f"TT rank={TT_RANK}, threshold={TT_THRESHOLD:,} rows"
        ),
    )


def test_table3_compression(benchmark):
    spec = criteo_tb_like()
    table_rows = [t.num_rows for t in spec.tables]

    def plan():
        return plan_placement(
            table_rows,
            EMBEDDING_DIM,
            TESLA_V100,
            tt_rank=TT_RANK,
            tt_threshold_rows=TT_THRESHOLD,
            hbm_fraction=1.0,
        )

    result = benchmark(plan)
    # the paper's claim: the largest public DLRM dataset fits one GPU
    assert all(
        p.decision is not PlacementDecision.HOST_DENSE for p in result.placements
    )
    emit("table3_compression", build_table3())


if __name__ == "__main__":
    print(build_table3())
