"""Figure 12: training throughput under the multi-GPU setting.

EL-Rec replicates Eff-TT tables and trains data-parallel; DLRM shards
dense tables model-parallel.  The paper's shape: EL-Rec (4 GPU) beats
DLRM (4 GPU) by ~1.4x; with 1 GPU, DLRM (when it fits) is slightly
faster than EL-Rec because tensorization adds compute.

Also runs the *functional* data-parallel trainer to validate that the
simulated configuration actually trains (replicas stay synchronized).
"""

from __future__ import annotations

import numpy as np

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.frameworks import DlrmPS, ELRec
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.system.devices import TESLA_V100
from repro.system.multi_gpu import DataParallelTrainer

GPU_COUNTS = (1, 4)


def build_fig12(cost_model, workload_profiles) -> str:
    rows = []
    for name, profile in workload_profiles.items():
        for num_gpus in GPU_COUNTS:
            for F in (DlrmPS, ELRec):
                fw = F(cost_model)
                if num_gpus == 1 and F is DlrmPS:
                    # single-GPU DLRM in Figure 12 is the pure-GPU dense
                    # variant (the dataset fits after scaling); model it
                    # as the all-on-GPU hot path.
                    gpu_lookup = cost_model.scale_memory(
                        profile.host_dense_emb_time, TESLA_V100
                    )
                    gpu_mlp = cost_model.scale_compute(
                        profile.host_mlp_time, TESLA_V100
                    )
                    total = gpu_lookup + gpu_mlp
                    feasible = fw.fits_single_gpu(profile, TESLA_V100)
                else:
                    bd = fw.iteration_time(profile, TESLA_V100, num_gpus=num_gpus)
                    total = bd.total
                    feasible = bd.feasible
                throughput = (
                    num_gpus * profile.batch_size / total if feasible else 0.0
                )
                rows.append(
                    [
                        name,
                        fw.name,
                        num_gpus,
                        round(total * 1e3, 3) if feasible else "n/a",
                        f"{throughput / 1e3:.1f}K" if feasible else "OOM",
                    ]
                )
    return format_table(
        ["dataset", "framework", "GPUs", "iter ms", "samples/s"],
        rows,
        title="Figure 12: training throughput, 1 vs 4 GPUs (V100 model)",
    )


def test_fig12_functional_data_parallel(benchmark):
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=64, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    dp = DataParallelTrainer(cfg, num_replicas=4, seed=0)
    counter = iter(range(10**9))

    def step():
        return dp.train_step(log.batch(next(counter)), lr=0.05)

    loss = benchmark(step)
    assert np.isfinite(loss)
    assert dp.replicas_synchronized()


def test_fig12_shapes(benchmark, cost_model, workload_profiles):
    emit("fig12_multi_gpu", run_once(benchmark, lambda: build_fig12(cost_model, workload_profiles)))
    for name, profile in workload_profiles.items():
        el = ELRec(cost_model)
        dl = DlrmPS(cost_model)
        el4 = el.iteration_time(profile, TESLA_V100, num_gpus=4)
        dl4 = dl.iteration_time(profile, TESLA_V100, num_gpus=4)
        # EL-Rec 4-GPU beats hybrid-parallel DLRM 4-GPU (paper: ~1.4x)
        assert el4.total < dl4.total, name
        # scaling: 4 GPUs give more throughput than 1
        el1 = el.iteration_time(profile, TESLA_V100, num_gpus=1)
        assert 4 * profile.batch_size / el4.total > profile.batch_size / el1.total


if __name__ == "__main__":
    from repro.bench.harness import measure_workload
    from repro.data.datasets import avazu_like, criteo_tb_like
    from repro.system.devices import KernelCostModel

    profiles = {
        spec.name: measure_workload(spec, batch_size=2048, embedding_dim=32,
                                    tt_rank=32)
        for spec in (
            avazu_like(scale=2e-3),
            criteo_kaggle_like(scale=2e-3),
            criteo_tb_like(scale=2e-3),
        )
    }
    print(build_fig12(KernelCostModel(), profiles))
