"""Shared fixtures for the per-figure/table benchmarks.

Scale notes: every benchmark runs the *real* substrate kernels on
scaled-down tables (the schema and skew of the paper's datasets are
preserved; cardinalities shrink by ``BENCH_SCALE``).  End-to-end system
numbers are composed from these measurements by the framework cost
models (see DESIGN.md §2 for why relative results are preserved).

Each benchmark writes the paper-style table/series it reproduces to
``benchmarks/results/<name>.txt`` and prints it (visible with
``pytest -s`` or by running the module directly).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import measure_workload
from repro.data.datasets import avazu_like, criteo_kaggle_like, criteo_tb_like
from repro.system.devices import KernelCostModel

# One global scale keeps all benchmarks consistent and fast.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2e-3"))
BENCH_BATCH = int(os.environ.get("REPRO_BENCH_BATCH", "2048"))
BENCH_DIM = int(os.environ.get("REPRO_BENCH_DIM", "32"))
BENCH_TT_RANK = int(os.environ.get("REPRO_BENCH_TT_RANK", "32"))

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a paper-style table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def run_once(benchmark, fn):
    """Run a figure-builder exactly once under pytest-benchmark.

    Figure/table builders are full experiments (they *contain* repeated
    kernel measurements), so the benchmark harness should invoke them a
    single time and report that wall time rather than re-calibrating.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def cost_model():
    return KernelCostModel()


@pytest.fixture(scope="session")
def dataset_specs():
    return {
        "avazu": avazu_like(scale=BENCH_SCALE),
        "criteo-kaggle": criteo_kaggle_like(scale=BENCH_SCALE),
        "criteo-tb": criteo_tb_like(scale=BENCH_SCALE),
    }


@pytest.fixture(scope="session")
def workload_profiles(dataset_specs):
    """Measured kernel profiles for all three datasets (reused across
    benchmarks; measuring is the expensive part)."""
    return {
        name: measure_workload(
            spec,
            batch_size=BENCH_BATCH,
            embedding_dim=BENCH_DIM,
            tt_rank=BENCH_TT_RANK,
            repeats=3,
        )
        for name, spec in dataset_specs.items()
    }
