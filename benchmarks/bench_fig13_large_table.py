"""Figure 13: single very large embedding table (40M rows x dim 128).

The paper's stress test: a ~19 GB dense table exceeds one 16 GB GPU, so
HugeCTR must shard rows and TorchRec must shard columns across GPUs,
paying per-iteration collectives, while EL-Rec TT-compresses the table
onto every GPU and trains data-parallel with only a gradient AllReduce.

The substrate measurement uses a 1M-row stand-in (kernels are
batch-size bound, not table-size bound); feasibility and communication
use the true 40M-row footprint.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit, run_once
from repro.bench.harness import format_table
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.frameworks import ELRec, HugeCTR, TorchRec, WorkloadProfile
from repro.system.devices import TESLA_V100
from repro.utils.timer import measure_median

ROWS_FULL = 40_000_000
ROWS_MEASURE = 1_000_000
DIM = 128
BATCH = 4096
TT_RANK = 64
GPU_COUNTS = (1, 2, 4)


def _measure_profile() -> WorkloadProfile:
    rng = np.random.default_rng(0)
    # power-law indices over the measured stand-in table
    from repro.data.synthetic import ZipfSampler

    sampler = ZipfSampler(ROWS_MEASURE, alpha=1.05, seed=0)
    idx = sampler.sample(BATCH, rng)
    grad = rng.standard_normal((BATCH, DIM))

    eff = EffTTEmbeddingBag(ROWS_MEASURE, DIM, tt_rank=TT_RANK, seed=0)
    tt = TTEmbeddingBag(ROWS_MEASURE, DIM, tt_rank=TT_RANK, seed=0)

    def eff_fwd():
        eff.forward(idx)

    def eff_cycle():
        eff.forward(idx)
        eff.backward_and_step(grad, 0.01)

    def tt_fwd():
        tt.forward(idx)

    def tt_cycle():
        tt.forward(idx)
        tt.backward(grad)
        tt.step(0.01)

    t_eff_fwd = measure_median(eff_fwd, repeats=3)
    t_eff_cycle = measure_median(eff_cycle, repeats=3)
    t_tt_fwd = measure_median(tt_fwd, repeats=3)
    t_tt_cycle = measure_median(tt_cycle, repeats=3)

    # dense gather+update time for the sharded baselines (memory-bound)
    table = np.zeros((ROWS_MEASURE, DIM), dtype=np.float32)

    def dense_cycle():
        rows = table[idx]
        np.add.at(table, idx, rows * 1e-9)

    t_dense = measure_median(dense_cycle, repeats=3)

    # the 40M-row TT footprint for feasibility/communication, and the
    # analytic FLOP counts at the *full* cardinality (at 40M rows a 4K
    # batch has essentially no duplicate indices, so reuse statistics
    # are computed on a representative full-size plan).
    from repro.data.synthetic import ZipfSampler as _ZS
    from repro.embeddings.flops import plan_backward_flops, plan_forward_flops
    from repro.embeddings.reuse_buffer import build_reuse_plan

    full_spec = EffTTEmbeddingBag(ROWS_FULL, DIM, tt_rank=TT_RANK, seed=0).spec
    full_idx = _ZS(ROWS_FULL, alpha=1.05, seed=1).sample(
        BATCH, np.random.default_rng(2)
    )
    full_plan = build_reuse_plan(full_idx, full_spec.row_shape)
    return WorkloadProfile(
        name="40M-table",
        batch_size=BATCH,
        embedding_dim=DIM,
        table_rows=(ROWS_FULL,),
        indices_per_batch=BATCH,
        host_mlp_time=1e-9,  # single-table experiment: no MLP
        host_dense_emb_time=t_dense,
        host_tt_fwd_time=t_tt_fwd,
        host_tt_bwd_time=max(t_tt_cycle - t_tt_fwd, 1e-9),
        host_efftt_fwd_time=t_eff_fwd,
        host_efftt_bwd_time=max(t_eff_cycle - t_eff_fwd, 1e-9),
        tt_param_bytes=full_spec.num_params * 4,
        tt_kernel_launches=8,
        efftt_kernel_launches=3,
        tt_gflops_fwd=plan_forward_flops(full_spec, full_plan, reuse=False)
        / 1e9,
        tt_gflops_bwd=plan_backward_flops(full_spec, full_plan, aggregate=False)
        / 1e9,
        efftt_gflops_fwd=plan_forward_flops(full_spec, full_plan, reuse=True)
        / 1e9,
        efftt_gflops_bwd=plan_backward_flops(
            full_spec, full_plan, aggregate=True
        )
        / 1e9,
    )


@pytest.fixture(scope="module")
def large_profile():
    return _measure_profile()


def build_fig13(cost_model, profile) -> str:
    rows = []
    for num_gpus in GPU_COUNTS:
        for F in (HugeCTR, TorchRec, ELRec):
            bd = F(cost_model).iteration_time(profile, TESLA_V100, num_gpus)
            throughput = (
                num_gpus * profile.batch_size / bd.total if bd.feasible else 0.0
            )
            rows.append(
                [
                    F.name,
                    num_gpus,
                    round(bd.total * 1e3, 3) if bd.feasible else "n/a",
                    f"{throughput / 1e3:.1f}K" if bd.feasible else "OOM",
                ]
            )
    return format_table(
        ["framework", "GPUs", "iter ms", "samples/s"],
        title=(
            "Figure 13: single 40M x 128 embedding table training "
            "throughput (dense table = 19.5 GB > 16 GB HBM)"
        ),
        rows=rows,
    )


def test_fig13_efftt_large_table_kernel(benchmark):
    rng = np.random.default_rng(1)
    from repro.data.synthetic import ZipfSampler

    sampler = ZipfSampler(ROWS_MEASURE, alpha=1.05, seed=0)
    idx = sampler.sample(BATCH, rng)
    grad = rng.standard_normal((BATCH, DIM))
    bag = EffTTEmbeddingBag(ROWS_MEASURE, DIM, tt_rank=TT_RANK, seed=0)

    def cycle():
        bag.forward(idx)
        bag.backward_and_step(grad, 0.01)

    benchmark(cycle)


def test_fig13_shapes(benchmark, cost_model, large_profile):
    emit("fig13_large_table", run_once(benchmark, lambda: build_fig13(cost_model, large_profile)))
    # 1 GPU: only EL-Rec feasible
    hc1 = HugeCTR(cost_model).iteration_time(large_profile, TESLA_V100, 1)
    tr1 = TorchRec(cost_model).iteration_time(large_profile, TESLA_V100, 1)
    el1 = ELRec(cost_model).iteration_time(large_profile, TESLA_V100, 1)
    assert not hc1.feasible and not tr1.feasible
    assert el1.feasible
    # 4 GPUs: paper reports EL-Rec at 1.07x over HugeCTR (near parity)
    # and 1.35x over TorchRec.  We pin: clearly ahead of TorchRec,
    # within the parity band of HugeCTR.
    el4 = ELRec(cost_model).iteration_time(large_profile, TESLA_V100, 4)
    hc4 = HugeCTR(cost_model).iteration_time(large_profile, TESLA_V100, 4)
    tr4 = TorchRec(cost_model).iteration_time(large_profile, TESLA_V100, 4)
    assert el4.total < tr4.total
    assert 0.7 < hc4.total / el4.total < 1.5


if __name__ == "__main__":
    from repro.system.devices import KernelCostModel

    print(build_fig13(KernelCostModel(), _measure_profile()))
